"""Execution overhead of ACT (Section VI goal iii).

Paper shape: single-digit average overhead at the default configuration
(paper: 8.2 %), rising sharply with fewer multiply-add units (longer
neuron latency) and falling with deeper input FIFOs.
"""

from repro.analysis.overhead import format_overhead, run_overhead


def test_overhead(benchmark, preset, save_result):
    study = benchmark.pedantic(run_overhead, args=(preset,),
                               rounds=1, iterations=1)
    save_result("overhead", format_overhead(study))

    assert 0.0 <= study.avg_default_pct < 30.0
    # More multiply-add units -> shorter neuron latency -> less overhead.
    xs = sorted(study.muladd_sweep)
    assert study.muladd_sweep[xs[0]] >= study.muladd_sweep[xs[-1]]
    # Deeper FIFO absorbs bursts.
    fs = sorted(study.fifo_sweep)
    assert study.fifo_sweep[fs[0]] >= study.fifo_sweep[fs[-1]]
