"""Workload characterisation table (methodology-section material).

Not a numbered table in the paper, but the communication profile that
explains the other results: which programs share data across threads
(the invariants PBI/Aviso also see), how many unique dependences each
exposes (Table IV's learning problem size), and where multi-writer
lines make false sharing possible.
"""

from repro.analysis.scale import workload_params
from repro.sim.trace_stats import profile_run, profile_table
from repro.workloads.framework import run_program
from repro.workloads.registry import get_kernel


def _profile_all(preset):
    profiles = []
    for name in preset.overhead_programs:
        run = run_program(get_kernel(name), seed=1,
                          **workload_params(name, preset.overhead_scale))
        profiles.append(profile_run(run, name=name))
    return profiles


def test_workload_profile(benchmark, preset, save_result):
    profiles = benchmark.pedantic(_profile_all, args=(preset,),
                                  rounds=1, iterations=1)
    save_result("workload_profile", profile_table(profiles))

    by_name = {p.name: p for p in profiles}
    # Multithreaded kernels communicate across threads...
    for name in ("lu", "fft", "ocean"):
        if name in by_name:
            assert by_name[name].inter_thread_pct > 0
    # ...sequential ones don't.
    for name in ("bzip2", "mcf", "bc"):
        if name in by_name:
            assert by_name[name].inter_thread_pct == 0
