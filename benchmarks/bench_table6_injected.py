"""Table VI: injected bugs in new code.

Paper shape: all five injected bugs are diagnosed; offline pruning
filters most of the (benign) new-code entries (paper average ~86 %).
"""

from repro.analysis.table6 import format_table6, run_table6


def test_table6_injected_bugs(benchmark, preset, save_result):
    rows = benchmark.pedantic(run_table6, args=(preset,),
                              rounds=1, iterations=1)
    save_result("table6_injected", format_table6(rows))

    assert len(rows) == 5
    for r in rows:
        assert r.found, f"{r.program}.{r.function} not diagnosed"
        assert r.rank <= 6
    avg_filter = sum(r.filter_pct for r in rows) / len(rows)
    assert avg_filter > 40.0, (
        f"new-code pruning only filtered {avg_filter:.0f}%")
