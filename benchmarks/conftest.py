"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper and writes
the rendered rows to ``benchmarks/results/<name>.txt`` (and stdout).
Scale is chosen with ``REPRO_PRESET`` (fast | bench | full); the
default ``bench`` runs the paper protocol with a trimmed topology grid.

A telemetry registry is installed for the whole benchmark session
(disable with ``REPRO_TELEMETRY=0``): alongside each ``<name>.txt``,
``save_result`` exports ``<name>.telemetry.json`` -- the counters,
histograms and phase spans accumulated since the previous benchmark --
so a perf regression in any table comes with its run profile attached.
The rendered ``.txt`` tables themselves are unaffected either way.
"""

import os
import pathlib

import pytest

from repro import telemetry
from repro.analysis.presets import preset_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _telemetry_enabled():
    return os.environ.get("REPRO_TELEMETRY", "1") != "0"


@pytest.fixture(scope="session")
def preset():
    return preset_from_env()


@pytest.fixture(scope="session", autouse=True)
def telemetry_registry():
    """Session-wide recording registry (no-op when REPRO_TELEMETRY=0)."""
    if not _telemetry_enabled():
        yield telemetry.get_registry()
        return
    registry = telemetry.Registry()
    previous = telemetry.set_registry(registry)
    try:
        yield registry
    finally:
        telemetry.set_registry(previous)


@pytest.fixture(scope="session")
def save_result(preset):
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name, text):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        registry = telemetry.get_registry()
        if registry.enabled:
            telemetry.write_profile(
                registry, RESULTS_DIR / f"{name}.telemetry.json",
                meta={"benchmark": name, "preset": preset.name})
            # Each benchmark's profile covers only its own work.
            registry.reset()
        print()
        print(text)
        return path

    return _save
