"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper and writes
the rendered rows to ``benchmarks/results/<name>.txt`` (and stdout).
Scale is chosen with ``REPRO_PRESET`` (fast | bench | full); the
default ``bench`` runs the paper protocol with a trimmed topology grid.
"""

import os
import pathlib

import pytest

from repro.analysis.presets import preset_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def preset():
    return preset_from_env()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name, text):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)
        return path

    return _save
