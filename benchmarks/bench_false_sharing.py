"""Impact of false sharing and last-writer simplifications (Section V).

Paper shape: at the deployment line size the misprediction increase
from line-granularity metadata is insignificant; the ablation shows the
effect growing for line sizes beyond what training assumed, and
word-granularity metadata eliminating wrong-writer attribution.
"""

from repro.analysis.false_sharing import (
    format_false_sharing,
    run_false_sharing,
)


def test_false_sharing(benchmark, preset, save_result):
    rows = benchmark.pedantic(run_false_sharing, args=(preset,),
                              rounds=1, iterations=1)
    save_result("false_sharing", format_false_sharing(rows))

    word_rows = [r for r in rows if r.word_granularity]
    for r in word_rows:
        assert r.wrong_writer_pct == 0.0
    # At/below the trained 64B line size, misprediction stays small.
    at_default = [r for r in rows
                  if not r.word_granularity and r.line_size <= 64]
    if at_default:
        avg = sum(r.mispred_pct for r in at_default) / len(at_default)
        assert avg < 10.0, f"misprediction at <=64B lines: {avg:.1f}%"
