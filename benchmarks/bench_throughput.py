"""Replay, orchestration, trace-I/O and corpus throughput.

Four measurements, all recorded into ``benchmarks/results/`` and into
``BENCH_throughput.json`` at the repo root:

1. **Batched replay** -- deps/sec of :func:`deploy_on_run` over a long
   TESTING-dominated production replay, scalar reference path vs the
   chunked fast path (:mod:`repro.core.fastpath`). The fast path is
   bit-identical, so anything short of a real speedup is a regression:
   the assertion fails if batched replay is not faster than scalar.
2. **Parallel orchestration** -- wall time of correct-run collection,
   serial vs the process-wide warm pool (``jobs``), with identical
   outputs. The *cold* figure times the first parallel batch on a fresh
   pool (what a one-shot CLI run pays); the *warm* figure interleaves
   serial and pool rounds with the shared pool already live, so neither
   side carries startup cost -- that steady-state ratio is the recorded
   ``speedup`` and what the trend history gates. ``host_cpus`` is
   recorded alongside: on a single-CPU host the warm speedup honestly
   tops out below 1x (there is no second core to win on); the gate's
   widened threshold absorbs host-to-host variance.
3. **Trace I/O** -- write+read wall time of the long replay trace in
   the JSON-lines format vs the columnar binary format
   (:mod:`repro.trace.columnar`). Both decode to identical events;
   columnar reads must be faster (that is the format's whole point, on
   any host).
4. **End-to-end corpus** -- wall seconds of the preset-scaled accuracy
   corpus (``repro corpus``), the number a user actually waits on. Also
   exported flat as ``corpus_wall_seconds`` for the trend gate.
5. **Adaptive frontier** -- the sampling-rate x FIFO sweep
   (:mod:`repro.analysis.frontier`) at preset scale; the recorded
   ``frontier.overhead_proxy`` / ``frontier.top1`` ratios (the pick's
   fraction of full-rate overhead and top-1) feed the trend gates.
6. **Warm-state diagnosis** -- wall seconds of a full diagnosis cold
   (offline training included) vs through the serve daemon's
   :class:`~repro.service.ops.WarmStateCache` (training skipped,
   trained state replayed from the cache). Reports are byte-identical;
   the recorded ``serve.warm_speedup`` is what a repeat ``repro
   submit`` of the same (workload, seed, config) saves.
"""

import json
import os
import pathlib
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.analysis.accuracy import run_corpus_for_preset
from repro.core.config import ACTConfig
from repro.core.deploy import deploy_on_run
from repro.core.offline import OfflineTrainer, collect_correct_runs
from repro.parallel import get_pool
from repro.trace import read_trace, write_trace
from repro.workloads.framework import run_program
from repro.workloads.registry import get_kernel

REPO_ROOT = pathlib.Path(__file__).parent.parent

# Trace-repeat factor: the deploy replay concatenates one correct lu
# trace this many times, giving a long TESTING-dominated dependence
# stream (the production steady state the fast path targets).
# "fast" is still long enough (~0.3s scalar) that the recorded speedup
# ratio is stable to well under the trend gate's 30% threshold.
REPEATS = {"fast": 80, "bench": 200, "full": 500}
N_PARALLEL_RUNS = {"fast": 8, "bench": 16, "full": 32}


def _noop(_):
    return None


def measure_pool_startup(jobs, rounds=2):
    """Seconds to spawn ``jobs`` workers and round-trip one no-op each.

    The fixed cost the first pool batch in a process pays before any
    real work runs (fork/spawn + interpreter + imports); best of
    ``rounds`` fresh pools, measured on throwaway executors so the
    shared warm pool is not disturbed.
    """
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        with ProcessPoolExecutor(max_workers=jobs) as ex:
            list(ex.map(_noop, range(jobs)))
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best


def _best_of(fn, rounds=3):
    """Smallest wall time over ``rounds`` calls; returns (seconds, result)."""
    (best,), (out,) = _best_of_each([fn], rounds=rounds)
    return best, out


def _best_of_each(fns, rounds=3):
    """Best-of timings for several functions, rounds *interleaved*.

    Measuring a-a-a then b-b-b lets a load spike or frequency change
    midway skew the a/b ratio; interleaving a-b, a-b, a-b gives every
    function a sample under each machine condition, so best-of ratios
    stay honest. Returns (seconds list, results list), index-aligned
    with ``fns``.
    """
    bests = [None] * len(fns)
    outs = [None] * len(fns)
    for _ in range(rounds):
        for j, fn in enumerate(fns):
            t0 = time.perf_counter()
            result = fn()
            dt = time.perf_counter() - t0
            if bests[j] is None or dt < bests[j]:
                bests[j], outs[j] = dt, result
    return bests, outs


def test_throughput(preset, save_result):
    prog = get_kernel("lu")
    config = ACTConfig()
    trained = OfflineTrainer(config=config).train(
        prog, n_runs=preset.n_train_traces, seed0=0)

    # --- batched replay vs scalar ------------------------------------
    base = run_program(prog, seed=99)
    long_run = replace(base, events=base.events * REPEATS[preset.name])
    (t_scalar, t_fast), (d_scalar, d_fast) = _best_of_each(
        [lambda: deploy_on_run(trained, long_run, fast=False),
         lambda: deploy_on_run(trained, long_run, fast=True)],
        rounds=4)
    assert d_fast.n_deps == d_scalar.n_deps
    for tid, module in d_scalar.modules.items():
        assert d_fast.modules[tid].stats == module.stats
    scalar_dps = d_scalar.n_deps / t_scalar
    fast_dps = d_fast.n_deps / t_fast
    replay_speedup = t_scalar / t_fast

    # --- parallel run collection vs serial ---------------------------
    n_runs = N_PARALLEL_RUNS[preset.name]
    # At least 2 workers so the pool path is exercised even on one CPU
    # (where the recorded speedup will honestly come out ~1x or less).
    jobs = preset.jobs or max(2, min(4, os.cpu_count() or 1))
    pool = get_pool()
    # Cold: the first parallel batch in a fresh process -- pool spawn,
    # imports, then the work.
    pool.shutdown()
    t0 = time.perf_counter()
    runs_cold = collect_correct_runs(prog, n_runs, seed0=0, jobs=jobs)
    t_cold = time.perf_counter() - t0
    # Warm: the shared pool is live; serial and pool rounds interleave
    # so *neither* side carries startup cost and the ratio is pure
    # steady-state orchestration.
    pool.warm(jobs)
    (t_serial, t_warm), (runs_serial, runs_jobs) = _best_of_each(
        [lambda: collect_correct_runs(prog, n_runs, seed0=0),
         lambda: collect_correct_runs(prog, n_runs, seed0=0, jobs=jobs)],
        rounds=3)
    assert [r.seed for r in runs_jobs] == [r.seed for r in runs_serial]
    assert all(a.events == b.events
               for a, b in zip(runs_serial, runs_jobs))
    assert all(a.events == b.events
               for a, b in zip(runs_serial, runs_cold))
    t_startup = measure_pool_startup(jobs)

    # --- trace I/O: JSON-lines vs columnar ---------------------------
    tmpdir = tempfile.mkdtemp(prefix="bench_trace_")
    jsonl_path = os.path.join(tmpdir, "lu.jsonl")
    col_path = os.path.join(tmpdir, "lu.columnar")
    (t_write_jsonl, t_write_col), _ = _best_of_each(
        [lambda: write_trace(long_run, jsonl_path),
         lambda: write_trace(long_run, col_path, trace_format="columnar")],
        rounds=3)
    (t_read_jsonl, t_read_col), (decoded_jsonl, decoded_col) = _best_of_each(
        [lambda: read_trace(jsonl_path),
         lambda: read_trace(col_path)],
        rounds=3)
    assert decoded_jsonl.events == decoded_col.events
    read_speedup = t_read_jsonl / t_read_col
    write_speedup = t_write_jsonl / t_write_col

    # --- end-to-end corpus wall time ---------------------------------
    t0 = time.perf_counter()
    corpus_result = run_corpus_for_preset(preset)
    corpus_wall = time.perf_counter() - t0

    # --- adaptive-overhead frontier ----------------------------------
    # The sweep's flat summary is a pair of baseline-relative ratios
    # (fraction of full-rate overhead / top-1 retained at the pick),
    # deterministic for the preset's corpus and machine-portable --
    # exactly what the frontier.* trend gates want.
    from repro.analysis.frontier import run_frontier_for_preset

    t0 = time.perf_counter()
    frontier_result = run_frontier_for_preset(preset)
    frontier_wall = time.perf_counter() - t0
    frontier_pick = frontier_result.metrics["frontier"]

    # --- warm-state diagnosis (the serve daemon's repeat-submit win) --
    from repro.service import ops as service_ops

    diag_req = service_ops.DiagnoseRequest(
        bug="gzip", train_runs=preset.corpus_train_runs,
        pruning_runs=preset.corpus_pruning_runs)
    warm_cache = service_ops.WarmStateCache()
    service_ops.run_diagnose(diag_req, warm=warm_cache)  # populate
    (t_diag_cold, t_diag_warm), (out_cold, out_warm) = _best_of_each(
        [lambda: service_ops.run_diagnose(diag_req),
         lambda: service_ops.run_diagnose(diag_req, warm=warm_cache)],
        rounds=3)
    assert (out_warm.rc, out_warm.out) == (out_cold.rc, out_cold.out)
    serve_speedup = t_diag_cold / t_diag_warm

    payload = {
        "preset": preset.name,
        "host_cpus": os.cpu_count(),
        "replay": {
            "program": "lu",
            "n_deps": d_scalar.n_deps,
            "scalar_seconds": round(t_scalar, 6),
            "batched_seconds": round(t_fast, 6),
            "scalar_deps_per_sec": round(scalar_dps, 1),
            "batched_deps_per_sec": round(fast_dps, 1),
            "speedup": round(replay_speedup, 2),
            "mode_switches": d_scalar.n_mode_switches,
        },
        "parallel": {
            "program": "lu",
            "n_runs": n_runs,
            "jobs": jobs,
            "serial_seconds": round(t_serial, 6),
            "parallel_cold_seconds": round(t_cold, 6),
            "parallel_warm_seconds": round(t_warm, 6),
            "pool_startup_seconds": round(t_startup, 6),
            "speedup": round(t_serial / t_warm, 2),
            "speedup_cold": round(t_serial / t_cold, 2),
            "speedup_warm": round(t_serial / t_warm, 2),
        },
        "trace_io": {
            "program": "lu",
            "n_events": len(long_run.events),
            "jsonl_write_seconds": round(t_write_jsonl, 6),
            "columnar_write_seconds": round(t_write_col, 6),
            "jsonl_read_seconds": round(t_read_jsonl, 6),
            "columnar_read_seconds": round(t_read_col, 6),
            "write_speedup": round(write_speedup, 2),
            "read_speedup": round(read_speedup, 2),
        },
        "corpus": {
            "size": corpus_result.spec.size,
            "jobs": preset.jobs,
            "found": corpus_result.metrics["overall"]["n_found"],
            "wall_seconds": round(corpus_wall, 3),
        },
        "corpus_wall_seconds": round(corpus_wall, 3),
        "frontier": {
            "rate": frontier_pick["rate"],
            "fifo": frontier_pick["fifo"],
            "overhead_proxy": frontier_pick["overhead_proxy"],
            "top1": frontier_pick["top1"],
            "recall": frontier_pick["recall"],
            "wall_seconds": round(frontier_wall, 3),
        },
        "serve": {
            "program": "gzip",
            "train_runs": preset.corpus_train_runs,
            "pruning_runs": preset.corpus_pruning_runs,
            "cold_seconds": round(t_diag_cold, 6),
            "warm_seconds": round(t_diag_warm, 6),
            "warm_speedup": round(serve_speedup, 2),
        },
    }
    (REPO_ROOT / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        "Replay throughput (TESTING-dominated deploy, program lu)",
        f"  deps replayed       : {d_scalar.n_deps}",
        f"  scalar              : {scalar_dps:,.0f} deps/sec",
        f"  batched fast path   : {fast_dps:,.0f} deps/sec",
        f"  speedup             : {replay_speedup:.1f}x",
        "",
        f"Run collection ({n_runs} correct runs, jobs={jobs}, "
        f"host_cpus={os.cpu_count()})",
        f"  serial              : {t_serial:.3f} s",
        f"  warm pool           : {t_warm:.3f} s",
        f"  cold pool           : {t_cold:.3f} s",
        f"  pool startup        : {t_startup:.3f} s",
        f"  speedup warm/cold   : {t_serial / t_warm:.2f}x / "
        f"{t_serial / t_cold:.2f}x",
        "",
        f"Trace I/O ({len(long_run.events)} events, program lu)",
        f"  jsonl write/read    : {t_write_jsonl:.4f} s / "
        f"{t_read_jsonl:.4f} s",
        f"  columnar write/read : {t_write_col:.4f} s / "
        f"{t_read_col:.4f} s",
        f"  speedup write/read  : {write_speedup:.1f}x / "
        f"{read_speedup:.1f}x",
        "",
        f"Corpus end-to-end (size {corpus_result.spec.size}, "
        f"jobs={preset.jobs})",
        f"  wall time           : {corpus_wall:.1f} s",
        "",
        f"Adaptive frontier pick (rate {frontier_pick['rate']:g} @ "
        f"FIFO {frontier_pick['fifo']})",
        f"  overhead vs full    : {frontier_pick['overhead_proxy']}",
        f"  top-1 retained      : {frontier_pick['top1']}",
        f"  wall time           : {frontier_wall:.1f} s",
        "",
        "Warm-state diagnosis (gzip, serve warm cache)",
        f"  cold                : {t_diag_cold:.3f} s",
        f"  warm                : {t_diag_warm:.3f} s",
        f"  speedup             : {serve_speedup:.1f}x",
    ]
    save_result("throughput", "\n".join(lines))

    # The fast path is bit-identical; being slower than the scalar
    # reference would make it pointless.
    assert fast_dps > scalar_dps, (
        f"batched replay slower than scalar: {fast_dps:.0f} vs "
        f"{scalar_dps:.0f} deps/sec")
    # Columnar reads skip parsing entirely; slower-than-jsonl reads
    # would mean the format lost its reason to exist.
    assert read_speedup > 1.0, (
        f"columnar read slower than jsonl: {t_read_col:.4f}s vs "
        f"{t_read_jsonl:.4f}s")
    # Warm reuse skips offline training entirely; the report is
    # byte-identical, so anything short of a speedup means the cache
    # stopped doing its one job.
    assert serve_speedup > 1.0, (
        f"warm diagnosis not faster than cold: {t_diag_warm:.3f}s vs "
        f"{t_diag_cold:.3f}s")
