"""Replay and orchestration throughput: fast path vs scalar, serial vs
parallel.

Two measurements, both recorded into ``benchmarks/results/`` and into
``BENCH_throughput.json`` at the repo root:

1. **Batched replay** -- deps/sec of :func:`deploy_on_run` over a long
   TESTING-dominated production replay, scalar reference path vs the
   chunked fast path (:mod:`repro.core.fastpath`). The fast path is
   bit-identical, so anything short of a real speedup is a regression:
   the assertion fails if batched replay is not faster than scalar.
2. **Parallel orchestration** -- wall time of correct-run collection,
   serial vs a worker pool (``jobs``), with identical outputs. Pool
   startup (process spawn + import) is measured separately so the
   recorded speedup comes in two flavours: *cold* includes the spawn
   cost a one-shot CLI run pays, *warm* subtracts it and reflects the
   steady-state orchestration speedup. The trend history tracks the
   warm number -- spawn cost is a property of the host, not of this
   code.
"""

import json
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.core.config import ACTConfig
from repro.core.deploy import deploy_on_run
from repro.core.offline import OfflineTrainer, collect_correct_runs
from repro.workloads.framework import run_program
from repro.workloads.registry import get_kernel

REPO_ROOT = pathlib.Path(__file__).parent.parent

# Trace-repeat factor: the deploy replay concatenates one correct lu
# trace this many times, giving a long TESTING-dominated dependence
# stream (the production steady state the fast path targets).
# "fast" is still long enough (~0.3s scalar) that the recorded speedup
# ratio is stable to well under the trend gate's 30% threshold.
REPEATS = {"fast": 80, "bench": 200, "full": 500}
N_PARALLEL_RUNS = {"fast": 8, "bench": 16, "full": 32}


def _noop(_):
    return None


def measure_pool_startup(jobs, rounds=2):
    """Seconds to spawn ``jobs`` workers and round-trip one no-op each.

    This is the fixed cost every ``run_tasks`` pool batch pays before
    any real work runs (fork/spawn + interpreter + imports); best of
    ``rounds`` fresh pools.
    """
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        with ProcessPoolExecutor(max_workers=jobs) as ex:
            list(ex.map(_noop, range(jobs)))
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best


def _best_of(fn, rounds=3):
    """Smallest wall time over ``rounds`` calls; returns (seconds, result)."""
    (best,), (out,) = _best_of_each([fn], rounds=rounds)
    return best, out


def _best_of_each(fns, rounds=3):
    """Best-of timings for several functions, rounds *interleaved*.

    Measuring a-a-a then b-b-b lets a load spike or frequency change
    midway skew the a/b ratio; interleaving a-b, a-b, a-b gives every
    function a sample under each machine condition, so best-of ratios
    stay honest. Returns (seconds list, results list), index-aligned
    with ``fns``.
    """
    bests = [None] * len(fns)
    outs = [None] * len(fns)
    for _ in range(rounds):
        for j, fn in enumerate(fns):
            t0 = time.perf_counter()
            result = fn()
            dt = time.perf_counter() - t0
            if bests[j] is None or dt < bests[j]:
                bests[j], outs[j] = dt, result
    return bests, outs


def test_throughput(preset, save_result):
    prog = get_kernel("lu")
    config = ACTConfig()
    trained = OfflineTrainer(config=config).train(
        prog, n_runs=preset.n_train_traces, seed0=0)

    # --- batched replay vs scalar ------------------------------------
    base = run_program(prog, seed=99)
    long_run = replace(base, events=base.events * REPEATS[preset.name])
    (t_scalar, t_fast), (d_scalar, d_fast) = _best_of_each(
        [lambda: deploy_on_run(trained, long_run, fast=False),
         lambda: deploy_on_run(trained, long_run, fast=True)],
        rounds=4)
    assert d_fast.n_deps == d_scalar.n_deps
    for tid, module in d_scalar.modules.items():
        assert d_fast.modules[tid].stats == module.stats
    scalar_dps = d_scalar.n_deps / t_scalar
    fast_dps = d_fast.n_deps / t_fast
    replay_speedup = t_scalar / t_fast

    # --- parallel run collection vs serial ---------------------------
    n_runs = N_PARALLEL_RUNS[preset.name]
    # At least 2 workers so the pool path is exercised even on one CPU
    # (where the recorded "speedup" will honestly come out ~1x or less).
    jobs = preset.jobs or max(2, min(4, os.cpu_count() or 1))
    (t_serial, t_jobs), (runs_serial, runs_jobs) = _best_of_each(
        [lambda: collect_correct_runs(prog, n_runs, seed0=0),
         lambda: collect_correct_runs(prog, n_runs, seed0=0, jobs=jobs)],
        rounds=2)
    assert [r.seed for r in runs_jobs] == [r.seed for r in runs_serial]
    assert all(a.events == b.events
               for a, b in zip(runs_serial, runs_jobs))
    # Pool startup measured on its own: t_jobs above paid it once (each
    # run_tasks batch spawns a fresh pool), the warm figure removes it.
    t_startup = measure_pool_startup(jobs)
    t_warm = max(t_jobs - t_startup, 1e-9)

    payload = {
        "preset": preset.name,
        "replay": {
            "program": "lu",
            "n_deps": d_scalar.n_deps,
            "scalar_seconds": round(t_scalar, 6),
            "batched_seconds": round(t_fast, 6),
            "scalar_deps_per_sec": round(scalar_dps, 1),
            "batched_deps_per_sec": round(fast_dps, 1),
            "speedup": round(replay_speedup, 2),
            "mode_switches": d_scalar.n_mode_switches,
        },
        "parallel": {
            "program": "lu",
            "n_runs": n_runs,
            "jobs": jobs,
            "serial_seconds": round(t_serial, 6),
            "parallel_seconds": round(t_jobs, 6),
            "pool_startup_seconds": round(t_startup, 6),
            "parallel_warm_seconds": round(t_warm, 6),
            "speedup": round(t_serial / t_jobs, 2),
            "speedup_cold": round(t_serial / t_jobs, 2),
            "speedup_warm": round(t_serial / t_warm, 2),
        },
    }
    (REPO_ROOT / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        "Replay throughput (TESTING-dominated deploy, program lu)",
        f"  deps replayed       : {d_scalar.n_deps}",
        f"  scalar              : {scalar_dps:,.0f} deps/sec",
        f"  batched fast path   : {fast_dps:,.0f} deps/sec",
        f"  speedup             : {replay_speedup:.1f}x",
        "",
        f"Run collection ({n_runs} correct runs, jobs={jobs})",
        f"  serial              : {t_serial:.3f} s",
        f"  parallel (cold)     : {t_jobs:.3f} s",
        f"  pool startup        : {t_startup:.3f} s",
        f"  parallel (warm)     : {t_warm:.3f} s",
        f"  speedup cold/warm   : {t_serial / t_jobs:.2f}x / "
        f"{t_serial / t_warm:.2f}x",
    ]
    save_result("throughput", "\n".join(lines))

    # The fast path is bit-identical; being slower than the scalar
    # reference would make it pointless.
    assert fast_dps > scalar_dps, (
        f"batched replay slower than scalar: {fast_dps:.0f} vs "
        f"{scalar_dps:.0f} deps/sec")
