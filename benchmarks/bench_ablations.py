"""Design-choice ablations (DESIGN.md): sequence length, Debug-Buffer
size, misprediction threshold, and offline-training ingredients."""

from repro.analysis.ablations import (
    ablate_debug_buffer,
    ablate_seq_len,
    ablate_threshold,
    ablate_training_ingredients,
    format_ablations,
)


def _run_all():
    seq_pts = ablate_seq_len()
    buf_pts = ablate_debug_buffer()
    thr_pts = ablate_threshold()
    train_rows = ablate_training_ingredients()
    return seq_pts, buf_pts, thr_pts, train_rows


def test_ablations(benchmark, save_result):
    seq_pts, buf_pts, thr_pts, train_rows = benchmark.pedantic(
        _run_all, rounds=1, iterations=1)
    save_result("ablations",
                format_ablations(seq_pts, buf_pts, thr_pts, train_rows))

    # Longer histories help or match: N=5 diagnoses what N=1 does.
    by_n = {p.seq_len: p for p in seq_pts}
    assert by_n[max(by_n)].found

    # MySQL#1: undersized buffers lose the root cause, large ones keep it.
    assert not min(buf_pts, key=lambda p: p.size).found
    assert max(buf_pts, key=lambda p: p.size).found

    # A lower threshold reacts to new code at least as eagerly.
    thr_sorted = sorted(thr_pts, key=lambda p: p.threshold)
    assert thr_sorted[0].mode_switches >= thr_sorted[-1].mode_switches

    # The full training recipe diagnoses the overflow bug.
    by_variant = {r.variant: r for r in train_rows}
    assert by_variant["full"].found
