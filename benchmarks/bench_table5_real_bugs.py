"""Table V: diagnosis of the 11 real bugs -- ACT vs Aviso vs PBI.

Paper shape: ACT diagnoses every failure from a single failure run with
rank <= 8 (<= 5 for most); MySQL#1 needs a larger-than-default Debug
Buffer; Aviso needs multiple failure reproductions and cannot handle
the sequential bugs; PBI misses several bugs and generally ranks worse.
"""

from repro.analysis.table5 import format_table5, run_table5


def test_table5_real_bugs(benchmark, preset, save_result):
    rows = benchmark.pedantic(run_table5, args=(preset,),
                              rounds=1, iterations=1)
    save_result("table5_real_bugs", format_table5(rows))

    assert len(rows) == 11
    # ACT diagnoses every bug (with buffer escalation where needed).
    for r in rows:
        assert r.act_rank is not None, f"{r.bug} not diagnosed"
        assert r.act_rank <= 8, f"{r.bug} rank {r.act_rank} worse than paper"

    by_bug = {r.bug: r for r in rows}
    # MySQL#1: the root cause is overwritten in the default 60-entry
    # buffer; diagnosis needed escalation.
    assert by_bug["mysql1"].buffer_used > 60

    # Aviso is inapplicable to the sequential bugs...
    for bug in ("gzip", "seq", "ptx", "paste"):
        assert not by_bug[bug].aviso_applicable
    # ...and where it works it needs more than one failure run.
    aviso_hits = [r for r in rows if r.aviso_applicable
                  and r.aviso_rank is not None]
    assert all(r.aviso_failures >= 2 for r in aviso_hits)

    # PBI misses bugs that ACT catches.
    pbi_misses = [r for r in rows if r.pbi_rank is None]
    assert len(pbi_misses) >= 2
    # ACT beats or matches PBI's rank on the bugs both diagnose.
    both = [r for r in rows if r.pbi_rank is not None]
    assert sum(r.act_rank <= r.pbi_rank for r in both) >= len(both) // 2
