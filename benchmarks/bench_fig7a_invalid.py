"""Figure 7(a): false-negative rate on synthesized invalid dependences.

Paper shape: the trained networks catch nearly all intentionally
invalid dependences (average misprediction ~0.18 %).
"""

from repro.analysis.fig7a import format_fig7a, run_fig7a


def test_fig7a_invalid_deps(benchmark, preset, save_result):
    points = benchmark.pedantic(run_fig7a, args=(preset,),
                                rounds=1, iterations=1)
    save_result("fig7a_invalid", format_fig7a(points))

    tested = [p for p in points if p.n_invalid_tested > 0]
    assert tested
    avg = sum(p.false_negative_pct for p in tested) / len(tested)
    assert avg < 25.0, f"average false-negative {avg:.2f}% too high"
