"""Table IV: per-program topology search and misprediction rates.

Paper shape: very low false-positive rates (average ~0.45 %), with a
couple of programs (bc-like, input-dependent) noticeably harder than
the regular scientific kernels.
"""

from repro.analysis.table4 import format_table4, run_table4


def test_table4_training(benchmark, preset, save_result):
    rows = benchmark.pedantic(run_table4, args=(preset,),
                              rounds=1, iterations=1)
    save_result("table4_training", format_table4(rows))

    assert {r.program for r in rows} == set(preset.table4_programs)
    avg = sum(r.mispred_pct for r in rows) / len(rows)
    # Shape check: low average false-positive rate.
    assert avg < 10.0, f"average misprediction {avg:.2f}% too high"
    for r in rows:
        i, h, _ = map(int, r.topology.split("-"))
        assert 1 <= i <= 10 and 1 <= h <= 10
