"""Online-adaptation dynamics: the misprediction spike on rewritten
code decays across production runs as online training absorbs it --
the mechanism behind the paper's "can adapt to changes" column of
Table I and the Apache 400-releases motivation of Section II.C."""

from repro.analysis.adaptation import format_adaptation, run_adaptation


def test_adaptation(benchmark, save_result):
    curve = benchmark.pedantic(run_adaptation, rounds=1, iterations=1)
    save_result("adaptation", format_adaptation(curve))

    assert len(curve.runs) >= 2
    # The flag rate decays (or stays settled) across executions.
    assert curve.last_rate <= max(curve.first_rate, 0.05)
    # The control loop actually engaged at least once overall.
    assert any(r.mode_switches > 0 for r in curve.runs) or \
        curve.first_rate < 0.05
