"""Table I: qualitative scheme comparison (static)."""

from repro.analysis.table1 import format_table1, run_table1


def test_table1(benchmark, save_result):
    rows = benchmark(run_table1)
    assert ("ACT", "yes", "yes", "yes") in rows
    save_result("table1_comparison", format_table1())
