"""Figure 7(b): adaptivity -- predicting never-seen code.

Paper shape: ~94 % of a held-out function's communications are
predicted correctly (6.16 % incorrect on average), versus a rigid
PSet-style invariant scheme that flags every genuinely new dependence.
"""

from repro.analysis.fig7b import format_fig7b, run_fig7b


def test_fig7b_adaptivity(benchmark, preset, save_result):
    points = benchmark.pedantic(run_fig7b, args=(preset,),
                                rounds=1, iterations=1)
    save_result("fig7b_adaptivity", format_fig7b(points))

    assert points
    avg = sum(p.incorrect_pct for p in points) / len(points)
    assert avg < 25.0, f"average incorrect {avg:.1f}% too high"
    for p in points:
        assert p.incorrect_pct <= p.pset_violation_pct
