"""NN design comparison: ACT's 3-stage pipeline vs a fully configurable
time-multiplexed accelerator (paper contribution 3).

Paper shape: the partially configurable pipeline sustains one input per
T cycles while the multiplexed design pays scheduling overhead and
cannot overlap inputs -- ACT wins throughput at every multiply-add
configuration.
"""

from repro.analysis.nn_design import format_nn_design, run_nn_design


def test_nn_design(benchmark, preset, save_result):
    rows = benchmark.pedantic(run_nn_design, args=(preset,),
                              rounds=1, iterations=1)
    save_result("nn_design", format_nn_design(rows))

    for r in rows:
        assert r.act_test_interval < r.mux_test_interval
        assert r.act_train_interval == 4 * r.act_test_interval
        assert r.throughput_advantage > 1.0
