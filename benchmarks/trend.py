"""Perf-trend harness: append bench runs to a history, gate regressions.

``BENCH_throughput.json`` is a single point; this module gives it a
trajectory. Each invocation appends the current benchmark payload as
one JSONL entry to ``BENCH_history.jsonl`` and compares the *gated*
metrics against the last recorded entry, failing (exit 1) when any of
them regresses beyond the threshold (30% by default).

Gated metrics are machine-portable ratios (the replay and warm-pool
speedups) plus the end-to-end corpus wall time, each with its own
direction and threshold: a CI runner two times slower than the last
machine should not trip the ratio gates, a fast path that lost its
speedup should, and a corpus run that doubled in wall time (the widened
``corpus_wall_seconds`` gate) signals a real pipeline regression, not
scheduler noise. Absolute throughput and the cold/warm speedup split
are still recorded in every entry so the trajectory can be plotted.

Usage (what the ``bench-trend`` CI job runs)::

    python benchmarks/trend.py --bench BENCH_throughput.json \
        --history BENCH_history.jsonl --threshold 0.30
"""

import argparse
import json
import sys
import time

DEFAULT_THRESHOLD = 0.30

# Gated metrics fail the run on regression; tracked metrics are
# recorded for the trajectory only. Each gate declares a direction
# ("higher" is better, or "lower" -- wall-clock style) and may widen
# the threshold beyond the run default: the replay speedup divides two
# multi-hundred-millisecond measurements of deterministic compute and
# gates tightly, while the warm-pool speedup and the corpus wall time
# depend on the host's core count and scheduler, so they only gate
# against collapses, not noise. A gated metric absent from either entry
# is skipped with a logged reason (new metrics must not fail the first
# run that records them, and old histories must not fail new gates).
GATED_METRICS = {
    "replay.speedup": {"direction": "higher"},
    "parallel.speedup": {"direction": "higher", "threshold": 0.50},
    "corpus_wall_seconds": {"direction": "lower", "threshold": 0.50},
    # The adaptive-frontier pick (benchmarks/bench_throughput.py runs
    # the sweep; see docs/adaptive.md). Both are ratios against the
    # full-rate baseline of the same run, so they are machine-portable:
    # overhead_proxy is the pick's fraction of full-rate overhead
    # (lower is better; >50% growth means sampling stopped paying),
    # top1 its fraction of full-rate top-1 accuracy (a drop beyond 25%
    # means the sampled deployment stopped diagnosing).
    "frontier.overhead_proxy": {"direction": "lower", "threshold": 0.50},
    "frontier.top1": {"direction": "higher", "threshold": 0.25},
}
TRACKED_METRICS = {
    "replay.batched_deps_per_sec": "higher",
    "replay.scalar_deps_per_sec": "higher",
    "parallel.speedup_warm": "higher",
    "parallel.speedup_cold": "higher",
    "trace_io.read_speedup": "higher",
    "trace_io.write_speedup": "higher",
    "serve.warm_speedup": "higher",
    "frontier.recall": "higher",
}


def get_metric(payload, path):
    """Resolve a dotted ``path`` in a nested dict (None when missing)."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def load_history(path):
    """Entries of a history file, oldest first (missing file = empty)."""
    entries = []
    try:
        with open(str(path), "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    except OSError:
        pass
    return entries


def make_entry(payload, timestamp=None, source=None):
    """One history entry: flat metrics plus provenance."""
    metrics = {}
    for path in sorted(set(GATED_METRICS) | set(TRACKED_METRICS)):
        value = get_metric(payload, path)
        if value is not None:
            metrics[path] = value
    entry = {
        "timestamp": (time.time() if timestamp is None else timestamp),
        "preset": payload.get("preset"),
        "metrics": metrics,
    }
    if source:
        entry["source"] = source
    return entry


def append_entry(history_path, entry):
    """Append ``entry`` as one JSONL line to the history file."""
    with open(str(history_path), "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def check_regressions(previous, current, threshold=DEFAULT_THRESHOLD,
                      skips=None):
    """Gated metrics of ``current`` vs ``previous``; returns regressions.

    Each regression is a dict with the metric, both values and the
    fractional drop (always oriented so that positive = worse,
    whichever direction the gate declares). A gated metric missing from
    either entry, or with a non-positive baseline, is skipped instead
    of erroring; pass a list as ``skips`` to collect
    ``{"metric", "reason"}`` records explaining each skip.
    """
    regressions = []
    prev_metrics = previous.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for path in sorted(GATED_METRICS):
        gate = GATED_METRICS[path]
        limit = gate.get("threshold", threshold)
        old = prev_metrics.get(path)
        new = cur_metrics.get(path)
        if old is None or new is None:
            if skips is not None:
                missing = ("both entries" if old is None and new is None
                           else "previous entry" if old is None
                           else "current entry")
                skips.append({"metric": path,
                              "reason": f"absent from {missing}"})
            continue
        if old <= 0:
            if skips is not None:
                skips.append({"metric": path,
                              "reason": f"non-positive baseline ({old})"})
            continue
        if gate["direction"] == "lower":
            drop = (new - old) / old
        else:
            drop = (old - new) / old
        if drop > limit:
            regressions.append({"metric": path, "previous": old,
                                "current": new, "drop": round(drop, 4),
                                "threshold": limit})
    return regressions


def run_trend(bench_path, history_path, threshold=DEFAULT_THRESHOLD,
              timestamp=None, source=None, out=sys.stdout):
    """Append the bench payload to the history and gate it; returns rc."""
    with open(str(bench_path), "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    history = load_history(history_path)
    entry = make_entry(payload, timestamp=timestamp, source=source)
    append_entry(history_path, entry)
    print(f"appended entry #{len(history) + 1} to {history_path}", file=out)
    for path, value in sorted(entry["metrics"].items()):
        gate = " [gated]" if path in GATED_METRICS else ""
        print(f"  {path} = {value}{gate}", file=out)
    # A gated metric the bench payload never produced would otherwise
    # vanish silently -- absent from the fresh entry, it is skipped on
    # every future comparison too, so say so now, every run.
    for path in sorted(GATED_METRICS):
        if path not in entry["metrics"]:
            print(f"gate unavailable: {path} (not in bench payload)",
                  file=out)
    if not history:
        print("no previous entry; nothing to gate against", file=out)
        return 0
    skips = []
    regressions = check_regressions(history[-1], entry, threshold=threshold,
                                    skips=skips)
    for skip in skips:
        print(f"gate skipped: {skip['metric']} ({skip['reason']})",
              file=out)
    if not regressions:
        print(f"trend OK: no gated metric regressed beyond its "
              f"threshold (default {threshold:.0%}) vs the previous "
              f"entry", file=out)
        return 0
    for reg in regressions:
        print(f"REGRESSION: {reg['metric']} worsened {reg['drop']:.1%} "
              f"({reg['previous']} -> {reg['current']}), "
              f"threshold {reg['threshold']:.0%}", file=out)
    return 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="append a bench run to the perf history and fail on "
                    "regressions beyond the threshold")
    parser.add_argument("--bench", default="BENCH_throughput.json",
                        help="benchmark payload to record")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="JSONL history file to append to")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="fractional regression that fails the run "
                             "(default 0.30)")
    parser.add_argument("--source", default=None,
                        help="provenance label recorded in the entry "
                             "(e.g. 'ci')")
    args = parser.parse_args(argv)
    return run_trend(args.bench, args.history, threshold=args.threshold,
                     source=args.source)


if __name__ == "__main__":
    sys.exit(main())
