"""Tests for pruning and ranking."""

from hypothesis import given, settings, strategies as st

from repro.core.buffers import DebugEntry
from repro.core.postprocess import CorrectSet, postprocess
from repro.trace.raw import RawDep


def _dep(i, j=None):
    return RawDep(0x10 + 4 * i, 0x100 + 4 * (j if j is not None else i))


def _entry(seq, output=0.2, index=0, tid=0):
    return DebugEntry(seq=tuple(seq), output=output, index=index, tid=tid)


def _correct(*seqs, n=3):
    cs = CorrectSet(n)
    cs.add_sequences([tuple(s) for s in seqs])
    return cs


class TestCorrectSet:
    def test_contains_exact_sequence(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        assert cs.contains((_dep(1), _dep(2), _dep(3)))
        assert not cs.contains((_dep(1), _dep(2), _dep(4)))

    def test_matched_prefix(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        assert cs.matched_prefix((_dep(1), _dep(2), _dep(4))) == 2
        assert cs.matched_prefix((_dep(9), _dep(2), _dep(3))) == 0
        assert cs.matched_prefix((_dep(1), _dep(2), _dep(3))) == 3

    def test_matched_prefix_takes_best_branch(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)],
                      [_dep(1), _dep(5), _dep(6)])
        assert cs.matched_prefix((_dep(1), _dep(5), _dep(9))) == 2

    def test_duplicate_sequences_counted_once(self):
        cs = CorrectSet(2)
        cs.add_sequences([(_dep(1), _dep(2))] * 3)
        assert len(cs) == 1

    def test_add_run(self, tinybug):
        from repro.workloads.framework import run_program
        run = run_program(tinybug, seed=0)
        cs = CorrectSet(2)
        cs.add_run(run)
        assert len(cs) > 0


class TestPostprocess:
    def test_pruning_removes_correct_sequences(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        entries = [
            _entry([_dep(1), _dep(2), _dep(3)]),          # pruned
            _entry([_dep(1), _dep(2), _dep(7)], index=1),  # kept
        ]
        result = postprocess(entries, cs)
        assert result.n_pruned == 1
        assert len(result.findings) == 1
        assert result.filter_pct == 50.0

    def test_paper_ranking_example(self):
        """Section III.D's worked example."""
        A = [_dep(i, 100 + i) for i in range(8)]
        B = [_dep(20 + i, 200 + i) for i in range(4)]
        cs = _correct([A[1], A[2], A[3]], [B[1], B[2], B[3]])
        entries = [
            _entry([A[1], A[2], A[4]], output=0.3, index=0),
            _entry([B[1], B[2], B[3]], output=0.1, index=1),
            _entry([A[1], A[5], A[6]], output=0.2, index=2),
        ]
        result = postprocess(entries, cs)
        # (B1,B2,B3) pruned; (A1,A2,A4) has 2 matches > (A1,A5,A6) with 1
        assert result.n_pruned == 1
        assert result.findings[0].seq == (A[1], A[2], A[4])
        assert result.findings[0].matched == 2
        assert result.findings[1].matched == 1

    def test_tie_broken_by_most_negative_output(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        entries = [
            _entry([_dep(1), _dep(2), _dep(7)], output=0.4, index=0),
            _entry([_dep(1), _dep(2), _dep(8)], output=0.1, index=1),
        ]
        result = postprocess(entries, cs)
        assert result.findings[0].output == 0.1

    def test_dedupe_keeps_most_negative(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        seq = [_dep(1), _dep(2), _dep(9)]
        entries = [_entry(seq, output=0.4, index=0),
                   _entry(seq, output=0.05, index=1)]
        result = postprocess(entries, cs)
        assert len(result.findings) == 1
        assert result.findings[0].output == 0.05

    def test_dedupe_disabled(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        seq = [_dep(1), _dep(2), _dep(9)]
        entries = [_entry(seq, index=0), _entry(seq, index=1)]
        result = postprocess(entries, cs, dedupe=False)
        assert len(result.findings) == 2

    def test_mismatch_dep(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        entries = [_entry([_dep(1), _dep(7), _dep(8)])]
        result = postprocess(entries, cs)
        assert result.findings[0].mismatch_dep == _dep(7)

    def test_rank_of_dep_suffix_semantics(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        entries = [_entry([_dep(1), _dep(7), _dep(8)])]
        result = postprocess(entries, cs)
        # dep 8 is in the mismatched suffix even though dep 7 is the
        # first mismatch
        assert result.rank_of_dep({(_dep(8).store_pc, _dep(8).load_pc)}) == 1
        # dep 1 matched the correct prefix; it is not part of the suffix
        assert result.rank_of_dep({(_dep(1).store_pc, _dep(1).load_pc)}) is None

    def test_empty_input(self):
        cs = _correct([_dep(1), _dep(2), _dep(3)])
        result = postprocess([], cs)
        assert result.findings == []
        assert result.filter_pct == 0.0

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                              st.integers(0, 5)), min_size=0, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_findings_disjoint_from_pruned_and_sorted(self, raw):
        cs = _correct([_dep(1), _dep(2), _dep(3)],
                      [_dep(2), _dep(3), _dep(4)])
        entries = [_entry([_dep(a), _dep(b), _dep(c)], output=0.1 * a,
                          index=i)
                   for i, (a, b, c) in enumerate(raw)]
        result = postprocess(entries, cs)
        assert result.n_pruned + len(
            {e.seq for e in entries} -
            {f.seq for f in result.findings}) >= result.n_pruned
        for f in result.findings:
            assert not cs.contains(f.seq)
        matches = [f.matched for f in result.findings]
        assert matches == sorted(matches, reverse=True)
