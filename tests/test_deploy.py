"""Tests for production-run deployment (trace replay through AMs)."""

from repro.core.deploy import deploy_on_run
from repro.workloads.framework import run_program


class TestDeploy:
    def test_module_per_thread(self, trained_tinybug, tinybug):
        run = run_program(tinybug, seed=9, buggy=False)
        result = deploy_on_run(trained_tinybug, run)
        assert set(result.modules) == {0}

    def test_dep_count_positive(self, trained_tinybug, tinybug):
        run = run_program(tinybug, seed=9, buggy=False)
        result = deploy_on_run(trained_tinybug, run)
        assert result.n_deps > 0
        assert result.n_predictions <= result.n_deps

    def test_records_kept_on_request(self, trained_tinybug, tinybug):
        run = run_program(tinybug, seed=9, buggy=False)
        result = deploy_on_run(trained_tinybug, run, keep_records=True)
        assert len(result.records) == result.n_predictions

    def test_debug_entries_merged_in_order(self, trained_tinybug, tinybug):
        run = run_program(tinybug, seed=9, buggy=True)
        result = deploy_on_run(trained_tinybug, run)
        entries = result.debug_entries()
        indices = [e.index for e in entries]
        assert indices == sorted(indices)

    def test_buggy_run_flags_root_dependence(self, trained_tinybug, tinybug):
        run = run_program(tinybug, seed=9, buggy=True)
        truth = run.meta["root_cause"]
        result = deploy_on_run(trained_tinybug, run)
        hits = [e for e in result.debug_entries()
                if any((d.store_pc, d.load_pc) in truth for d in e.seq)]
        assert hits

    def test_clean_run_mostly_silent(self, trained_tinybug, tinybug):
        run = run_program(tinybug, seed=9, buggy=False)
        result = deploy_on_run(trained_tinybug, run)
        assert result.n_invalid <= result.n_predictions * 0.2
