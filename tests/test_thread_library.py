"""Tests for the Section IV.C thread-library model."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.core.thread_library import ACTThreadLibrary, ThreadId


@pytest.fixture
def lib(trained_tinybug):
    return ACTThreadLibrary(trained_tinybug)


class TestThreadIds:
    def test_spawn_order_is_stable_identity(self, lib):
        a = lib.spawn()
        b = lib.spawn()
        assert a == ThreadId(None, 0)
        assert b == ThreadId(None, 1)

    def test_children_namespaced_by_parent(self, lib):
        parent = lib.spawn()
        child0 = lib.spawn(parent)
        child1 = lib.spawn(parent)
        assert child0.parent == parent.key()
        assert child0.spawn_index == 0
        assert child1.spawn_index == 1

    def test_same_order_same_ids_across_instances(self, trained_tinybug):
        lib1 = ACTThreadLibrary(trained_tinybug)
        lib2 = ACTThreadLibrary(trained_tinybug)
        assert lib1.spawn() == lib2.spawn()


class TestLifecycle:
    def test_create_without_saved_weights_uses_default(self, lib):
        t = lib.spawn()
        module = lib.on_thread_create(t)
        assert lib.stats["chkwt_misses"] == 1
        assert np.allclose(module.save_weights(),
                           lib.trained.default_weights)

    def test_create_with_saved_weights_restores_them(self, lib):
        t = lib.spawn()
        custom = lib.trained.default_weights * 0.5
        lib.trained.weights[t.key()] = custom
        module = lib.on_thread_create(t)
        assert lib.stats["chkwt_hits"] == 1
        assert np.allclose(module.save_weights(), custom)

    def test_double_create_rejected(self, lib):
        t = lib.spawn()
        lib.on_thread_create(t)
        with pytest.raises(ReproError):
            lib.on_thread_create(t)

    def test_exit_logs_weights(self, lib):
        t = lib.spawn()
        module = lib.on_thread_create(t)
        module.net.w_out[:] = 0.123
        lib.on_thread_exit(t)
        assert t.key() in lib.exit_log
        assert t.key() not in lib.live_threads()

    def test_exit_of_unknown_thread_rejected(self, lib):
        with pytest.raises(ReproError):
            lib.on_thread_exit(ThreadId(None, 99))

    def test_patch_binary_feeds_next_execution(self, lib):
        t = lib.spawn()
        module = lib.on_thread_create(t)
        module.net.w_out[:] = 0.777
        trained_weights = module.save_weights()
        lib.on_thread_exit(t)
        assert lib.patch_binary() == 1
        # "Next execution": chkwt now hits.
        t2 = ThreadId(None, 0)
        module2 = lib.on_thread_create(t2)
        assert np.allclose(module2.save_weights(), trained_weights)


class TestContextSwitch:
    def test_weights_migrate_and_buffers_flush(self, lib, trained_tinybug):
        from repro.trace.raw import RawDep
        t = lib.spawn()
        src = lib.on_thread_create(t)
        src.net.w_out[:] = 0.42
        src.process_dep(RawDep(0x10, 0x20))
        dst = trained_tinybug.make_module(1)
        moved = lib.context_switch(t, src, dst)
        assert moved is dst
        assert np.allclose(dst.save_weights(), src.save_weights())
        assert len(dst.input_buffer) == 0
        assert len(src.input_buffer) == 0
        assert lib.stats["switches"] == 1
