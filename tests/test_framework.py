"""Tests for the concurrent-program framework."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError, SimulatedFailure, TraceError
from repro.trace.events import EventKind
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
    Scheduler,
    ThreadCtx,
    run_program,
)


class TestCodeMap:
    def test_alloc_distinct_pcs(self):
        cm = CodeMap()
        a = cm.load("a")
        b = cm.store("b")
        assert a != b

    def test_duplicate_label_rejected(self):
        cm = CodeMap()
        cm.load("x", function="f")
        with pytest.raises(ReproError):
            cm.store("x", function="f")

    def test_same_label_different_function_ok(self):
        cm = CodeMap()
        a = cm.load("x", function="f")
        b = cm.load("x", function="g")
        assert a != b

    def test_describe_and_lookup(self):
        cm = CodeMap()
        pc = cm.branch("loop", function="work")
        assert cm.describe(pc) == "work:loop"
        assert cm.pc_of("loop", "work") == pc
        assert cm.function_of(pc) == "work"

    def test_describe_unknown_pc(self):
        cm = CodeMap()
        assert "pc=" in cm.describe(0xDEAD)

    def test_pcs_in_function(self):
        cm = CodeMap()
        a = cm.load("a", function="f")
        cm.load("b", function="g")
        c = cm.store("c", function="f")
        assert set(cm.pcs_in_function("f")) == {a, c}

    def test_len(self):
        cm = CodeMap()
        cm.load("a")
        cm.alu("b")
        assert len(cm) == 2


class TestAddressSpace:
    def test_idempotent_lookup(self):
        mem = AddressSpace()
        assert mem.var("x") == mem.var("x")
        assert mem.array("a", 8) == mem.array("a", 8)

    def test_distinct_objects_aligned(self):
        mem = AddressSpace(alignment=64)
        a = mem.var("a")
        b = mem.var("b")
        assert a % 64 == 0 and b % 64 == 0
        assert b - a >= 64

    def test_packed_allocation_adjacent(self):
        mem = AddressSpace(alignment=64)
        base = mem.array("buf", 4)
        tail = mem.var("tail", packed=True)
        assert tail == base + 16

    def test_word_alignment_within_array(self):
        mem = AddressSpace()
        base = mem.array("arr", 3)
        assert base % 4 == 0

    def test_addr_of(self):
        mem = AddressSpace()
        a = mem.var("q")
        assert mem.addr_of("q") == a


class _TwoThreads(Program):
    name = "two"

    def build(self, use_lock=False, fail_at=None):
        cm = CodeMap()
        mem = AddressSpace()
        x = mem.var("x")
        s = cm.store("s", function="a")
        l = cm.load("l", function="b")

        def t0(ctx):
            for i in range(5):
                if use_lock:
                    yield ctx.acquire("m")
                yield ctx.store(s, x, value=i)
                if use_lock:
                    yield ctx.release("m")
                if fail_at == i:
                    raise SimulatedFailure("bang", pc=s)

        def t1(ctx):
            for _ in range(5):
                if use_lock:
                    yield ctx.acquire("m")
                yield ctx.load(l, x)
                if use_lock:
                    yield ctx.release("m")

        return ProgramInstance(self.name, cm, [t0, t1])


class TestScheduler:
    def test_deterministic_per_seed(self):
        r1 = run_program(_TwoThreads(), seed=5)
        r2 = run_program(_TwoThreads(), seed=5)
        assert [(e.tid, e.pc) for e in r1.events] == \
               [(e.tid, e.pc) for e in r2.events]

    def test_seeds_vary_interleaving(self):
        traces = {tuple((e.tid, e.pc) for e in
                        run_program(_TwoThreads(), seed=s).events)
                  for s in range(8)}
        assert len(traces) > 1

    def test_all_events_recorded(self):
        run = run_program(_TwoThreads(), seed=1)
        stores = [e for e in run.events if e.kind == EventKind.STORE]
        loads = [e for e in run.events if e.kind == EventKind.LOAD]
        assert len(stores) == 5 and len(loads) == 5

    def test_failure_captured(self):
        run = run_program(_TwoThreads(), seed=1, fail_at=2)
        assert run.failed
        assert run.failure.tid == 0
        assert "bang" in str(run.failure)

    def test_failure_stops_execution(self):
        run = run_program(_TwoThreads(), seed=1, fail_at=0)
        stores = [e for e in run.events if e.kind == EventKind.STORE]
        assert len(stores) == 1

    def test_load_returns_stored_value(self):
        observed = []

        class P(Program):
            name = "valsem"

            def build(self):
                cm = CodeMap()
                mem = AddressSpace()
                x = mem.var("x")
                s = cm.store("s")
                l = cm.load("l")

                def body(ctx):
                    yield ctx.store(s, x, value=41)
                    v = yield ctx.load(l, x)
                    observed.append(v)

                return ProgramInstance(self.name, cm, [body])

        run_program(P(), seed=0)
        assert observed == [41]

    def test_uninitialised_load_returns_zero(self):
        observed = []

        class P(Program):
            name = "uninit"

            def build(self):
                cm = CodeMap()
                mem = AddressSpace()
                l = cm.load("l")

                def body(ctx):
                    v = yield ctx.load(l, mem.var("x"))
                    observed.append(v)

                return ProgramInstance(self.name, cm, [body])

        run_program(P(), seed=0)
        assert observed == [0]


class TestSynchronisation:
    def test_lock_mutual_exclusion(self):
        order = []

        class P(Program):
            name = "mutex"

            def build(self):
                cm = CodeMap()
                mem = AddressSpace()
                x = mem.var("x")
                pcs = [cm.store(f"s{t}", function=f"t{t}") for t in range(2)]

                def make(tid):
                    def body(ctx):
                        for i in range(4):
                            yield ctx.acquire("m")
                            order.append((tid, "in"))
                            yield ctx.store(pcs[tid], x, value=i)
                            order.append((tid, "out"))
                            yield ctx.release("m")
                    return body

                return ProgramInstance(self.name, cm, [make(0), make(1)])

        run_program(P(), seed=3)
        # critical sections never interleave: in/out strictly alternate
        for i in range(0, len(order), 2):
            assert order[i][0] == order[i + 1][0]
            assert order[i][1] == "in" and order[i + 1][1] == "out"

    def test_wait_blocks_until_set(self):
        class P(Program):
            name = "flagged"

            def build(self):
                cm = CodeMap()
                mem = AddressSpace()
                x = mem.var("x")
                s = cm.store("s", function="t0")
                l = cm.load("l", function="t1")

                def t0(ctx):
                    yield ctx.store(s, x, value=1)
                    yield ctx.set_flag("go")

                def t1(ctx):
                    yield ctx.wait("go")
                    yield ctx.load(l, x)

                return ProgramInstance(self.name, cm, [t0, t1])

        for seed in range(6):
            run = run_program(P(), seed=seed)
            kinds = [(e.tid, e.kind) for e in run.events]
            assert kinds.index((0, EventKind.STORE)) < \
                kinds.index((1, EventKind.LOAD))

    def test_deadlock_detected(self):
        class P(Program):
            name = "deadlock"

            def build(self):
                cm = CodeMap()

                def t0(ctx):
                    yield ctx.wait("never")

                return ProgramInstance(self.name, cm, [t0])

        with pytest.raises(TraceError, match="deadlock"):
            run_program(P(), seed=0)

    def test_release_of_unheld_lock_rejected(self):
        class P(Program):
            name = "badrelease"

            def build(self):
                cm = CodeMap()

                def t0(ctx):
                    yield ctx.release("m")

                return ProgramInstance(self.name, cm, [t0])

        with pytest.raises(TraceError, match="release"):
            run_program(P(), seed=0)

    def test_livelock_guard(self):
        class P(Program):
            name = "forever"

            def build(self):
                cm = CodeMap()
                a = cm.alu("spin")

                def t0(ctx):
                    while True:
                        yield ctx.alu(a)

                return ProgramInstance(self.name, cm, [t0])

        sched = Scheduler(seed=0, max_steps=500)
        with pytest.raises(TraceError, match="steps"):
            run_program(P(), scheduler=sched)


class TestRunProgram:
    def test_params_override_defaults(self, tinybug):
        run = run_program(tinybug, seed=0, buggy=True)
        assert run.failed

    def test_params_for_seed_merging(self):
        captured = {}

        class P(Program):
            name = "seeded"

            def default_params(self):
                return {"a": 1, "b": 2}

            def params_for_seed(self, seed):
                return {"b": seed}

            def build(self, a, b):
                captured["a"], captured["b"] = a, b
                cm = CodeMap()
                x = cm.alu("x")

                def t(ctx):
                    yield ctx.alu(x)
                return ProgramInstance(self.name, cm, [t])

        run_program(P(), seed=7)
        assert captured == {"a": 1, "b": 7}
        run_program(P(), seed=7, b=99)
        assert captured["b"] == 99

    def test_instance_cannot_be_reparameterised(self, tinybug):
        inst = tinybug.build()
        with pytest.raises(ReproError):
            run_program(inst, seed=0, buggy=True)

    def test_meta_carries_root_cause(self, tinybug):
        run = run_program(tinybug, seed=0, buggy=True)
        assert run.meta["root_cause"]

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_completes(self, seed):
        run = run_program(_TwoThreads(), seed=seed)
        assert not run.failed
        assert len(run.events) == 10
