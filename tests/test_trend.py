"""Perf-trend harness (benchmarks/trend.py): history + regression gate."""

import importlib.util
import io
import json
import pathlib

import pytest

_TREND_PATH = pathlib.Path(__file__).parent.parent / "benchmarks" / "trend.py"
_spec = importlib.util.spec_from_file_location("trend", _TREND_PATH)
trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trend)


def _payload(speedup=3.0, warm=2.0):
    return {
        "preset": "fast",
        "replay": {"speedup": speedup, "batched_deps_per_sec": 1e6,
                   "scalar_deps_per_sec": 1e6 / speedup},
        "parallel": {"speedup_warm": warm, "speedup_cold": warm / 2},
    }


def _run(tmp_path, payload, name="bench.json", history="hist.jsonl",
         **kwargs):
    bench = tmp_path / name
    bench.write_text(json.dumps(payload), encoding="utf-8")
    out = io.StringIO()
    rc = trend.run_trend(bench, tmp_path / history, timestamp=0.0,
                         out=out, **kwargs)
    return rc, out.getvalue()


class TestMetrics:
    def test_get_metric_resolves_dotted_paths(self):
        payload = _payload(speedup=4.5)
        assert trend.get_metric(payload, "replay.speedup") == 4.5
        assert trend.get_metric(payload, "replay.missing") is None
        assert trend.get_metric(payload, "nope.deep.er") is None

    def test_entry_records_gated_and_tracked(self):
        entry = trend.make_entry(_payload(), timestamp=42.0, source="ci")
        assert entry["timestamp"] == 42.0
        assert entry["source"] == "ci"
        assert entry["metrics"]["replay.speedup"] == 3.0
        assert entry["metrics"]["parallel.speedup_warm"] == 2.0
        assert "parallel.speedup_cold" in entry["metrics"]


class TestHistory:
    def test_first_run_appends_and_passes(self, tmp_path):
        rc, text = _run(tmp_path, _payload())
        assert rc == 0
        assert "nothing to gate against" in text
        entries = trend.load_history(tmp_path / "hist.jsonl")
        assert len(entries) == 1

    def test_missing_history_is_empty(self, tmp_path):
        assert trend.load_history(tmp_path / "nope.jsonl") == []

    def test_every_run_appends(self, tmp_path):
        for _ in range(3):
            _run(tmp_path, _payload())
        assert len(trend.load_history(tmp_path / "hist.jsonl")) == 3


class TestGate:
    def test_synthetic_regression_fails(self, tmp_path):
        # >30% drop in a gated ratio must fail the run (the CI contract).
        _run(tmp_path, _payload(speedup=3.0))
        rc, text = _run(tmp_path, _payload(speedup=1.5))
        assert rc == 1
        assert "REGRESSION" in text and "replay.speedup" in text

    def test_small_change_passes(self, tmp_path):
        _run(tmp_path, _payload(speedup=3.0, warm=2.0))
        rc, text = _run(tmp_path, _payload(speedup=2.7, warm=1.9))
        assert rc == 0
        assert "trend OK" in text

    def test_improvement_passes(self, tmp_path):
        _run(tmp_path, _payload(speedup=3.0))
        rc, _ = _run(tmp_path, _payload(speedup=9.0))
        assert rc == 0

    def test_threshold_is_configurable(self, tmp_path):
        _run(tmp_path, _payload(speedup=3.0))
        rc, _ = _run(tmp_path, _payload(speedup=2.5), threshold=0.10)
        assert rc == 1

    def test_absolute_throughput_is_not_gated(self, tmp_path):
        # Same ratios on a machine 10x slower: records, does not fail.
        fast_box = _payload()
        slow_box = _payload()
        slow_box["replay"]["batched_deps_per_sec"] = 1e5
        slow_box["replay"]["scalar_deps_per_sec"] = 1e5 / 3.0
        _run(tmp_path, fast_box)
        rc, _ = _run(tmp_path, slow_box)
        assert rc == 0

    def test_new_gated_metric_skips_first_comparison(self, tmp_path):
        old = _payload()
        del old["parallel"]  # a history entry from before the metric
        _run(tmp_path, old)
        rc, _ = _run(tmp_path, _payload())
        assert rc == 0

    def test_check_regressions_reports_both_values(self):
        prev = trend.make_entry(_payload(speedup=4.0), timestamp=0.0)
        cur = trend.make_entry(_payload(speedup=2.0), timestamp=1.0)
        (reg,) = trend.check_regressions(prev, cur)
        assert reg["metric"] == "replay.speedup"
        assert reg["previous"] == 4.0 and reg["current"] == 2.0
        assert reg["drop"] == pytest.approx(0.5)

    def test_real_bench_payload_round_trips(self, tmp_path):
        # The actual benchmark output shape (see bench_throughput.py)
        # feeds the gate without modification.
        payload = {
            "preset": "fast",
            "replay": {"speedup": 3.2, "batched_deps_per_sec": 2.1e6,
                       "scalar_deps_per_sec": 6.5e5},
            "parallel": {"speedup": 1.4, "speedup_cold": 1.4,
                         "speedup_warm": 2.8,
                         "pool_startup_seconds": 0.12},
        }
        rc, _ = _run(tmp_path, payload)
        assert rc == 0
        (entry,) = trend.load_history(tmp_path / "hist.jsonl")
        assert entry["metrics"]["parallel.speedup_warm"] == 2.8


def _full_payload(speedup=3.0, pspeed=0.9, wall=5.0, overhead=0.5,
                  top1=1.0):
    payload = _payload(speedup=speedup)
    payload["parallel"]["speedup"] = pspeed
    payload["trace_io"] = {"read_speedup": 2.0, "write_speedup": 3.0}
    payload["corpus_wall_seconds"] = wall
    payload["frontier"] = {"rate": 0.5, "fifo": 4,
                           "overhead_proxy": overhead, "top1": top1,
                           "recall": 1.0}
    return payload


class TestDirectionalGates:
    def test_wall_time_rise_within_threshold_passes(self, tmp_path):
        _run(tmp_path, _full_payload(wall=5.0))
        rc, text = _run(tmp_path, _full_payload(wall=7.0))  # +40% < 50%
        assert rc == 0
        assert "trend OK" in text

    def test_wall_time_collapse_fails(self, tmp_path):
        _run(tmp_path, _full_payload(wall=5.0))
        rc, text = _run(tmp_path, _full_payload(wall=8.0))  # +60% > 50%
        assert rc == 1
        assert "corpus_wall_seconds" in text

    def test_wall_time_improvement_passes(self, tmp_path):
        _run(tmp_path, _full_payload(wall=5.0))
        rc, _ = _run(tmp_path, _full_payload(wall=2.0))
        assert rc == 0

    def test_parallel_speedup_gate_is_widened(self, tmp_path):
        # The run default (30%) does not apply: the warm-pool gate only
        # trips on a collapse beyond its own 50% threshold.
        _run(tmp_path, _full_payload(pspeed=1.0))
        rc, _ = _run(tmp_path, _full_payload(pspeed=0.6))  # -40% < 50%
        assert rc == 0
        rc, text = _run(tmp_path, _full_payload(pspeed=0.2))  # -67% > 50%
        assert rc == 1
        assert "parallel.speedup" in text and "50%" in text

    def test_absent_gated_metric_logs_a_skip(self, tmp_path):
        _run(tmp_path, _full_payload())
        missing = _full_payload()
        del missing["corpus_wall_seconds"]
        rc, text = _run(tmp_path, missing)
        assert rc == 0
        assert "gate skipped: corpus_wall_seconds" in text
        assert "current entry" in text

    def test_check_regressions_collects_skip_reasons(self):
        prev = trend.make_entry(_payload(), timestamp=0.0)
        cur = trend.make_entry(_full_payload(), timestamp=1.0)
        skips = []
        regs = trend.check_regressions(prev, cur, skips=skips)
        assert regs == []
        skipped = {s["metric"] for s in skips}
        assert "corpus_wall_seconds" in skipped
        assert "parallel.speedup" in skipped

    def test_frontier_overhead_growth_fails(self, tmp_path):
        # The pick suddenly costing >50% more of full-rate overhead
        # means sampling stopped paying for itself.
        _run(tmp_path, _full_payload(overhead=0.5))
        rc, _ = _run(tmp_path, _full_payload(overhead=0.7))  # +40% < 50%
        assert rc == 0
        _run(tmp_path, _full_payload(overhead=0.5), history="h2.jsonl")
        rc, text = _run(tmp_path, _full_payload(overhead=0.8),  # +60%
                        history="h2.jsonl")
        assert rc == 1
        assert "frontier.overhead_proxy" in text

    def test_frontier_top1_collapse_fails(self, tmp_path):
        _run(tmp_path, _full_payload(top1=1.0))
        rc, _ = _run(tmp_path, _full_payload(top1=0.8))  # -20% < 25%
        assert rc == 0
        _run(tmp_path, _full_payload(top1=1.0), history="h2.jsonl")
        rc, text = _run(tmp_path, _full_payload(top1=0.6),  # -40% > 25%
                        history="h2.jsonl")
        assert rc == 1
        assert "frontier.top1" in text

    def test_frontier_recall_is_tracked_not_gated(self, tmp_path):
        _run(tmp_path, _full_payload())
        worse = _full_payload()
        worse["frontier"]["recall"] = 0.1
        rc, _ = _run(tmp_path, worse)
        assert rc == 0
        entries = trend.load_history(tmp_path / "hist.jsonl")
        assert entries[-1]["metrics"]["frontier.recall"] == 0.1

    def test_unavailable_gate_is_logged_every_run(self, tmp_path):
        # A gated metric the payload never produced must be called out
        # even on the very first run (no history yet): silence here is
        # how gates die without anyone noticing.
        rc, text = _run(tmp_path, _payload())
        assert rc == 0
        assert ("gate unavailable: corpus_wall_seconds "
                "(not in bench payload)") in text
        assert "gate unavailable: frontier.top1" in text
        assert "gate unavailable: frontier.overhead_proxy" in text
        # A full payload leaves nothing unavailable.
        rc, text = _run(tmp_path, _full_payload())
        assert rc == 0
        assert "gate unavailable" not in text

    def test_trace_io_speedups_are_tracked_not_gated(self, tmp_path):
        _run(tmp_path, _full_payload())
        worse = _full_payload()
        worse["trace_io"]["read_speedup"] = 0.1
        rc, _ = _run(tmp_path, worse)
        assert rc == 0
        entries = trend.load_history(tmp_path / "hist.jsonl")
        assert entries[-1]["metrics"]["trace_io.read_speedup"] == 0.1
