"""End-to-end diagnosis tests."""

import pytest

from repro.core.config import ACTConfig
from repro.core.diagnosis import (
    diagnose_failure,
    diagnose_with_buffer_escalation,
)
from repro.workloads.registry import get_bug


class TestTinyBugDiagnosis:
    def test_root_cause_found_rank_one(self, tinybug, fast_config):
        report = diagnose_failure(tinybug, config=fast_config,
                                  n_train_runs=4, n_pruning_runs=6)
        assert report.failed
        assert report.found
        assert report.rank == 1
        assert report.debug_buffer_position == 1

    def test_reuses_pretrained_model(self, tinybug, trained_tinybug):
        report = diagnose_failure(tinybug, trained=trained_tinybug,
                                  config=trained_tinybug.config,
                                  n_pruning_runs=6)
        assert report.found

    def test_non_failing_run_reports_nothing(self, tinybug, fast_config):
        report = diagnose_failure(tinybug, config=fast_config,
                                  n_train_runs=3, n_pruning_runs=3,
                                  failure_params={"buggy": False})
        assert not report.failed
        assert not report.found
        assert report.notes

    def test_findings_carry_outputs(self, tinybug, trained_tinybug):
        report = diagnose_failure(tinybug, trained=trained_tinybug,
                                  config=trained_tinybug.config,
                                  n_pruning_runs=6)
        for f in report.findings:
            assert 0.0 <= f.output < 0.5


class TestRealBugDiagnosis:
    """Representative Table V bugs end-to-end (one per category)."""

    @pytest.mark.parametrize("bug", ["mysql2", "gzip", "aget"])
    def test_bug_diagnosed(self, bug):
        report = diagnose_failure(get_bug(bug), config=ACTConfig(),
                                  n_train_runs=8, n_pruning_runs=10)
        assert report.failed
        assert report.found, report.notes
        assert report.rank <= 5

    def test_mysql1_overflows_default_buffer(self):
        report = diagnose_failure(get_bug("mysql1"), config=ACTConfig(),
                                  n_train_runs=8, n_pruning_runs=10)
        assert report.debug_overflowed
        assert not report.found

    def test_mysql1_found_with_escalated_buffer(self):
        report, size = diagnose_with_buffer_escalation(
            get_bug("mysql1"), config=ACTConfig(),
            n_train_runs=8, n_pruning_runs=10)
        assert size > 60
        assert report.found
        assert report.rank <= 5
