"""Differential + property wall for the adaptive tracking policy.

Pins the contracts :mod:`repro.core.policy` must keep:

1. **Policy-off identity** -- for every bug workload, diagnosing with
   :data:`NULL_POLICY` active (``rate=1.0``, backoff disabled) is
   byte-identical to the policy-free pipeline: identical report,
   identical telemetry counters/histograms/gauges and span tree,
   identical exported trace files (both formats), identical simulator
   results.
2. **Determinism** -- sampling decisions are a pure function of
   ``(seed, site, key)``: the same policy admits the same dependences
   serial or under ``--jobs N``.
3. **Monotonicity** -- the admitted set at a lower rate is a subset of
   the admitted set at any higher rate (same seed, same stream).
4. **Tightening dominates shedding** -- a dependence covered by the
   suspicion set is always admitted, even while backoff is shedding.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.common.errors import ConfigError
from repro.core.config import ACTConfig
from repro.core.diagnosis import diagnose_failure
from repro.core.offline import OfflineTrainer
from repro.core.policy import (
    NULL_POLICY,
    PolicySpec,
    get_policy,
    suspicious_pcs_from_report,
    use_policy,
)
from repro.sim.machine import simulate_run
from repro.trace.raw import RawDep
from repro.trace.trace_io import write_trace
from repro.workloads.framework import run_program
from repro.workloads.registry import all_bug_names, get_bug

_RUNS = dict(n_train_runs=3, n_pruning_runs=4)


# ---------------------------------------------------------------------
# Spec parsing / validation
# ---------------------------------------------------------------------


class TestPolicySpec:
    def test_defaults_are_disabled(self):
        assert NULL_POLICY.enabled is False
        assert PolicySpec(rate=1.0).enabled is False
        # A suspicious set alone does not enable: nothing to tighten from.
        assert PolicySpec(suspicious_pcs=(4096,)).enabled is False

    def test_sampling_or_backoff_enables(self):
        assert PolicySpec(rate=0.5).enabled is True
        assert PolicySpec(backoff=True).enabled is True

    def test_from_spec_round_trip(self):
        spec = PolicySpec.from_spec(
            "rate=0.5, seed=3, backoff=1, backoff_rate=0.25,"
            "suspicious_pcs=0x1000;8200")
        assert spec == PolicySpec(seed=3, rate=0.5, backoff=True,
                                  backoff_rate=0.25,
                                  suspicious_pcs=(4096, 8200))
        assert spec.enabled

    @pytest.mark.parametrize("bad", [
        "rate=2.0", "rate=-0.1", "backoff_threshold=1.5",
        "backoff_rate=-1", "backoff_window=0", "nope=1", "rate",
    ])
    def test_bad_specs_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            PolicySpec.from_spec(bad)

    def test_suspicious_pcs_sorted_deduped(self):
        spec = PolicySpec(suspicious_pcs=(8, 4, 8))
        assert spec.suspicious_pcs == (4, 8)
        assert spec.covers(4, 99) and spec.covers(99, 8)
        assert not spec.covers(99, 98)
        assert not NULL_POLICY.covers(4, 8)

    def test_describe_mentions_active_knobs(self):
        text = PolicySpec(rate=0.5, backoff=True,
                          suspicious_pcs=(4096,)).describe()
        assert "rate=0.5" in text and "backoff" in text
        assert "0x1000" in text

    def test_fingerprint_is_json_safe_and_stable(self):
        import json

        a = PolicySpec(rate=0.5, suspicious_pcs=(8, 4)).fingerprint()
        b = PolicySpec(rate=0.5, suspicious_pcs=(4, 8)).fingerprint()
        assert a == b
        json.dumps(a)

    def test_ambient_default_is_null(self):
        assert get_policy() is NULL_POLICY
        with use_policy(PolicySpec(rate=0.5)) as active:
            assert get_policy() is active
        assert get_policy() is NULL_POLICY


# ---------------------------------------------------------------------
# Policy-off differential: byte-identical to the policy-free pipeline
# ---------------------------------------------------------------------


def _strip_spans(spans):
    return [{"name": s["name"], "attrs": s.get("attrs", {}),
             "children": _strip_spans(s.get("children", []))}
            for s in spans]


def _normalized(snapshot):
    """A snapshot without its wall-clock-dependent pieces."""
    gauges = {k: v for k, v in snapshot["gauges"].items()
              if k != "sched.events_per_sec"}
    return {"counters": snapshot["counters"],
            "histograms": snapshot["histograms"],
            "gauges": gauges,
            "spans": _strip_spans(snapshot["spans"])}


@pytest.mark.slow
class TestPolicyOffIdentity:
    @pytest.mark.parametrize("bug", all_bug_names())
    def test_report_and_telemetry_identical(self, bug):
        program = get_bug(bug)
        with telemetry.use_registry(telemetry.Registry()) as plain_reg:
            plain = diagnose_failure(program, **_RUNS)
        with telemetry.use_registry(telemetry.Registry()) as off_reg:
            with use_policy(NULL_POLICY):
                off = diagnose_failure(program, **_RUNS)
        assert plain == off
        assert (_normalized(plain_reg.snapshot())
                == _normalized(off_reg.snapshot()))

    def test_explicit_policy_argument_matches_ambient(self):
        program = get_bug("gzip")
        plain = diagnose_failure(program, **_RUNS)
        off = diagnose_failure(program, policy=NULL_POLICY, **_RUNS)
        assert plain == off

    def test_identity_holds_with_jobs(self):
        program = get_bug("gzip")
        plain = diagnose_failure(program, jobs=2, **_RUNS)
        off = diagnose_failure(program, policy=NULL_POLICY, jobs=2, **_RUNS)
        assert plain == off

    @pytest.mark.parametrize("fmt", ["jsonl", "columnar"])
    def test_trace_files_byte_identical(self, fmt, tmp_path):
        run = run_program(get_bug("gzip"), seed=1, buggy=True)
        plain_path = tmp_path / f"plain.{fmt}"
        off_path = tmp_path / f"off.{fmt}"
        write_trace(run, plain_path, trace_format=fmt)
        with use_policy(NULL_POLICY):
            write_trace(run, off_path, trace_format=fmt)
        assert plain_path.read_bytes() == off_path.read_bytes()

    def test_simulator_results_identical(self, tinybug):
        trained = OfflineTrainer(config=ACTConfig(seq_len=3)).train(
            tinybug, n_runs=3, buggy=False)
        run = run_program(tinybug, seed=5, buggy=True)
        plain = simulate_run(run, trained=trained)
        with use_policy(NULL_POLICY):
            off = simulate_run(run, trained=trained)
        # Everything except the (unordered-identity) module objects.
        import dataclasses

        for f in dataclasses.fields(plain):
            if f.name == "act_modules":
                continue
            assert getattr(plain, f.name) == getattr(off, f.name), f.name
        assert off.deps_shed == 0
        assert all(m.policy_state is None
                   for m in off.act_modules.values())


# ---------------------------------------------------------------------
# Active policy: deterministic, engine-gated, visible in the report
# ---------------------------------------------------------------------


class TestActivePolicy:
    def test_sampling_sheds_and_notes_it(self):
        program = get_bug("gzip")
        report = diagnose_failure(program,
                                  policy=PolicySpec(rate=0.5), **_RUNS)
        assert any("adaptive policy active" in note for note in report.notes)
        assert any("shed" in note for note in report.notes)

    def test_serial_equals_jobs(self):
        program = get_bug("gzip")
        policy = PolicySpec(seed=3, rate=0.5, backoff=True)
        serial = diagnose_failure(program, policy=policy, **_RUNS)
        parallel = diagnose_failure(program, policy=policy, jobs=4, **_RUNS)
        assert serial == parallel

    def test_rerun_is_deterministic(self):
        program = get_bug("gzip")
        policy = PolicySpec(seed=3, rate=0.5)
        assert (diagnose_failure(program, policy=policy, **_RUNS)
                == diagnose_failure(program, policy=policy, **_RUNS))

    def test_non_nn_engine_rejects_enabled_policy(self):
        with pytest.raises(ConfigError):
            diagnose_failure(get_bug("gzip"), engine="pset",
                             policy=PolicySpec(rate=0.5), **_RUNS)

    def test_non_nn_engine_accepts_disabled_policy(self):
        from repro.core.diagnosis import DiagnosisReport

        report = diagnose_failure(get_bug("gzip"), engine="pset",
                                  policy=NULL_POLICY, **_RUNS)
        assert isinstance(report, DiagnosisReport)

    def test_suspicion_feedback_loop(self):
        """PCs from a full-rate report restore coverage when sampling."""
        program = get_bug("gzip")
        full = diagnose_failure(program, **_RUNS)
        pcs = suspicious_pcs_from_report(full)
        assert pcs == tuple(sorted(set(pcs)))
        tightened = diagnose_failure(
            program, policy=PolicySpec(rate=0.25, suspicious_pcs=pcs),
            **_RUNS)
        assert any("tightened" in note for note in tightened.notes)


# ---------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------


_keys = st.tuples(st.integers(0, 7), st.integers(0, 2 ** 16))


class TestSamplingProperties:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), key=_keys)
    def test_decision_is_pure_function_of_seed_site_key(self, seed, key):
        a = PolicySpec(seed=seed, rate=0.5)
        b = PolicySpec(seed=seed, rate=0.5, backoff_window=7)
        draw = a.uniform("dep", *key)
        assert 0.0 <= draw < 1.0
        # Same (seed, site, key) => same draw, whatever the other knobs.
        assert draw == b.uniform("dep", *key)
        assert a.uniform("trace_record", *key) == b.uniform("trace_record",
                                                            *key)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2 ** 16),
           lo=st.floats(0.0, 1.0), hi=st.floats(0.0, 1.0),
           n=st.integers(1, 200))
    def test_sampled_count_monotone_in_rate(self, seed, lo, hi, n):
        lo, hi = min(lo, hi), max(lo, hi)
        low = PolicySpec(seed=seed, rate=lo)
        high = PolicySpec(seed=seed, rate=hi)
        low_set = {i for i in range(n) if low.samples_record(0, i)}
        high_set = {i for i in range(n) if high.samples_record(0, i)}
        assert low_set <= high_set
        if hi >= 1.0:
            assert len(high_set) == n

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), n=st.integers(1, 100))
    def test_state_decisions_replay_identically(self, seed, n):
        """Two fresh states over the same stream agree dep for dep --
        the property that makes serial == --jobs N."""
        spec = PolicySpec(seed=seed, rate=0.5)
        deps = [RawDep(store_pc=100 + i, load_pc=200 + i) for i in range(n)]
        a, b = spec.state(), spec.state()
        assert [a.admit(d, tid=1) for d in deps] == \
               [b.admit(d, tid=1) for d in deps]

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(seed=st.integers(0, 2 ** 16),
           rate=st.floats(0.0, 0.9), n=st.integers(1, 100),
           sus=st.sets(st.integers(100, 120), min_size=1, max_size=4))
    def test_backoff_never_drops_a_tightened_dep(self, seed, rate, n, sus):
        spec = PolicySpec(seed=seed, rate=rate, backoff=True,
                          backoff_threshold=0.0, backoff_window=1,
                          backoff_rate=0.0, suspicious_pcs=tuple(sus))
        state = spec.state()
        # One hot observation flips the controller into shedding, where
        # the effective rate is rate * 0.0 = nothing but the sus set.
        state.note_stall()
        assert state.shedding
        covered = [RawDep(store_pc=pc, load_pc=999) for pc in sus] * 3
        uncovered = [RawDep(store_pc=1000 + i, load_pc=999)
                     for i in range(n)]
        for dep in covered:
            assert state.admit(dep, tid=0)
        assert all(not state.admit(dep, tid=0) for dep in uncovered)
        assert state.tightened == len(covered)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2 ** 16))
    def test_rate_zero_sheds_everything_uncovered(self, seed):
        state = PolicySpec(seed=seed, rate=0.0).state()
        deps = [RawDep(store_pc=i, load_pc=i + 1) for i in range(20)]
        assert not any(state.admit(d, tid=0) for d in deps)
        assert state.shed == 20 and state.admitted == 0


class TestBackoffController:
    def test_window_mean_drives_shedding(self):
        spec = PolicySpec(rate=0.5, backoff=True, backoff_threshold=0.5,
                          backoff_window=4)
        state = spec.state()
        for frac in (0.9, 0.9, 0.9, 0.9):
            state.note_occupancy(frac)
        assert state.shedding and state.shed_windows == 1
        for frac in (0.1, 0.1, 0.1, 0.1):
            state.note_occupancy(frac)
        assert not state.shedding

    def test_no_backoff_means_no_controller(self):
        state = PolicySpec(rate=0.5).state()
        for _ in range(200):
            state.note_occupancy(1.0)
        assert not state.shedding
