"""Tests for offline training: collection, examples, augmentation."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.core.config import ACTConfig
from repro.core.offline import (
    OfflineTrainer,
    augment_negative_sequences,
    collect_correct_runs,
    evaluate_false_negative_rate,
    evaluate_false_positive_rate,
    sequences_from_runs,
    _dedupe,
)
from repro.trace.raw import RawDep


class TestCollectRuns:
    def test_collects_requested_count(self, tinybug):
        runs = collect_correct_runs(tinybug, 3, buggy=False)
        assert len(runs) == 3
        assert {r.seed for r in runs} == {0, 1, 2}

    def test_rejects_failing_runs(self, tinybug):
        with pytest.raises(ReproError, match="failed"):
            collect_correct_runs(tinybug, 2, buggy=True)


class TestSequencesFromRuns:
    def test_pooled_sequences(self, pingpong):
        runs = collect_correct_runs(pingpong, 3)
        pos, neg = sequences_from_runs(runs, 3)
        assert pos
        assert all(len(s) == 3 for s in pos)

    def test_per_thread_split(self, pingpong):
        runs = collect_correct_runs(pingpong, 2)
        per = sequences_from_runs(runs, 2, pool_threads=False)
        assert set(per) <= {0, 1}
        for pos, _neg in per.values():
            assert all(len(s) == 2 for s in pos)

    def test_line_granularity_view_differs(self, tinybug):
        runs = collect_correct_runs(tinybug, 2, buggy=False)
        word_pos, _ = sequences_from_runs(runs, 2, granularity=4)
        line_pos, _ = sequences_from_runs(runs, 2, granularity=64)
        assert word_pos and line_pos


class TestAugmentation:
    def _seqs(self):
        return [
            (RawDep(0x10, 0x100), RawDep(0x14, 0x104)),
            (RawDep(0x14, 0x104), RawDep(0x10, 0x100)),
        ]

    def test_never_produces_valid_pairs(self):
        seqs = self._seqs()
        out = augment_negative_sequences(seqs, store_pcs=[0x10, 0x14, 0x18])
        valid = {(0x10, 0x100), (0x14, 0x104)}
        for seq in out:
            assert (seq[-1].store_pc, seq[-1].load_pc) not in valid

    def test_respects_protected_pairs(self):
        seqs = self._seqs()
        out = augment_negative_sequences(
            seqs, store_pcs=[0x10, 0x14, 0x18],
            protected_pairs={(0x18, 0x100), (0x18, 0x104)})
        for seq in out:
            assert seq[-1].store_pc != 0x18

    def test_keeps_thread_label(self):
        seqs = [(RawDep(0x10, 0x100, inter_thread=True),)]
        out = augment_negative_sequences(seqs, store_pcs=[0x10, 0x18])
        assert out
        for seq in out:
            assert seq[-1].inter_thread is True

    def test_preserves_prefix(self):
        seqs = self._seqs()
        out = augment_negative_sequences(seqs, store_pcs=[0x10, 0x14, 0x18])
        prefixes = {s[:-1] for s in seqs}
        for seq in out:
            assert seq[:-1] in prefixes

    def test_deterministic(self):
        seqs = self._seqs()
        a = augment_negative_sequences(seqs, seed=1, store_pcs=[0x10, 0x18])
        b = augment_negative_sequences(seqs, seed=1, store_pcs=[0x10, 0x18])
        assert a == b

    def test_no_candidates_yields_nothing(self):
        seqs = [(RawDep(0x10, 0x100),)]
        out = augment_negative_sequences(seqs, store_pcs=[0x10])
        assert out == []


class TestTrainer:
    def test_training_produces_deployable_model(self, trained_tinybug):
        t = trained_tinybug
        assert t.default_weights is not None
        module = t.make_module(0)
        assert module.net.n_inputs == t.config.n_inputs

    def test_chkwt_semantics(self, trained_tinybug):
        t = trained_tinybug
        assert not t.has_weights(5)  # pooled training: no per-thread set
        t.record_thread_weights(5, t.default_weights)
        assert t.has_weights(5)

    def test_weights_for_falls_back_to_default(self, trained_tinybug):
        t = trained_tinybug
        assert np.allclose(t.weights_for(42), t.default_weights)

    def test_per_thread_training(self, pingpong):
        cfg = ACTConfig(seq_len=2)
        trained = OfflineTrainer(config=cfg).train(pingpong, n_runs=3,
                                                   pool_threads=False)
        # both threads of pingpong produce dependences
        assert trained.has_weights(0) or trained.has_weights(1)

    def test_needs_program_or_runs(self):
        with pytest.raises(ReproError):
            OfflineTrainer().train()

    def test_low_false_positive_on_held_out_runs(self, trained_tinybug,
                                                 tinybug):
        test_runs = collect_correct_runs(tinybug, 3, seed0=50, buggy=False)
        rate = evaluate_false_positive_rate(trained_tinybug, test_runs)
        assert rate <= 0.1

    def test_detects_synthesized_negatives(self, trained_tinybug, tinybug):
        test_runs = collect_correct_runs(tinybug, 3, seed0=50, buggy=False)
        rate = evaluate_false_negative_rate(trained_tinybug, test_runs)
        assert rate <= 0.5  # most synthesized invalids are caught

    def test_search_returns_best_choice(self, tinybug):
        cfg = ACTConfig(seq_len=3)
        trainer = OfflineTrainer(config=cfg)
        best, choices, encoder = trainer.search(
            tinybug, seq_lens=(2, 3), hidden_widths=(3,),
            n_train_runs=3, n_test_runs=2, buggy=False)
        assert best in choices
        assert best.mispred_rate == min(c.mispred_rate for c in choices)


class TestDedupe:
    def test_preserves_first_occurrence_order(self):
        seqs = ["b", "a", "b", "c", "a"]
        assert _dedupe(seqs) == ["b", "a", "c"]
