"""The adaptive-overhead frontier sweep and its seed-pinned golden.

Mirrors the shootout conventions: a small seed-pinned sweep shared by
the golden test and CI's frontier-smoke job, canonical-JSON byte
identity, serial == ``--jobs 4``, and the timestamp-free accuracy
trajectory with last-entry dedupe.
"""

import json
import pathlib

import pytest

from repro.common.errors import ConfigError
from repro.core.policy import NULL_POLICY
from repro.analysis.frontier import (
    FrontierSpec,
    append_bench,
    bench_entry,
    format_frontier,
    frontier_json,
    run_frontier,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

# The seed-pinned sweep shared by the golden test and CI's
# frontier-smoke job (.github/workflows/ci.yml): small enough for
# tier-1, wide enough for a real baseline-vs-sampled comparison.
FRONT = FrontierSpec(seed=7, size=5, rates=(1.0, 0.5), fifo_sizes=(4, 16),
                     n_train_runs=4, n_pruning_runs=6)


@pytest.fixture(scope="session")
def small_frontier():
    return run_frontier(FRONT)


class TestFrontierSpec:
    def test_rates_normalized_and_baseline_always_present(self):
        spec = FrontierSpec(rates=(0.5, 0.25, 0.5))
        assert spec.rates == (1.0, 0.5, 0.25)
        assert FrontierSpec(rates=()).rates == (1.0,)

    def test_fifo_sizes_sorted_deduped(self):
        assert FrontierSpec(fifo_sizes=(16, 4, 16)).fifo_sizes == (4, 16)

    @pytest.mark.parametrize("kwargs", [
        dict(rates=(0.0,)), dict(rates=(1.5,)),
        dict(fifo_sizes=()), dict(fifo_sizes=(0,)),
    ])
    def test_bad_spec_raises_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            FrontierSpec(**kwargs)

    def test_policy_for_full_rate_is_null(self):
        spec = FrontierSpec(rates=(1.0, 0.5), backoff=True)
        assert spec.policy_for(1.0) is NULL_POLICY
        policy = spec.policy_for(0.5)
        assert policy.enabled and policy.rate == 0.5 and policy.backoff

    def test_fingerprint_is_json_safe(self):
        json.dumps(FRONT.fingerprint())


@pytest.mark.slow
class TestFrontierGolden:
    def _check(self, path, text, update):
        if update:
            path.write_text(text, encoding="utf-8")
            pytest.skip(f"updated {path.name}")
        assert path.exists(), (
            f"golden file {path} missing; run pytest --update-golden")
        assert text == path.read_text(encoding="utf-8")

    def test_metrics_json_matches_golden(self, small_frontier,
                                         update_golden):
        self._check(GOLDEN_DIR / "frontier_s7.json",
                    frontier_json(small_frontier), update_golden)

    def test_metrics_json_is_canonical(self, small_frontier):
        text = frontier_json(small_frontier)
        doc = json.loads(text)
        assert text == json.dumps(doc, sort_keys=True, indent=2) + "\n"

    def test_serial_vs_jobs_4_byte_identical(self, small_frontier):
        parallel = run_frontier(FRONT, jobs=4)
        assert frontier_json(parallel) == frontier_json(small_frontier)


@pytest.mark.slow
class TestFrontierMetrics:
    def test_every_sweep_point_present(self, small_frontier):
        points = small_frontier.metrics["points"]
        assert {(p["rate"], p["fifo"]) for p in points} == {
            (r, f) for r in FRONT.rates for f in FRONT.fifo_sizes}

    def test_full_rate_baseline_ratios_are_one(self, small_frontier):
        for p in small_frontier.metrics["points"]:
            if p["rate"] >= 1.0:
                assert p["overhead_vs_full"] == 1.0
                assert p["deps_shed"] == 0

    def test_sampling_reduces_the_overhead_proxy(self, small_frontier):
        points = small_frontier.metrics["points"]
        by_key = {(p["rate"], p["fifo"]): p for p in points}
        for fifo in FRONT.fifo_sizes:
            sampled = by_key[(0.5, fifo)]
            assert sampled["deps_shed"] > 0
            assert (sampled["overhead_proxy"]
                    < by_key[(1.0, fifo)]["overhead_proxy"])

    def test_pareto_front_is_non_dominated(self, small_frontier):
        points = small_frontier.metrics["points"]
        front = [p for p in points if p["pareto"]]
        assert front
        for p in front:
            for q in points:
                if q is p:
                    continue
                assert not (
                    q["overhead_proxy"] <= p["overhead_proxy"]
                    and (q["top1"] or 0.0) >= (p["top1"] or 0.0)
                    and (q["overhead_proxy"] < p["overhead_proxy"]
                         or (q["top1"] or 0.0) > (p["top1"] or 0.0)))
        listed = {tuple(rf) for rf in small_frontier.metrics["pareto"]}
        assert listed == {(p["rate"], p["fifo"]) for p in front}

    def test_summary_pick_is_a_swept_point(self, small_frontier):
        s = small_frontier.metrics["frontier"]
        assert (s["rate"], s["fifo"]) in {
            (p["rate"], p["fifo"])
            for p in small_frontier.metrics["points"]}
        # Ratios against the full-rate baseline, so gateable anywhere.
        assert s["overhead_proxy"] is None or 0 < s["overhead_proxy"] <= 1.0

    def test_table_renders_every_point_and_the_pick(self, small_frontier):
        text = format_frontier(small_frontier)
        assert text.splitlines()[0] == (
            "Adaptive-overhead frontier (seed 7, 5 programs)")
        assert text.count("\n") >= len(small_frontier.metrics["points"])
        assert "frontier pick: rate" in text

    def test_bench_append_and_dedupe(self, small_frontier, tmp_path):
        path = tmp_path / "BENCH_accuracy.json"
        doc = append_bench(small_frontier, str(path))
        assert doc["schema"] == 1
        assert doc["entries"] == [bench_entry(small_frontier)]
        again = append_bench(small_frontier, str(path))
        assert again["entries"] == doc["entries"]
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == doc
        entry = doc["entries"][0]
        assert entry["experiment"] == "frontier"
        assert "timestamp" not in entry
        assert "frontier" in entry and "pareto" in entry
