"""Unit tests for the fault-injection subsystem (repro.faults).

Covers the deterministic plan, every injection site, the recovery
machinery around each site, and the checksummed checkpoint store. The
end-to-end guarantees (zero-fault byte identity, quarantine-subset
equivalence, kill/resume) live in tests/test_faults_differential.py.
"""

import json
import os

import numpy as np
import pytest

from repro import telemetry
from repro.common.errors import CheckpointError, ConfigError, TraceError
from repro.core.buffers import InputGeneratorBuffer
from repro.core.deploy import deploy_on_run
from repro.faults import (
    ZERO_PLAN,
    Checkpoint,
    FaultPlan,
    Quarantine,
    flip_weights,
    get_plan,
    use_plan,
)
from repro.trace.trace_io import read_trace, write_trace
from repro.workloads.framework import run_program


class TestFaultPlan:
    def test_zero_plan_never_fires(self):
        assert not ZERO_PLAN.enabled
        assert not ZERO_PLAN.fires("trace_drop", 0)
        assert not ZERO_PLAN.fires("worker_kill", 3, 1)

    def test_decisions_are_deterministic(self):
        a = FaultPlan(seed=7, trace_drop=0.3)
        b = FaultPlan(seed=7, trace_drop=0.3)
        for i in range(200):
            assert a.fires("trace_drop", i) == b.fires("trace_drop", i)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, trace_drop=0.5)
        b = FaultPlan(seed=2, trace_drop=0.5)
        fires_a = [a.fires("trace_drop", i) for i in range(100)]
        fires_b = [b.fires("trace_drop", i) for i in range(100)]
        assert fires_a != fires_b

    def test_rate_controls_frequency(self):
        plan = FaultPlan(seed=11, trace_drop=0.3)
        hits = sum(plan.fires("trace_drop", i) for i in range(10_000))
        assert 0.25 < hits / 10_000 < 0.35

    def test_explicit_corrupt_seeds_always_fire(self):
        plan = FaultPlan(seed=0, corrupt_run_seeds=(104,))
        assert plan.enabled
        assert plan.fires("run_corrupt", 104)
        assert not plan.fires("run_corrupt", 105)

    def test_explicit_kill_tasks_always_fire(self):
        plan = FaultPlan(seed=0, kill_tasks=((2, 0), (2, 1)))
        assert plan.fires("worker_kill", 2, 0)
        assert plan.fires("worker_kill", 2, 1)
        assert not plan.fires("worker_kill", 2, 2)
        assert not plan.fires("worker_kill", 3, 0)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(trace_drop=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(worker_kill=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(max_retries=-1)

    def test_spec_round_trip(self):
        plan = FaultPlan(seed=3, worker_kill=0.1, trace_drop=0.05,
                         corrupt_run_seeds=(104, 105),
                         kill_tasks=((2, 0), (2, 1)))
        assert FaultPlan.from_spec(plan.describe()) == plan

    def test_spec_rejects_unknown_key(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_spec("frobnicate=1")
        with pytest.raises(ConfigError):
            FaultPlan.from_spec("justakey")

    def test_active_plan_context(self):
        assert get_plan() is ZERO_PLAN
        plan = FaultPlan(seed=1, fifo_overflow=0.5)
        with use_plan(plan):
            assert get_plan() is plan
            with use_plan(ZERO_PLAN):
                assert get_plan() is ZERO_PLAN
            assert get_plan() is plan
        assert get_plan() is ZERO_PLAN

    def test_context_restores_after_error(self):
        with pytest.raises(RuntimeError):
            with use_plan(FaultPlan(seed=1, trace_drop=0.1)):
                raise RuntimeError("boom")
        assert get_plan() is ZERO_PLAN


@pytest.mark.parametrize("fmt", ["jsonl", "columnar"])
class TestTraceFaults:
    """Every trace-fault pin holds under both on-disk formats.

    The decisions come from the shared, format-agnostic
    :func:`repro.trace.trace_io.fault_decisions`, so the same plan
    damages the same records whether the writer emits JSON lines or
    packed columns.
    """

    def _run(self, pingpong):
        return run_program(pingpong, seed=1)

    def test_zero_plan_output_byte_identical(self, pingpong, tmp_path, fmt):
        run = self._run(pingpong)
        plain, faulted = tmp_path / "a.trace", tmp_path / "b.trace"
        write_trace(run, plain, trace_format=fmt)
        write_trace(run, faulted, faults=ZERO_PLAN, trace_format=fmt)
        assert plain.read_bytes() == faulted.read_bytes()

    def test_dropped_records_shorten_trace(self, pingpong, tmp_path, fmt):
        run = self._run(pingpong)
        path = tmp_path / "t.trace"
        write_trace(run, path, faults=FaultPlan(seed=2, trace_drop=0.3),
                    trace_format=fmt)
        back = read_trace(path)
        assert 0 < len(back.events) < len(run.events)

    def test_corrupt_records_fail_closed(self, pingpong, tmp_path, fmt):
        run = self._run(pingpong)
        path = tmp_path / "t.trace"
        write_trace(run, path, faults=FaultPlan(seed=2, trace_corrupt=0.3),
                    trace_format=fmt)
        with pytest.raises(TraceError):
            read_trace(path)

    def test_recovery_skips_and_reports(self, pingpong, tmp_path, fmt):
        run = self._run(pingpong)
        path = tmp_path / "t.trace"
        plan = FaultPlan(seed=2, trace_corrupt=0.3)
        with telemetry.use_registry(telemetry.Registry()) as reg:
            write_trace(run, path, faults=plan, trace_format=fmt)
            quarantine = Quarantine()
            back = read_trace(path, quarantine=quarantine)
        skipped = back.meta["skipped_records"]
        assert skipped > 0
        assert len(back.events) == len(run.events) - skipped
        assert len(quarantine) == 1
        record = quarantine.records[0]
        assert record.phase == "trace.read"
        assert record.key == str(path)
        snap = reg.snapshot()["counters"]
        assert snap["faults.trace_corruptions"] == skipped
        assert snap["faults.trace_records_skipped"] == skipped

    def test_reorder_swaps_adjacent_records(self, pingpong, tmp_path, fmt):
        run = self._run(pingpong)
        path = tmp_path / "t.trace"
        write_trace(run, path, faults=FaultPlan(seed=5, trace_reorder=0.3),
                    trace_format=fmt)
        back = read_trace(path)
        assert len(back.events) == len(run.events)
        assert back.events != run.events
        assert sorted(back.events, key=repr) == sorted(run.events, key=repr)

    def test_same_plan_damages_same_records_in_both_formats(
            self, pingpong, tmp_path, fmt):
        run = self._run(pingpong)
        plan = FaultPlan(seed=13, trace_drop=0.2, trace_corrupt=0.2,
                         trace_reorder=0.2)
        mine, other = tmp_path / "a.trace", tmp_path / "b.trace"
        write_trace(run, mine, faults=plan, trace_format=fmt)
        write_trace(run, other, faults=plan,
                    trace_format="columnar" if fmt == "jsonl" else "jsonl")
        a = read_trace(mine, recover=True)
        b = read_trace(other, recover=True)
        assert a.events == b.events
        assert a.meta.get("skipped_records") == b.meta.get("skipped_records")

    def test_header_damage_never_recoverable(self, pingpong, tmp_path, fmt):
        path = tmp_path / "t.trace"
        if fmt == "jsonl":
            path.write_text("{not json\n")
        else:
            write_trace(self._run(pingpong), path, trace_format="columnar")
            data = bytearray(path.read_bytes())
            data[14] ^= 0xFF  # inside the header JSON
            path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            read_trace(path, recover=True)


class TestFifoOverflow:
    def test_overrun_clears_unconsumed_entries(self):
        buf = InputGeneratorBuffer(capacity=5, tid=0)
        with use_plan(FaultPlan(seed=0, fifo_overflow=1.0)):
            with telemetry.use_registry(telemetry.Registry()) as reg:
                for dep in "abcde":
                    buf.push(dep)
        assert len(buf) == 1  # every push wiped the backlog first
        assert reg.snapshot()["counters"]["faults.fifo_overflows"] == 5

    def test_zero_plan_keeps_fifo_semantics(self):
        buf = InputGeneratorBuffer(capacity=3, tid=0)
        for dep in "abcde":
            buf.push(dep)
        assert buf.tail(3) == ["c", "d", "e"]

    def test_extend_never_fires(self):
        buf = InputGeneratorBuffer(capacity=5, tid=0)
        with use_plan(FaultPlan(seed=0, fifo_overflow=1.0)):
            buf.extend("abcde")
        assert len(buf) == 5


class TestWeightFlips:
    def test_flip_is_deterministic_and_nonfinite(self):
        plan = FaultPlan(seed=9, weight_flip=1.0)
        flat = np.zeros(24)
        a = flip_weights(flat, plan, 0)
        b = flip_weights(flat, plan, 0)
        assert np.array_equal(a, b, equal_nan=True)
        assert not np.isfinite(a).all()
        assert np.isfinite(flat).all()  # input untouched

    def test_make_network_hosts_flip_site(self, trained_tinybug):
        with use_plan(FaultPlan(seed=9, weight_flip=1.0)):
            net = trained_tinybug.make_network(0)
        assert not np.isfinite(net.read_weights()).all()

    def test_deploy_heals_flipped_weights(self, trained_tinybug, tinybug):
        failure = run_program(tinybug, seed=12345, buggy=True)
        clean = deploy_on_run(trained_tinybug, failure, fast=False)
        quarantine = Quarantine()
        with telemetry.use_registry(telemetry.Registry()) as reg:
            with use_plan(FaultPlan(seed=9, weight_flip=1.0)):
                healed = deploy_on_run(trained_tinybug, failure,
                                       quarantine=quarantine)
        counters = reg.snapshot()["counters"]
        assert counters["faults.weight_flips"] >= 1
        assert counters["faults.weights_healed"] >= 1
        assert len(quarantine) >= 1
        assert quarantine.records[0].phase == "deploy.weights"
        # Healing falls back to the pooled default weights: the replay
        # completes and every module ends the run with finite registers.
        assert healed.n_deps == clean.n_deps
        for module in healed.modules.values():
            assert np.isfinite(module.net.read_weights()).all()


class TestCheckpoint:
    FP = {"program": "gzip", "runs": 4}

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        cp = Checkpoint(str(path), "diagnosis", self.FP)
        cp.put("trained", {"weights": [1.5, 2.5]})
        back = Checkpoint.load(str(path))
        assert back.kind == "diagnosis"
        assert back.get("trained") == {"weights": [1.5, 2.5]}

    def test_open_resumes_matching_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpoint(str(path), "diagnosis", self.FP).put("p", 1)
        cp = Checkpoint.open(str(path), "diagnosis", self.FP)
        assert cp.resumed
        assert cp.get("p") == 1

    def test_open_fresh_when_missing(self, tmp_path):
        cp = Checkpoint.open(str(tmp_path / "ck.json"), "diagnosis", self.FP)
        assert not cp.resumed
        assert cp.get("p") is None

    def test_kind_mismatch_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpoint(str(path), "diagnosis", self.FP).save()
        with pytest.raises(CheckpointError):
            Checkpoint.open(str(path), "topology-search", self.FP)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpoint(str(path), "diagnosis", self.FP).save()
        with pytest.raises(CheckpointError):
            Checkpoint.open(str(path), "diagnosis", {"program": "gzip",
                                                     "runs": 20})

    def test_fingerprint_comparison_is_json_normalised(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpoint(str(path), "d", {"seeds": (1, 2)}).save()
        # Tuples become lists on disk; reopening with the tuple form
        # must still match.
        assert Checkpoint.open(str(path), "d", {"seeds": [1, 2]}).resumed
        assert Checkpoint.open(str(path), "d", {"seeds": (1, 2)}).resumed

    def test_checksum_detects_tampering(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpoint(str(path), "diagnosis", self.FP).put("p", [1, 2, 3])
        body = json.loads(path.read_text())
        body["phases"]["p"] = [1, 2, 4]
        path.write_text(json.dumps(body))
        with pytest.raises(CheckpointError, match="checksum"):
            Checkpoint.load(str(path))

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpoint(str(path), "diagnosis", self.FP).save()
        path.write_text(path.read_text()[:-20])
        with pytest.raises(CheckpointError):
            Checkpoint.load(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpoint.load(str(tmp_path / "nope.json"))

    def test_saves_are_atomic(self, tmp_path):
        path = tmp_path / "ck.json"
        cp = Checkpoint(str(path), "diagnosis", self.FP)
        for i in range(5):
            cp.put(f"phase{i}", list(range(i)))
            assert not os.path.exists(f"{path}.tmp")
            Checkpoint.load(str(path))  # every intermediate file is whole

    def test_telemetry_counters(self, tmp_path):
        path = tmp_path / "ck.json"
        with telemetry.use_registry(telemetry.Registry()) as reg:
            cp = Checkpoint.open(str(path), "d", self.FP)
            cp.put("a", 1)
            cp.put("b", 2)
            cp2 = Checkpoint.open(str(path), "d", self.FP)
            assert cp2.get("a") == 1
            assert cp2.get("missing") is None
        counters = reg.snapshot()["counters"]
        assert counters["checkpoint.saves"] == 2
        assert counters["checkpoint.resumes"] == 1
        assert counters["checkpoint.phases_reused"] == 1
