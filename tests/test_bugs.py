"""Tests for the Table V bug programs."""

import pytest

from repro.common.errors import SimulatedFailure
from repro.trace.raw import extract_raw_deps
from repro.workloads.framework import run_program
from repro.workloads.registry import all_bug_names, get_bug

ALL_BUGS = all_bug_names()
CONCURRENCY = ("aget", "apache", "memcached", "mysql1", "mysql2",
               "mysql3", "pbzip2")
SEQUENTIAL = ("gzip", "seq", "ptx", "paste")


class TestCorrectRuns:
    @pytest.mark.parametrize("name", ALL_BUGS)
    @pytest.mark.parametrize("seed", [0, 3, 11, 27])
    def test_correct_runs_never_fail(self, name, seed):
        run = run_program(get_bug(name), seed=seed, buggy=False)
        assert not run.failed, run.failure


class TestBuggyRuns:
    @pytest.mark.parametrize("name", ALL_BUGS)
    def test_buggy_run_fails(self, name):
        run = run_program(get_bug(name), seed=12345, buggy=True)
        assert run.failed
        assert isinstance(run.failure, SimulatedFailure)

    @pytest.mark.parametrize("name", ALL_BUGS)
    def test_root_cause_tagged(self, name):
        run = run_program(get_bug(name), seed=12345, buggy=True)
        truth = run.meta["root_cause"]
        assert truth
        for pair in truth:
            assert len(pair) == 2

    @pytest.mark.parametrize("name", ALL_BUGS)
    def test_root_cause_dep_actually_occurs(self, name):
        run = run_program(get_bug(name), seed=12345, buggy=True)
        truth = run.meta["root_cause"]
        streams = extract_raw_deps(run)
        seen = {(r.dep.store_pc, r.dep.load_pc)
                for s in streams.values() for r in s}
        assert truth & seen

    @pytest.mark.parametrize("name", ALL_BUGS)
    def test_root_cause_dep_never_in_correct_runs(self, name):
        truth = run_program(get_bug(name), seed=0,
                            buggy=True).meta["root_cause"]
        for seed in range(6):
            run = run_program(get_bug(name), seed=seed, buggy=False)
            streams = extract_raw_deps(run)
            seen = {(r.dep.store_pc, r.dep.load_pc)
                    for s in streams.values() for r in s}
            assert not (truth & seen), (name, seed)

    @pytest.mark.parametrize("name", CONCURRENCY)
    def test_concurrency_bugs_are_multithreaded(self, name):
        run = run_program(get_bug(name), seed=0, buggy=True)
        assert run.n_threads >= 2

    @pytest.mark.parametrize("name", SEQUENTIAL)
    def test_sequential_bugs_single_thread(self, name):
        run = run_program(get_bug(name), seed=0, buggy=True)
        assert run.n_threads == 1

    @pytest.mark.parametrize("name", ALL_BUGS)
    def test_failure_run_warm_enough_for_windows(self, name):
        """The failing thread must have >= 5 deps before the root cause
        so a full default-length sequence can form (Section III.C)."""
        run = run_program(get_bug(name), seed=12345, buggy=True)
        truth = run.meta["root_cause"]
        streams = extract_raw_deps(run)
        for stream in streams.values():
            for i, rec in enumerate(stream):
                if (rec.dep.store_pc, rec.dep.load_pc) in truth:
                    assert i >= 4, (name, i)
                    return
        pytest.fail("root-cause dep not found in any stream")


class TestSpecificShapes:
    def test_gzip_failure_input_has_interior_dash(self):
        """Figure 2(d): '-' in the middle triggers, at the start doesn't."""
        run = run_program(get_bug("gzip"), seed=0, buggy=True)
        assert "descriptor" in str(run.failure)

    def test_mysql1_long_tail_after_race(self):
        buggy = run_program(get_bug("mysql1"), seed=0, buggy=True)
        correct = run_program(get_bug("mysql1"), seed=0, buggy=False)
        assert len(buggy.events) > 2 * len(correct.events)

    def test_apache_double_free_message(self):
        run = run_program(get_bug("apache"), seed=0, buggy=True)
        assert "free" in str(run.failure)

    def test_ptx_overflow_reads_past_buffer(self):
        run = run_program(get_bug("ptx"), seed=0, buggy=True)
        assert "bounds" in str(run.failure)

    def test_paste_crash_is_immediate(self):
        run = run_program(get_bug("paste"), seed=0, buggy=True)
        assert run.events[-1].kind.is_memory()
