"""Tests for ACTConfig validation."""

import pytest

from repro.common.errors import ConfigError
from repro.core.config import ACTConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = ACTConfig()
        assert cfg.seq_len == 5
        assert cfg.n_inputs == 10
        assert cfg.debug_buffer == 60
        assert cfg.mispred_threshold == 0.05

    def test_seq_len_bounded_by_max_inputs(self):
        with pytest.raises(ConfigError):
            ACTConfig(seq_len=6, max_inputs=10)

    def test_seq_len_positive(self):
        with pytest.raises(ConfigError):
            ACTConfig(seq_len=0)

    def test_input_buffer_fits_sequence(self):
        with pytest.raises(ConfigError):
            ACTConfig(seq_len=5, input_gen_buffer=4)

    def test_threshold_range(self):
        with pytest.raises(ConfigError):
            ACTConfig(mispred_threshold=0.0)
        with pytest.raises(ConfigError):
            ACTConfig(mispred_threshold=1.0)

    def test_window_positive(self):
        with pytest.raises(ConfigError):
            ACTConfig(check_window=0)

    def test_debug_buffer_positive(self):
        with pytest.raises(ConfigError):
            ACTConfig(debug_buffer=0)

    def test_line_size_multiple_of_word(self):
        with pytest.raises(ConfigError):
            ACTConfig(line_size=30)
        ACTConfig(line_size=32)  # ok

    def test_with_creates_modified_copy(self):
        cfg = ACTConfig()
        cfg2 = cfg.with_(seq_len=3)
        assert cfg2.seq_len == 3
        assert cfg.seq_len == 5

    def test_with_validates(self):
        cfg = ACTConfig()
        with pytest.raises(ConfigError):
            cfg.with_(seq_len=9)

    def test_n_inputs_is_two_per_dep(self):
        assert ACTConfig(seq_len=3).n_inputs == 6
