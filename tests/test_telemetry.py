"""Tests for the telemetry subsystem (registry, spans, export, e2e)."""

import json

import pytest

from repro import telemetry
from repro.core.config import ACTConfig
from repro.core.diagnosis import diagnose_failure
from repro.telemetry.catalog import CATALOG, format_catalog


@pytest.fixture
def registry():
    return telemetry.Registry()


class TestCounters:
    def test_inc_accumulates(self, registry):
        registry.inc("x")
        registry.inc("x", 4)
        assert registry.counter("x").value == 5

    def test_float_increments(self, registry):
        registry.inc("cycles", 1.5)
        registry.inc("cycles", 2.25)
        assert registry.counter("cycles").value == pytest.approx(3.75)

    def test_same_name_same_counter(self, registry):
        assert registry.counter("a") is registry.counter("a")


class TestGaugesAndHistograms:
    def test_gauge_keeps_last(self, registry):
        registry.set_gauge("g", 1.0)
        registry.set_gauge("g", 7.0)
        assert registry.gauge("g").value == 7.0

    def test_histogram_stats(self, registry):
        for v in (1, 2, 2, 5):
            registry.observe("h", v)
        h = registry.histogram("h")
        assert h.count == 4
        assert h.min == 1 and h.max == 5
        assert h.mean == pytest.approx(2.5)
        assert h.buckets[2] == 2

    def test_histogram_float_bucketing(self, registry):
        registry.observe("h", 0.123456789)
        registry.observe("h", 0.123449)
        assert registry.histogram("h").buckets == {0.1235: 1, 0.1234: 1}


class TestLifecycle:
    def test_reset_clears_and_keeps_catalog(self, registry):
        registry.inc("act.deps_processed", 10)
        registry.inc("adhoc.metric")
        with registry.span("phase"):
            pass
        registry.reset()
        assert registry.counter("act.deps_processed").value == 0
        assert "adhoc.metric" not in registry.snapshot()["counters"]
        assert registry.spans == []

    def test_catalog_preregistered(self, registry):
        snap = registry.snapshot()
        for spec in CATALOG:
            section = {"counter": "counters", "gauge": "gauges",
                       "histogram": "histograms"}[spec.kind]
            assert spec.name in snap[section]

    def test_format_catalog_lists_all(self):
        text = format_catalog()
        assert "act.invalid_predictions" in text
        assert "sim.fifo_stalls" in text


class TestNullRegistry:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert isinstance(telemetry.get_registry(), telemetry.NullRegistry)

    def test_mutators_are_noops(self):
        null = telemetry.NullRegistry()
        null.inc("x", 5)
        null.observe("h", 1)
        null.set_gauge("g", 2)
        with null.span("s") as span:
            assert span.name == "null"
        snap = null.snapshot()
        assert snap["counters"] == {}
        assert snap["spans"] == []

    def test_use_registry_restores(self, registry):
        before = telemetry.get_registry()
        with telemetry.use_registry(registry):
            assert telemetry.get_registry() is registry
            assert telemetry.enabled()
        assert telemetry.get_registry() is before

    def test_set_registry_none_disables(self, registry):
        previous = telemetry.set_registry(registry)
        try:
            assert telemetry.enabled()
        finally:
            telemetry.set_registry(None)
        assert not telemetry.enabled()
        assert previous is telemetry.get_registry()


class TestSpans:
    def test_nesting(self, registry):
        with registry.span("outer", program="p"):
            with registry.span("inner"):
                pass
            with registry.span("inner2"):
                pass
        (root,) = registry.spans
        assert root.name == "outer"
        assert root.attrs == {"program": "p"}
        assert [c.name for c in root.children] == ["inner", "inner2"]
        assert root.duration >= max(c.duration for c in root.children)

    def test_sequential_roots(self, registry):
        with registry.span("a"):
            pass
        with registry.span("b"):
            pass
        assert [s.name for s in registry.spans] == ["a", "b"]

    def test_span_closed_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.span("broken"):
                raise RuntimeError("boom")
        (root,) = registry.spans
        assert root.duration > 0
        # The stack unwound: a new span is a root, not a child of "broken".
        with registry.span("after"):
            pass
        assert [s.name for s in registry.spans] == ["broken", "after"]


class TestExport:
    def _populate(self, registry):
        registry.inc("c", 3)
        registry.set_gauge("g", 2.5)
        registry.observe("h", 1)
        registry.observe("h", 0.25)
        with registry.span("root", seed=1):
            with registry.span("leaf"):
                pass

    def test_json_roundtrip(self, tmp_path):
        registry = telemetry.Registry(preregister_catalog=False)
        self._populate(registry)
        path = tmp_path / "profile.json"
        telemetry.write_profile(registry, path, meta={"k": "v"})
        profile = telemetry.read_profile(path)
        assert profile["meta"] == {"k": "v"}
        assert profile["counters"] == {"c": 3}
        assert profile["gauges"] == {"g": 2.5}
        assert profile["histograms"]["h"]["count"] == 2
        (root,) = profile["spans"]
        assert root["name"] == "root"
        assert root["children"][0]["name"] == "leaf"

    def test_jsonl_roundtrip_matches_json(self, tmp_path):
        registry = telemetry.Registry(preregister_catalog=False)
        self._populate(registry)
        telemetry.write_profile(registry, tmp_path / "p.json", meta={"k": 1})
        telemetry.write_profile(registry, tmp_path / "p.jsonl", meta={"k": 1})
        p_json = telemetry.read_profile(tmp_path / "p.json")
        p_jsonl = telemetry.read_profile(tmp_path / "p.jsonl")
        assert p_json == p_jsonl

    def test_jsonl_is_one_record_per_line(self, tmp_path):
        registry = telemetry.Registry(preregister_catalog=False)
        self._populate(registry)
        path = tmp_path / "p.jsonl"
        telemetry.write_profile(registry, path)
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        kinds = {r["type"] for r in records}
        assert kinds == {"meta", "counter", "gauge", "histogram", "span"}

    def test_format_profile_renders_tables(self):
        registry = telemetry.Registry(preregister_catalog=False)
        self._populate(registry)
        text = telemetry.format_profile(
            telemetry.profile_dict(registry, meta={"program": "x"}))
        assert "phase" in text and "root" in text and "  leaf" in text
        assert "counter" in text and "c" in text
        assert "histogram" in text


class TestEndToEnd:
    def test_diagnose_records_expected_metrics(self, tinybug):
        config = ACTConfig(seq_len=3, check_window=20)
        registry = telemetry.Registry()
        with telemetry.use_registry(registry):
            report = diagnose_failure(tinybug, config=config,
                                      n_train_runs=4, n_pruning_runs=4)
        assert report.found
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["act.deps_processed"] > 0
        assert counters["act.invalid_predictions"] >= 1
        assert counters["debug_buffer.logged"] >= 1
        assert counters["diagnose.deps_observed"] == report.n_deps
        assert counters["diagnose.invalids_flagged"] == report.n_invalid
        assert counters["diagnose.found"] == 1
        assert counters["offline.correct_runs"] == 8  # 4 train + 4 pruning
        assert counters["sched.runs"] == 9            # + the failure run

        (root,) = snap["spans"]
        assert root["name"] == "diagnose"
        phases = [c["name"] for c in root["children"]]
        assert phases == ["diagnose.offline_train", "diagnose.failure_run",
                          "diagnose.deploy", "diagnose.pruning_runs",
                          "diagnose.ranking"]

    def test_disabled_run_identical_and_silent(self, tinybug):
        config = ACTConfig(seq_len=3, check_window=20)
        registry = telemetry.Registry()
        with telemetry.use_registry(registry):
            enabled = diagnose_failure(tinybug, config=config,
                                       n_train_runs=4, n_pruning_runs=4)
        disabled = diagnose_failure(tinybug, config=config,
                                    n_train_runs=4, n_pruning_runs=4)
        assert (enabled.found, enabled.rank, enabled.n_deps,
                enabled.n_invalid, enabled.filter_pct) == \
               (disabled.found, disabled.rank, disabled.n_deps,
                disabled.n_invalid, disabled.filter_pct)
        null_snap = telemetry.get_registry().snapshot()
        assert null_snap["counters"] == {}
        assert null_snap["spans"] == []

    def test_simulator_metrics(self, tinybug, trained_tinybug):
        from repro.sim.machine import simulate_run
        from repro.workloads.framework import run_program

        run = run_program(tinybug, seed=3, buggy=False)
        registry = telemetry.Registry()
        with telemetry.use_registry(registry):
            result = simulate_run(run, trained=trained_tinybug)
        counters = registry.snapshot()["counters"]
        assert counters["sim.runs"] == 1
        assert counters["sim.cycles"] == result.cycles
        assert counters["sim.deps_offered"] == result.deps_offered
        assert counters["sim.cache.loads"] > 0
        occupancy = registry.histogram("sim.fifo_occupancy")
        assert occupancy.count == result.deps_offered
