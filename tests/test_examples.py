"""Smoke tests: the example scripts run end-to-end and tell the story
they claim to tell."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart_diagnoses_gzip(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "Diagnosed: True" in out
        assert "rank 1" in out
        assert "S3_open_input_file" in out

    def test_custom_workload_walkthrough(self, capsys):
        out = _run("custom_workload.py", capsys)
        assert "diagnosed: True" in out
        assert "rank: 1" in out

    def test_concurrency_bug_comparison(self, capsys):
        out = _run("diagnose_concurrency_bug.py", capsys)
        assert "[ACT]" in out and "[Aviso]" in out and "[PBI]" in out
        assert "rank 1 from ONE failure run" in out

    def test_adaptive_deployment(self, capsys):
        out = _run("adaptive_deployment.py", capsys)
        assert "PSet flagged" in out
        assert "Second run" in out

    def test_feedback_loop_closes(self, capsys):
        out = _run("feedback_loop.py", capsys)
        assert "failure undiagnosed" in out
        assert "root cause logged: yes" in out
