"""Tests for the Aviso / PBI / PSet baselines."""

import pytest

from repro.baselines.aviso import AvisoDiagnoser
from repro.baselines.pbi import PBIDiagnoser, Predicate
from repro.baselines.pset import PSetInvariants
from repro.core.offline import collect_correct_runs
from repro.trace.raw import RawDep
from repro.workloads.framework import run_program
from repro.workloads.registry import get_bug, get_kernel


class TestPSet:
    def test_trained_invariants_accept_training_deps(self, tinybug):
        runs = collect_correct_runs(tinybug, 3, buggy=False)
        inv = PSetInvariants.train(runs)
        for run in runs:
            assert inv.violations(run) == []

    def test_flags_buggy_dependence(self, tinybug):
        runs = collect_correct_runs(tinybug, 3, buggy=False)
        inv = PSetInvariants.train(runs)
        buggy = run_program(tinybug, seed=9, buggy=True)
        viols = inv.violations(buggy)
        truth = buggy.meta["root_cause"]
        assert any((v.dep.store_pc, v.dep.load_pc) in truth for v in viols)

    def test_violation_rate_bounds(self, tinybug):
        runs = collect_correct_runs(tinybug, 2, buggy=False)
        inv = PSetInvariants.train(runs)
        buggy = run_program(tinybug, seed=9, buggy=True)
        rate = inv.violation_rate(buggy)
        assert 0.0 < rate <= 1.0

    def test_label_is_part_of_invariant(self):
        inv = PSetInvariants()
        inv.psets[0x20].add((0x10, False))
        assert inv.is_valid(RawDep(0x10, 0x20, inter_thread=False))
        assert not inv.is_valid(RawDep(0x10, 0x20, inter_thread=True))

    def test_n_invariants(self, tinybug):
        runs = collect_correct_runs(tinybug, 2, buggy=False)
        inv = PSetInvariants.train(runs)
        assert inv.n_invariants() > 0

    def test_new_code_always_violates(self, tinybug):
        """The rigidity ACT's adaptivity argument targets."""
        inv = PSetInvariants()  # trained on nothing
        run = run_program(tinybug, seed=0, buggy=False)
        assert inv.violation_rate(run) == 1.0


class TestPBI:
    def test_finds_concurrency_bug(self):
        result = PBIDiagnoser(n_correct=8).diagnose(get_bug("mysql2"))
        assert result.found
        assert result.rank <= result.total_predicates

    def test_ranking_scores_descending(self):
        result = PBIDiagnoser(n_correct=8).diagnose(get_bug("apache"))
        scores = [s for _p, s in result.ranking]
        assert scores == sorted(scores, reverse=True)

    def test_misses_branch_invariant_sequential_bug(self):
        """seq's branch outcomes and cache states barely change between
        correct and failing runs -- the class of bug PBI misses."""
        result = PBIDiagnoser(n_correct=8).diagnose(get_bug("seq"))
        assert result.rank is None or result.rank > 1

    def test_predicates_have_valid_events(self):
        result = PBIDiagnoser(n_correct=6).diagnose(get_bug("memcached"))
        for pred, _score in result.ranking:
            assert pred.event in ("M", "E", "S", "I", "T", "N")

    def test_predicate_str(self):
        assert "0x10" in str(Predicate(0x10, "M"))


class TestAviso:
    def test_inapplicable_to_sequential_bugs(self):
        result = AvisoDiagnoser(n_correct=4).diagnose(get_bug("gzip"),
                                                      max_failures=2)
        assert not result.applicable
        assert result.rank is None

    def test_needs_multiple_failures(self):
        result = AvisoDiagnoser(n_correct=6).diagnose(get_bug("pbzip2"),
                                                      max_failures=6)
        assert result.applicable
        if result.found:
            assert result.n_failures_used >= 2

    def test_finds_order_violation_eventually(self):
        result = AvisoDiagnoser(n_correct=8).diagnose(get_bug("pbzip2"),
                                                      max_failures=10)
        assert result.found
        assert result.rank is not None

    def test_ranking_pairs_are_inter_thread_pcs(self):
        result = AvisoDiagnoser(n_correct=6).diagnose(get_bug("mysql2"),
                                                      max_failures=6)
        for (a, b), _score in result.ranking:
            assert isinstance(a, int) and isinstance(b, int)
