"""Tests for trace event records and TraceRun helpers."""

import pytest

from repro.trace.events import EventKind, TraceEvent, TraceRun


class TestEventKind:
    def test_memory_classification(self):
        assert EventKind.LOAD.is_memory()
        assert EventKind.STORE.is_memory()
        assert not EventKind.BRANCH.is_memory()
        assert not EventKind.ALU.is_memory()


class TestTraceEvent:
    def test_memory_event_requires_address(self):
        with pytest.raises(ValueError):
            TraceEvent(0, 0x1000, EventKind.LOAD)

    def test_branch_carries_outcome(self):
        e = TraceEvent(1, 0x1000, EventKind.BRANCH, taken=True)
        assert e.taken is True

    def test_stack_flag(self):
        e = TraceEvent(0, 0x1000, EventKind.LOAD, addr=8, is_stack=True)
        assert e.is_stack

    def test_frozen(self):
        e = TraceEvent(0, 0x1000, EventKind.ALU)
        with pytest.raises(Exception):
            e.pc = 5


class TestTraceRun:
    def _run(self):
        events = [
            TraceEvent(0, 0x1000, EventKind.STORE, addr=4),
            TraceEvent(1, 0x1004, EventKind.LOAD, addr=4),
            TraceEvent(0, 0x1008, EventKind.ALU),
            TraceEvent(1, 0x100C, EventKind.BRANCH, taken=False),
        ]
        return TraceRun(events=events, n_threads=2)

    def test_thread_events_preserve_order(self):
        run = self._run()
        t0 = run.thread_events(0)
        assert [e.pc for e in t0] == [0x1000, 0x1008]

    def test_memory_events(self):
        run = self._run()
        assert len(run.memory_events()) == 2

    def test_len(self):
        assert len(self._run()) == 4

    def test_failure_defaults(self):
        run = self._run()
        assert not run.failed
        assert run.failure is None
