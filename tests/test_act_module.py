"""Tests for the ACT Module's online testing/training behaviour."""

import numpy as np
import pytest

from repro.core.act_module import ACTModule, Mode
from repro.core.config import ACTConfig
from repro.core.encoding import DepEncoder
from repro.trace.raw import RawDep


def _module(seq_len=2, window=10, threshold=0.3, seed=0):
    cfg = ACTConfig(seq_len=seq_len, check_window=window,
                    mispred_threshold=threshold)
    pcs = [0x100 + 4 * i for i in range(20)]
    return ACTModule(config=cfg, encoder=DepEncoder(pcs=pcs), seed=seed)


def _dep(i, j=None):
    return RawDep(0x100 + 4 * i, 0x100 + 4 * (j if j is not None else i + 1))


class TestWarmup:
    def test_first_deps_produce_no_prediction(self):
        m = _module(seq_len=3)
        assert m.process_dep(_dep(0)) is None
        assert m.process_dep(_dep(1)) is None
        assert m.process_dep(_dep(2)) is not None

    def test_stats_count_all_deps(self):
        m = _module(seq_len=3)
        for i in range(5):
            m.process_dep(_dep(i))
        assert m.stats.deps_processed == 5
        assert m.stats.predictions == 3


class TestLogging:
    def test_invalid_predictions_logged(self):
        m = _module()
        for i in range(30):
            rec = m.process_dep(_dep(i % 6))
        logged = len(m.debug_buffer.entries) + \
            (m.debug_buffer.total_logged - len(m.debug_buffer.entries))
        assert logged == m.stats.invalid_predictions

    def test_record_fields_consistent(self):
        m = _module()
        m.process_dep(_dep(0))
        rec = m.process_dep(_dep(1))
        assert rec.predicted_invalid == (rec.output < 0.5)
        assert rec.mode is Mode.TESTING


class TestModeSwitching:
    def test_high_misprediction_triggers_training(self):
        m = _module(window=10, threshold=0.3)
        # untrained random net: force deps until a window check happens
        switched = False
        for i in range(200):
            m.process_dep(_dep(i % 17, (i * 3) % 17))
            if m.mode is Mode.TRAINING:
                switched = True
                break
        # With a random initial network, some window exceeds 30%.
        assert switched or m.stats.invalid_predictions == 0

    def test_training_mode_learns_and_returns_to_testing(self):
        m = _module(window=20, threshold=0.2, seed=5)
        m.mode = Mode.TRAINING
        deps = [_dep(i % 4) for i in range(400)]
        for d in deps:
            m.process_dep(d)
        # after enough online training the recurring windows are learned
        assert m.mode is Mode.TESTING
        assert m.stats.online_trained > 0

    def test_window_counter_resets(self):
        m = _module(window=5)
        for i in range(12):
            m.process_dep(_dep(i % 3))
        # 12 deps, seq_len=3 warmup of 2 -> 11 predictions -> two full
        # windows of 5 and one leftover prediction
        assert m.stats.windows_checked == 2
        assert m._window_count == 1

    def test_window_rates_recorded(self):
        m = _module(window=5)
        for i in range(11):  # 10 predictions after 1-dep warmup
            m.process_dep(_dep(i % 3))
        assert len(m.stats.window_rates) == 2
        for rate in m.stats.window_rates:
            assert 0.0 <= rate <= 1.0


class TestOnlineTraining:
    def test_online_training_reduces_invalid_rate(self):
        m = _module(window=1000, seed=3)
        m.mode = Mode.TRAINING
        pattern = [_dep(0), _dep(1), _dep(2), _dep(3)]
        # run the same pattern repeatedly; count invalids per pass
        def one_pass():
            inv0 = m.stats.invalid_predictions
            for d in pattern * 5:
                m.process_dep(d)
            return m.stats.invalid_predictions - inv0
        first = one_pass()
        for _ in range(20):
            last = one_pass()
        assert last <= first

    def test_testing_mode_never_trains(self):
        # window larger than the run so no rate check (and hence no
        # mode flip) can happen
        m = _module(window=10_000)
        w_before = m.net.read_weights()
        for i in range(50):
            m.process_dep(_dep(i % 7))
        assert m.mode is Mode.TESTING
        assert np.allclose(w_before, m.net.read_weights())


class TestArchitecturalState:
    def test_save_restore_roundtrip(self):
        m = _module()
        saved = m.save_weights()
        m2 = _module(seed=99)
        m2.restore_weights(saved)
        assert np.allclose(m2.save_weights(), saved)

    def test_context_switch_flushes_input_buffer(self):
        m = _module(seq_len=2)
        m.process_dep(_dep(0))
        m.process_dep(_dep(1))
        saved = m.context_switch_out()
        assert len(m.input_buffer) == 0
        m.context_switch_in(saved)
        # after restore the module warms up again
        assert m.process_dep(_dep(2)) is None


class TestWindowRateBounding:
    def test_window_rates_keep_only_tail(self):
        cfg = ACTConfig(seq_len=2, check_window=2, mispred_threshold=0.99,
                        window_rate_tail=5)
        pcs = [0x100 + 4 * i for i in range(20)]
        m = ACTModule(config=cfg, encoder=DepEncoder(pcs=pcs))
        for i in range(40):
            m.process_dep(_dep(i % 10))
        assert m.stats.windows_checked > 5
        assert len(m.stats.window_rates) == 5
        # Aggregates still cover every window, not just the tail.
        assert m.stats.window_rate_sum >= sum(m.stats.window_rates)
        assert m.stats.window_rate_max >= max(m.stats.window_rates)

    def test_mean_window_rate_exact(self):
        from repro.core.act_module import AMStats
        stats = AMStats()
        for rate in (0.0, 0.5, 1.0, 0.25):
            stats.record_window_rate(rate)
        assert stats.windows_checked == 4
        assert stats.mean_window_rate == pytest.approx(0.4375)
        assert stats.window_rate_max == 1.0

    def test_mean_window_rate_empty(self):
        from repro.core.act_module import AMStats
        assert AMStats().mean_window_rate == 0.0

    def test_tail_validated(self):
        with pytest.raises(Exception):
            ACTConfig(window_rate_tail=0)
