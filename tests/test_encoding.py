"""Tests for RAW-dependence encoding."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core.encoding import DepEncoder
from repro.trace.raw import RawDep
from repro.workloads.framework import CodeMap


class TestCodes:
    def test_codes_in_open_unit_interval(self):
        enc = DepEncoder(pcs=[0x10, 0x20, 0x30])
        for pc in (0x10, 0x20, 0x30):
            assert 0.0 < enc.code_of(pc) < 1.0

    def test_codes_distinct_and_ordered(self):
        enc = DepEncoder(pcs=[0x30, 0x10, 0x20])
        codes = [enc.code_of(pc) for pc in (0x10, 0x20, 0x30)]
        assert codes == sorted(codes)
        assert len(set(codes)) == 3

    def test_unseen_pc_hashes_deterministically(self):
        enc = DepEncoder(pcs=[0x10])
        a = enc.code_of(0xBEEF)
        b = enc.code_of(0xBEEF)
        assert a == b
        assert 0.0 < a < 1.0

    def test_needs_pcs(self):
        with pytest.raises(ConfigError):
            DepEncoder()
        with pytest.raises(ConfigError):
            DepEncoder(pcs=[])

    def test_code_map_filters_to_memory_pcs(self):
        cm = CodeMap()
        ld = cm.load("l")
        br = cm.branch("b")
        st = cm.store("s")
        enc = DepEncoder(code_map=cm)
        assert enc.n_pcs == 2  # branch excluded
        # memory pcs get grid codes; the branch falls back to hashing
        assert enc.code_of(ld) in (1 / 3, 2 / 3)
        assert enc.code_of(st) in (1 / 3, 2 / 3)


class TestDepEncoding:
    def test_inter_thread_flips_store_sign(self):
        enc = DepEncoder(pcs=[0x10, 0x20])
        intra = enc.encode_dep(RawDep(0x10, 0x20, inter_thread=False))
        inter = enc.encode_dep(RawDep(0x10, 0x20, inter_thread=True))
        assert intra[0] == -inter[0]
        assert intra[1] == inter[1]

    def test_sequence_vector_layout(self):
        enc = DepEncoder(pcs=[0x10, 0x20, 0x30])
        seq = (RawDep(0x10, 0x20), RawDep(0x30, 0x20))
        v = enc.encode_seq(seq)
        assert v.shape == (4,)
        assert v[0] == enc.code_of(0x10)
        assert v[2] == enc.code_of(0x30)

    def test_encode_many_shape(self):
        enc = DepEncoder(pcs=[0x10, 0x20])
        seqs = [(RawDep(0x10, 0x20),)] * 5
        xs = enc.encode_many(seqs)
        assert xs.shape == (5, 2)

    def test_encode_many_empty(self):
        enc = DepEncoder(pcs=[0x10])
        assert enc.encode_many([]).size == 0

    def test_n_inputs(self):
        enc = DepEncoder(pcs=[0x10])
        assert enc.n_inputs(5) == 10

    def test_distinct_deps_distinct_vectors(self):
        enc = DepEncoder(pcs=[0x10, 0x20, 0x30, 0x40])
        a = enc.encode_seq((RawDep(0x10, 0x20),))
        b = enc.encode_seq((RawDep(0x30, 0x20),))
        assert not np.allclose(a, b)


class TestVectorisedPaths:
    """The batched encoders must be bit-identical to the scalar ones."""

    def _encoder(self):
        return DepEncoder(pcs=[0x10, 0x20, 0x30, 0x40, 0x50])

    def _stream(self, n=40):
        pcs = [0x10, 0x20, 0x30, 0x40, 0x50, 0xBEEF, 0x9999]
        return [RawDep(pcs[i % len(pcs)], pcs[(i * 3 + 1) % len(pcs)],
                       inter_thread=(i % 3 == 0)) for i in range(n)]

    def test_codes_of_matches_code_of(self):
        enc = self._encoder()
        pcs = [0x10, 0x30, 0x50, 0xBEEF, 0x9999, 0x20]  # incl. unseen
        batch = enc.codes_of(pcs)
        for pc, code in zip(pcs, batch):
            assert float(code) == enc.code_of(pc)

    def test_encode_stream_matches_encode_dep(self):
        enc = self._encoder()
        deps = self._stream(17)
        flat = enc.encode_stream(deps)
        assert flat.shape == (34,)
        for i, dep in enumerate(deps):
            s, l = enc.encode_dep(dep)
            assert flat[2 * i] == s
            assert flat[2 * i + 1] == l

    def test_encode_windows_matches_encode_seq(self):
        enc = self._encoder()
        deps = self._stream(25)
        for seq_len in (1, 2, 3, 5):
            xs = enc.encode_windows(deps, seq_len)
            assert xs.shape == (len(deps) - seq_len + 1, 2 * seq_len)
            for r in range(xs.shape[0]):
                ref = enc.encode_seq(tuple(deps[r:r + seq_len]))
                assert np.array_equal(xs[r], ref)

    def test_encode_windows_short_stream_is_empty(self):
        enc = self._encoder()
        xs = enc.encode_windows(self._stream(2), 5)
        assert xs.shape == (0, 10)

    def test_encode_many_empty_with_seq_len_hint(self):
        enc = self._encoder()
        xs = enc.encode_many([], seq_len=4)
        assert xs.shape == (0, 8)

    def test_encode_many_matches_encode_seq(self):
        enc = self._encoder()
        deps = self._stream(12)
        seqs = [tuple(deps[i:i + 3]) for i in range(0, 9, 3)]
        xs = enc.encode_many(seqs, seq_len=3)
        for row, seq in zip(xs, seqs):
            assert np.array_equal(row, enc.encode_seq(seq))

    def test_encode_many_rejects_ragged(self):
        enc = self._encoder()
        deps = self._stream(5)
        with pytest.raises(ConfigError):
            enc.encode_many([tuple(deps[:2]), tuple(deps[:3])])
