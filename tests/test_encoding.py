"""Tests for RAW-dependence encoding."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core.encoding import DepEncoder
from repro.trace.raw import RawDep
from repro.workloads.framework import CodeMap


class TestCodes:
    def test_codes_in_open_unit_interval(self):
        enc = DepEncoder(pcs=[0x10, 0x20, 0x30])
        for pc in (0x10, 0x20, 0x30):
            assert 0.0 < enc.code_of(pc) < 1.0

    def test_codes_distinct_and_ordered(self):
        enc = DepEncoder(pcs=[0x30, 0x10, 0x20])
        codes = [enc.code_of(pc) for pc in (0x10, 0x20, 0x30)]
        assert codes == sorted(codes)
        assert len(set(codes)) == 3

    def test_unseen_pc_hashes_deterministically(self):
        enc = DepEncoder(pcs=[0x10])
        a = enc.code_of(0xBEEF)
        b = enc.code_of(0xBEEF)
        assert a == b
        assert 0.0 < a < 1.0

    def test_needs_pcs(self):
        with pytest.raises(ConfigError):
            DepEncoder()
        with pytest.raises(ConfigError):
            DepEncoder(pcs=[])

    def test_code_map_filters_to_memory_pcs(self):
        cm = CodeMap()
        ld = cm.load("l")
        br = cm.branch("b")
        st = cm.store("s")
        enc = DepEncoder(code_map=cm)
        assert enc.n_pcs == 2  # branch excluded
        # memory pcs get grid codes; the branch falls back to hashing
        assert enc.code_of(ld) in (1 / 3, 2 / 3)
        assert enc.code_of(st) in (1 / 3, 2 / 3)


class TestDepEncoding:
    def test_inter_thread_flips_store_sign(self):
        enc = DepEncoder(pcs=[0x10, 0x20])
        intra = enc.encode_dep(RawDep(0x10, 0x20, inter_thread=False))
        inter = enc.encode_dep(RawDep(0x10, 0x20, inter_thread=True))
        assert intra[0] == -inter[0]
        assert intra[1] == inter[1]

    def test_sequence_vector_layout(self):
        enc = DepEncoder(pcs=[0x10, 0x20, 0x30])
        seq = (RawDep(0x10, 0x20), RawDep(0x30, 0x20))
        v = enc.encode_seq(seq)
        assert v.shape == (4,)
        assert v[0] == enc.code_of(0x10)
        assert v[2] == enc.code_of(0x30)

    def test_encode_many_shape(self):
        enc = DepEncoder(pcs=[0x10, 0x20])
        seqs = [(RawDep(0x10, 0x20),)] * 5
        xs = enc.encode_many(seqs)
        assert xs.shape == (5, 2)

    def test_encode_many_empty(self):
        enc = DepEncoder(pcs=[0x10])
        assert enc.encode_many([]).size == 0

    def test_n_inputs(self):
        enc = DepEncoder(pcs=[0x10])
        assert enc.n_inputs(5) == 10

    def test_distinct_deps_distinct_vectors(self):
        enc = DepEncoder(pcs=[0x10, 0x20, 0x30, 0x40])
        a = enc.encode_seq((RawDep(0x10, 0x20),))
        b = enc.encode_seq((RawDep(0x30, 0x20),))
        assert not np.allclose(a, b)
