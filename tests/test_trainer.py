"""Tests for offline training and topology search."""

import numpy as np
import pytest

from repro.nn.network import OneHiddenLayerNet
from repro.nn.trainer import (
    TrainConfig,
    _sgd_examples,
    evaluate_misprediction,
    search_topology,
    train_network,
)
from repro.workloads.registry import all_bug_names, get_bug


def _blobs(n_per=20, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(0.25, 0.05, size=(n_per, dim))
    neg = rng.normal(0.75, 0.05, size=(n_per, dim))
    return pos, neg


class TestTrainNetwork:
    def test_fits_separable_blobs(self):
        pos, neg = _blobs()
        result = train_network(pos, neg, n_hidden=4)
        assert result.train_error == 0.0

    def test_margin_reported(self):
        pos, neg = _blobs()
        result = train_network(pos, neg, n_hidden=4)
        assert result.worst_margin > 0.0

    def test_counts_are_original_not_balanced(self):
        pos, neg = _blobs()
        result = train_network(pos, neg[:5], n_hidden=4)
        assert result.n_positives == len(pos)
        assert result.n_negatives == 5

    def test_deterministic_given_seed(self):
        pos, neg = _blobs()
        cfg = TrainConfig(seed=3)
        r1 = train_network(pos, neg, 4, config=cfg)
        r2 = train_network(pos, neg, 4, config=cfg)
        assert np.allclose(r1.net.read_weights(), r2.net.read_weights())

    def test_no_negatives_trains_positive_only(self):
        pos, _ = _blobs()
        result = train_network(pos, None, n_hidden=3)
        out = result.net.predict_batch(pos)
        assert (out >= 0.5).all()

    def test_sgd_mode_also_fits(self):
        pos, neg = _blobs(n_per=10)
        cfg = TrainConfig(batch=False, max_epochs=150, restarts=2)
        result = train_network(pos, neg, n_hidden=4, config=cfg)
        assert result.train_error <= 0.1

    def test_balance_replicates_minority(self):
        pos, neg = _blobs()
        cfg = TrainConfig(balance_classes=True)
        result = train_network(pos, neg[:2], n_hidden=4, config=cfg)
        # still separates despite 20:2 imbalance
        assert result.train_error == 0.0

    def test_restart_improves_over_single(self):
        pos, neg = _blobs(n_per=8, seed=5)
        single = train_network(pos, neg, 2, config=TrainConfig(restarts=1,
                                                               max_epochs=50))
        multi = train_network(pos, neg, 2, config=TrainConfig(restarts=5,
                                                              max_epochs=50))
        assert (multi.train_error, -multi.worst_margin) <= \
               (single.train_error, -single.worst_margin)


class TestEvaluate:
    def test_false_positive_only(self):
        pos, neg = _blobs()
        net = train_network(pos, neg, 4).net
        assert evaluate_misprediction(net, pos, None) == 0.0

    def test_false_negative_only(self):
        pos, neg = _blobs()
        net = train_network(pos, neg, 4).net
        assert evaluate_misprediction(net, None, neg) == 0.0

    def test_empty_sets(self):
        pos, neg = _blobs()
        net = train_network(pos, neg, 4).net
        assert evaluate_misprediction(net, None, None) == 0.0

    def test_mixed_rate(self):
        pos, neg = _blobs()
        net = train_network(pos, neg, 4).net
        # flip labels: everything is mispredicted
        rate = evaluate_misprediction(net, neg, pos)
        assert rate == 1.0


class TestSearchTopology:
    def test_selects_lowest_misprediction(self):
        sets = {}
        for n in (1, 2):
            dim = 2 * n
            pos, neg = _blobs(dim=dim, seed=n)
            sets[n] = (pos, neg, pos, neg)
        best, choices = search_topology(sets, hidden_widths=(2, 4))
        assert len(choices) == 4
        assert best.mispred_rate == min(c.mispred_rate for c in choices)

    def test_topology_string(self):
        pos, neg = _blobs(dim=4)
        best, _ = search_topology({2: (pos, neg, pos, neg)},
                                  hidden_widths=(3,))
        assert best.topology == "4-3-1"

    def test_tie_prefers_capacity(self):
        pos, neg = _blobs(dim=2, seed=1)
        best, choices = search_topology({1: (pos, neg, pos, neg)},
                                        hidden_widths=(2, 8))
        tied = [c for c in choices if c.mispred_rate == best.mispred_rate]
        assert best.n_hidden == max(c.n_hidden for c in tied)


class TestFastSgd:
    """The vectorised SGD kernel is bit-compatible with the per-example
    method loop, like the ``core.fastpath`` replay equivalence."""

    def _nets(self, n_inputs=4, n_hidden=3, seed=7):
        return (OneHiddenLayerNet(n_inputs, n_hidden, seed=seed),
                OneHiddenLayerNet(n_inputs, n_hidden, seed=seed))

    def test_kernel_bitwise_equals_method_loop(self):
        pos, neg = _blobs(n_per=12)
        xs = np.vstack([pos, neg])
        targets = np.array([0.9] * len(pos) + [0.1] * len(neg))
        fast, ref = self._nets()
        for _ in range(5):
            _sgd_examples(fast, xs, targets, 0.2)
            for i in range(len(xs)):
                ref.train_example(xs[i], targets[i], 0.2)
        assert np.array_equal(fast.read_weights(), ref.read_weights())

    def test_kernel_bitwise_equals_method_loop_cross_entropy(self):
        pos, neg = _blobs(n_per=12)
        xs = np.vstack([pos, neg])
        targets = np.array([0.9] * len(pos) + [0.1] * len(neg))
        fast, ref = self._nets()
        for _ in range(5):
            _sgd_examples(fast, xs, targets, 0.2, cross_entropy=True)
            for i in range(len(xs)):
                ref.train_example_ce(xs[i], targets[i], 0.2)
        assert np.array_equal(fast.read_weights(), ref.read_weights())

    def test_kernel_honours_visit_order(self):
        pos, neg = _blobs(n_per=8)
        xs = np.vstack([pos, neg])
        targets = np.array([0.9] * len(pos) + [0.1] * len(neg))
        order = list(reversed(range(len(xs))))
        fast, ref = self._nets()
        _sgd_examples(fast, xs, targets, 0.2, order=order)
        for i in order:
            ref.train_example(xs[i], targets[i], 0.2)
        assert np.array_equal(fast.read_weights(), ref.read_weights())

    def test_train_network_fast_equals_reference(self):
        pos, neg = _blobs()
        kwargs = dict(batch=False, seed=3, max_epochs=120, restarts=2)
        fast = train_network(pos, neg, 4,
                             config=TrainConfig(fast_sgd=True, **kwargs))
        ref = train_network(pos, neg, 4,
                            config=TrainConfig(fast_sgd=False, **kwargs))
        assert np.array_equal(fast.net.read_weights(),
                              ref.net.read_weights())
        assert fast.epochs == ref.epochs
        assert fast.train_error == ref.train_error
        assert fast.history == ref.history


@pytest.mark.slow
class TestFastSgdBugWorkloads:
    """Fast-SGD offline training is pinned to the scalar reference for
    every registered bug workload, not just synthetic blobs."""

    def _weights(self, bug, fast_sgd):
        from repro.core.config import ACTConfig
        from repro.core.offline import OfflineTrainer

        trainer = OfflineTrainer(
            config=ACTConfig(seq_len=3),
            train_config=TrainConfig(batch=False, max_epochs=40, restarts=1,
                                     fast_sgd=fast_sgd))
        return trainer.train(get_bug(bug), n_runs=2, seed0=0, buggy=False)

    @pytest.mark.parametrize("bug", all_bug_names())
    def test_fast_equals_scalar(self, bug):
        fast = self._weights(bug, True)
        ref = self._weights(bug, False)
        assert set(fast.weights) == set(ref.weights)
        for tid in ref.weights:
            assert np.array_equal(fast.weights[tid], ref.weights[tid])
        assert np.array_equal(fast.default_weights, ref.default_weights)
