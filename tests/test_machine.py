"""Tests for the trace-driven timing machine."""

import pytest

from repro.core.config import ACTConfig
from repro.sim.machine import (
    annotate_run,
    cache_dep_streams,
    measure_overhead,
    simulate_run,
)
from repro.sim.params import MachineParams
from repro.trace.events import EventKind
from repro.trace.raw import extract_raw_deps
from repro.workloads.framework import run_program
from repro.workloads.registry import get_kernel


@pytest.fixture(scope="module")
def lu_run():
    return run_program(get_kernel("lu"), seed=3)


class TestBaseTiming:
    def test_cycles_positive_and_deterministic(self, lu_run):
        a = simulate_run(lu_run)
        b = simulate_run(lu_run)
        assert a.cycles > 0
        assert a.cycles == b.cycles

    def test_per_core_clocks(self, lu_run):
        res = simulate_run(lu_run, params=MachineParams(n_cores=4))
        assert res.cycles == int(max(res.core_cycles.values()))

    def test_cache_latency_matters(self, lu_run):
        fast = simulate_run(lu_run, params=MachineParams(l1_latency=2))
        slow = simulate_run(lu_run, params=MachineParams(l1_latency=40))
        assert slow.cycles > fast.cycles

    def test_mem_stats_propagated(self, lu_run):
        res = simulate_run(lu_run)
        assert res.mem_stats["loads"] > 0


class TestACTOverhead:
    def test_overhead_non_negative(self, lu_run, trained_lu):
        overhead, base, act = measure_overhead(lu_run, trained_lu)
        assert overhead >= 0.0
        assert act.cycles >= base.cycles

    def test_slow_pipeline_stalls_more(self, trained_lu):
        run = run_program(get_kernel("lu"), seed=3, nb=6, block=8)
        cfg = trained_lu.config
        slow = simulate_run(run, trained=trained_lu,
                            act_config=cfg.with_(muladd_units=1,
                                                 fifo_depth=4))
        fast = simulate_run(run, trained=trained_lu,
                            act_config=cfg.with_(muladd_units=10,
                                                 fifo_depth=16))
        assert slow.deps_stalled >= fast.deps_stalled
        assert slow.cycles >= fast.cycles

    def test_deps_offered_matches_predictions(self, lu_run, trained_lu):
        res = simulate_run(lu_run, trained=trained_lu)
        assert res.deps_offered > 0
        assert res.deps_stalled <= res.deps_offered
        assert res.act_modules  # modules were instantiated


class TestAnnotate:
    def test_alignment_with_events(self, lu_run):
        ann = annotate_run(lu_run)
        assert len(ann) == len(lu_run.events)
        for event, res in zip(lu_run.events, ann):
            if event.kind.is_memory():
                assert res is not None
                assert res.state_before in "MESI"
            else:
                assert res is None


class TestCacheDepStreams:
    def test_word_granularity_subset_of_perfect(self, lu_run):
        """With per-word metadata the hardware deps match the perfect
        table wherever a dependence forms at all (cold misses and
        piggyback policy can only *drop* deps, not corrupt them)."""
        params = MachineParams(lw_word_granularity=True,
                               lw_writeback_on_evict=True,
                               lw_piggyback_dirty_only=False)
        perfect = extract_raw_deps(lu_run)
        truth = {}
        for stream in perfect.values():
            for rec in stream:
                truth[rec.index] = rec.dep
        cache = cache_dep_streams(lu_run, params)
        n = 0
        for stream in cache.values():
            for rec in stream:
                assert truth.get(rec.index) == rec.dep
                n += 1
        assert n > 0

    def test_line_granularity_produces_streams(self, lu_run):
        params = MachineParams(lw_word_granularity=False)
        cache = cache_dep_streams(lu_run, params)
        assert sum(len(s) for s in cache.values()) > 0
