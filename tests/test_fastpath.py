"""Scalar <-> batched replay equivalence (repro.core.fastpath).

The fast path's contract is *bit identity*: for every workload, the
chunked batched replay must leave the AMs in exactly the state the
scalar per-dependence replay produces -- same debug-buffer entries,
same prediction counts and outputs, same mode switches and window
rates, same weights, same prediction records.
"""

import functools

import numpy as np
import pytest

from repro import telemetry
from repro.core.config import ACTConfig
from repro.core.deploy import deploy_on_run
from repro.core.offline import OfflineTrainer
from repro.workloads.framework import run_program
from repro.workloads.registry import all_bug_names, get_bug, get_kernel

_CONFIG = ACTConfig()


@functools.lru_cache(maxsize=None)
def _trained_bug(name):
    return OfflineTrainer(config=_CONFIG).train(
        get_bug(name), n_runs=4, seed0=0, buggy=False)


def assert_deployments_equal(ref, fast):
    __tracebackhide__ = True
    assert fast.n_deps == ref.n_deps
    assert set(fast.modules) == set(ref.modules)
    for tid, mr in ref.modules.items():
        mf = fast.modules[tid]
        assert mf.stats == mr.stats, f"tid {tid}: stats differ"
        assert mf.mode is mr.mode
        assert mf.invalid_counter == mr.invalid_counter
        assert mf._window_count == mr._window_count
        assert mf.debug_buffer.entries == mr.debug_buffer.entries
        assert mf.debug_buffer.total_logged == mr.debug_buffer.total_logged
        assert np.array_equal(mf.save_weights(), mr.save_weights())
        assert (mf.input_buffer.tail(mf.input_buffer.capacity)
                == mr.input_buffer.tail(mr.input_buffer.capacity))
    assert fast.records == ref.records
    assert fast.debug_entries() == ref.debug_entries()


@pytest.mark.parametrize("name", all_bug_names())
def test_bit_identical_on_bug_failure_run(name):
    trained = _trained_bug(name)
    run = run_program(get_bug(name), seed=12345, buggy=True)
    ref = deploy_on_run(trained, run, keep_records=True, fast=False)
    fast = deploy_on_run(trained, run, keep_records=True, fast=True)
    assert_deployments_equal(ref, fast)


def test_bit_identical_with_tiny_chunks():
    """chunk_size smaller than seq_len/check_window stresses every
    chunk-boundary window and partial-commit path."""
    trained = _trained_bug("gzip")
    run = run_program(get_bug("gzip"), seed=7, buggy=True)
    ref = deploy_on_run(trained, run, keep_records=True, fast=False)
    for chunk in (1, 3, 7, 64):
        fast = deploy_on_run(trained, run, keep_records=True, fast=True,
                             chunk_size=chunk)
        assert_deployments_equal(ref, fast)


def test_bit_identical_across_training_stretches():
    """Replaying a foreign program drives the AMs into TRAINING (the
    scalar fallback), exercising the TESTING<->TRAINING seams."""
    churn_cfg = ACTConfig(check_window=10)
    trained = OfflineTrainer(config=churn_cfg).train(
        get_kernel("lu"), n_runs=4, seed0=0)
    run = run_program(get_kernel("fft"), seed=3)
    ref = deploy_on_run(trained, run, keep_records=True, fast=False)
    assert ref.n_mode_switches > 0  # the fallback is actually exercised
    fast = deploy_on_run(trained, run, keep_records=True, fast=True)
    assert_deployments_equal(ref, fast)


def test_bit_identical_during_warmup_only_run():
    """A run shorter than seq_len never predicts; both paths agree."""
    trained = _trained_bug("gzip")
    run = run_program(get_bug("gzip"), seed=2, buggy=False)
    short = type(run)(events=run.events[:6], code_map=run.code_map,
                      n_threads=run.n_threads, seed=run.seed)
    ref = deploy_on_run(trained, short, keep_records=True, fast=False)
    fast = deploy_on_run(trained, short, keep_records=True, fast=True)
    assert_deployments_equal(ref, fast)


def test_act_telemetry_counters_match_scalar():
    trained = _trained_bug("gzip")
    run = run_program(get_bug("gzip"), seed=12345, buggy=True)
    with telemetry.use_registry(telemetry.Registry()) as ref_reg:
        deploy_on_run(trained, run, fast=False)
    with telemetry.use_registry(telemetry.Registry()) as fast_reg:
        deploy_on_run(trained, run, fast=True)
    ref = ref_reg.snapshot()["counters"]
    fast = fast_reg.snapshot()["counters"]
    for key in ("act.deps_processed", "act.predictions",
                "act.invalid_predictions", "act.windows_checked",
                "act.mode_switches", "debug_buffer.logged",
                "debug_buffer.overflows", "deploy.runs", "deploy.deps"):
        assert fast[key] == ref[key], key
    assert fast["deploy.fast_runs"] == 1
    assert ref["deploy.fast_runs"] == 0
    assert fast["fastpath.chunks"] >= 1
    # Window-rate histograms drive Fig 7b; they must agree too.
    assert (fast_reg.snapshot()["histograms"]["act.window_mispred_rate"]
            == ref_reg.snapshot()["histograms"]["act.window_mispred_rate"])


def test_diagnose_fast_flag_identical_report():
    program = get_bug("gzip")
    from repro.core.diagnosis import diagnose_failure

    kwargs = dict(config=_CONFIG, n_train_runs=4, n_pruning_runs=6)
    ref = diagnose_failure(program, fast=False, **kwargs)
    fast = diagnose_failure(program, fast=True, **kwargs)
    assert ref == fast
