"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_diagnose_defaults(self):
        args = build_parser().parse_args(["diagnose", "gzip"])
        args_dict = vars(args)
        assert args_dict["bug"] == "gzip"
        assert args_dict["debug_buffer"] == 60
        assert args_dict["seq_len"] == 5

    def test_unknown_bug_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["diagnose", "not-a-bug"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "lu" in out and "table5" in out

    def test_diagnose_finds_bug(self, capsys):
        rc = main(["diagnose", "gzip", "--train-runs", "6",
                   "--pruning-runs", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "root cause found : True" in out

    def test_trace_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        rc = main(["trace", "lu", "--seed", "2", "--out", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        from repro.trace.trace_io import read_trace
        run = read_trace(out_file)
        assert len(run.events) > 0

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "ACT" in capsys.readouterr().out

    def test_experiment_nn_design_fast(self, capsys):
        assert main(["experiment", "nn_design", "--preset", "fast"]) == 0
        assert "Mux" in capsys.readouterr().out

    def test_profile_command(self, capsys):
        assert main(["profile", "lu", "mcf"]) == 0
        out = capsys.readouterr().out
        assert "lu" in out and "mcf" in out and "Inter %" in out
