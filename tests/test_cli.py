"""Tests for the command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main
from repro.telemetry import read_profile


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_diagnose_defaults(self):
        args = build_parser().parse_args(["diagnose", "gzip"])
        args_dict = vars(args)
        assert args_dict["bug"] == "gzip"
        assert args_dict["debug_buffer"] == 60
        assert args_dict["seq_len"] == 5

    def test_unknown_bug_rejected(self, capsys):
        # Bug names resolve at run time now (the generated-name grammar
        # is open-ended), so a bad name is a clean error, not usage.
        rc = main(["diagnose", "not-a-bug"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown bug" in err and "gen-atomicity-pipeline-s7" in err

    def test_corpus_defaults(self):
        args = build_parser().parse_args(["corpus"])
        args_dict = vars(args)
        assert args_dict["seed"] == 7
        assert args_dict["size"] == 20
        assert args_dict["seq_len"] == 3
        assert args_dict["top"] == 5

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_version(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "lu" in out and "table5" in out

    def test_diagnose_finds_bug(self, capsys):
        rc = main(["diagnose", "gzip", "--train-runs", "6",
                   "--pruning-runs", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "root cause found : True" in out

    def test_trace_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        rc = main(["trace", "lu", "--seed", "2", "--out", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        from repro.trace.trace_io import read_trace
        run = read_trace(out_file)
        assert len(run.events) > 0

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "ACT" in capsys.readouterr().out

    def test_experiment_nn_design_fast(self, capsys):
        assert main(["experiment", "nn_design", "--preset", "fast"]) == 0
        assert "Mux" in capsys.readouterr().out

    def test_profile_command(self, capsys):
        assert main(["profile", "lu", "mcf"]) == 0
        out = capsys.readouterr().out
        assert "lu" in out and "mcf" in out and "Inter %" in out

    def test_list_mentions_generated_grammar(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gen-<archetype>-<motif>-s<seed>" in out
        assert "corpus" in out

    def test_diagnose_generated_bug(self, capsys):
        rc = main(["diagnose", "gen-order-pipeline-s7", "--seq-len", "3",
                   "--train-runs", "4", "--pruning-runs", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "root cause found : True" in out

    def test_trace_generated_program(self, tmp_path, capsys):
        out_file = tmp_path / "gen.jsonl"
        rc = main(["trace", "gen-off_by_one-regular-s3",
                   "--out", str(out_file)])
        assert rc == 0
        from repro.trace.trace_io import read_trace
        assert len(read_trace(out_file).events) > 0

    def test_trace_missing_out_dir(self, tmp_path, capsys):
        out_file = tmp_path / "no" / "such" / "dir" / "t.jsonl"
        rc = main(["trace", "lu", "--out", str(out_file)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert not out_file.exists()


class TestTelemetryCLI:
    def test_diagnose_writes_profile(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        rc = main(["diagnose", "gzip", "--train-runs", "6",
                   "--pruning-runs", "8", "--telemetry", str(out)])
        assert rc == 0
        assert f"telemetry profile written to {out}" in capsys.readouterr().out
        profile = read_profile(out)
        assert profile["meta"]["command"] == "diagnose"
        counters = profile["counters"]
        assert counters["act.deps_processed"] > 0
        assert counters["diagnose.runs"] == 1
        # Declared catalog metrics appear even at zero.
        for name in ("act.mode_switches", "sim.fifo_stalls",
                     "debug_buffer.overflows"):
            assert name in counters
        (root,) = profile["spans"]
        assert root["name"] == "diagnose"
        assert {c["name"] for c in root["children"]} >= {
            "diagnose.offline_train", "diagnose.failure_run",
            "diagnose.deploy", "diagnose.pruning_runs", "diagnose.ranking"}

    def test_telemetry_missing_out_dir(self, tmp_path, capsys):
        out = tmp_path / "missing" / "profile.json"
        rc = main(["trace", "lu", "--out", str(tmp_path / "t.jsonl"),
                   "--telemetry", str(out)])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_profile_bug_renders_tables(self, capsys):
        rc = main(["profile", "gzip", "--train-runs", "6",
                   "--pruning-runs", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run profile: gzip" in out
        assert "phase" in out and "diagnose.ranking" in out
        assert "act.invalid_predictions" in out
        assert "sim.fifo_occupancy" in out

    def test_profile_load_missing_file(self, tmp_path, capsys):
        rc = main(["profile", "--load", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_profile_load_rerenders(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        assert main(["diagnose", "gzip", "--train-runs", "6",
                     "--pruning-runs", "8", "--telemetry", str(out)]) == 0
        capsys.readouterr()
        assert main(["profile", "--load", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "diagnose.offline_train" in rendered
        assert "act.deps_processed" in rendered


class TestTracingCLI:
    ARGS = ["--train-runs", "4", "--pruning-runs", "6"]

    def test_events_writes_flight_recording(self, tmp_path, capsys):
        from repro.telemetry import is_event_stream, read_events

        out = tmp_path / "flight.jsonl"
        rc = main(["diagnose", "gzip", *self.ARGS, "--jobs", "2",
                   "--events", str(out)])
        assert rc == 0
        assert f"flight recording written to {out}" in capsys.readouterr().out
        assert is_event_stream(out)
        meta, events, footer = read_events(out)
        assert meta["command"] == "diagnose"
        kinds = {e["type"] for e in events}
        assert "span_open" in kinds and "counter" in kinds
        assert footer["n_recorded"] >= len(events)

    def test_tick_clock_runs_are_byte_identical(self, tmp_path, capsys):
        paths = []
        for tag in ("a", "b"):
            ev = tmp_path / f"{tag}.jsonl"
            prof = tmp_path / f"{tag}.json"
            assert main(["diagnose", "gzip", *self.ARGS, "--jobs", "2",
                         "--events", str(ev), "--telemetry", str(prof),
                         "--tick-clock"]) == 0
            paths.append((ev, prof))
        (ev_a, prof_a), (ev_b, prof_b) = paths
        assert ev_a.read_bytes() == ev_b.read_bytes()
        assert prof_a.read_bytes() == prof_b.read_bytes()

    def test_jobs_run_yields_one_stitched_tree(self, tmp_path, capsys):
        from repro.telemetry import read_events_profile

        out = tmp_path / "flight.jsonl"
        assert main(["diagnose", "gzip", *self.ARGS, "--jobs", "2",
                     "--events", str(out), "--tick-clock"]) == 0
        profile = read_events_profile(out)
        (root,) = profile["spans"]
        assert root["name"] == "diagnose"
        tasks = []
        stack = [root]
        while stack:
            span = stack.pop()
            stack.extend(span.get("children", []))
            if span["name"] == "parallel.task":
                tasks.append(span)
        assert len(tasks) > 1  # worker spans stitched under the root

    def test_profile_load_renders_flight_recording(self, tmp_path, capsys):
        out = tmp_path / "flight.jsonl"
        assert main(["diagnose", "gzip", *self.ARGS,
                     "--events", str(out)]) == 0
        capsys.readouterr()
        assert main(["profile", "--load", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "diagnose.offline_train" in rendered

    def test_profile_flame_view(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        assert main(["diagnose", "gzip", *self.ARGS,
                     "--telemetry", str(out)]) == 0
        capsys.readouterr()
        assert main(["profile", "--load", str(out), "--flame"]) == 0
        flame = capsys.readouterr().out
        assert "diagnose;diagnose.offline_train" in flame
        for line in flame.strip().splitlines():
            stack, value = line.rsplit(" ", 1)
            assert int(value) >= 0

    def test_profile_critical_path_view(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        assert main(["diagnose", "gzip", *self.ARGS,
                     "--telemetry", str(out)]) == 0
        capsys.readouterr()
        assert main(["profile", "--load", str(out),
                     "--critical-path"]) == 0
        rendered = capsys.readouterr().out
        assert "critical path (" in rendered
        assert "diagnose" in rendered and "% of root" in rendered

    def test_profile_openmetrics_view(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        assert main(["diagnose", "gzip", *self.ARGS,
                     "--telemetry", str(out)]) == 0
        capsys.readouterr()
        assert main(["profile", "--load", str(out),
                     "--openmetrics"]) == 0
        rendered = capsys.readouterr().out
        assert "# TYPE repro_act_deps_processed counter" in rendered
        assert rendered.rstrip().endswith("# EOF")

    def test_self_overhead_in_profile_meta(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        assert main(["diagnose", "gzip", *self.ARGS, "--telemetry",
                     str(out), "--tick-clock"]) == 0
        profile = read_profile(out)
        assert profile["meta"]["clock"] == "tick"
        pct = profile["meta"]["telemetry_self_overhead_pct"]
        assert pct > 0

    def test_events_capacity_bounds_the_stream(self, tmp_path, capsys):
        from repro.telemetry import read_events

        out = tmp_path / "flight.jsonl"
        assert main(["diagnose", "gzip", *self.ARGS, "--events", str(out),
                     "--events-capacity", "32"]) == 0
        _meta, events, footer = read_events(out)
        assert footer["n_dropped"] > 0
        assert footer["n_recorded"] == len(events) + footer["n_dropped"]

    def test_events_missing_out_dir(self, tmp_path, capsys):
        rc = main(["diagnose", "gzip", "--events",
                   str(tmp_path / "no" / "flight.jsonl")])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err


class TestFaultsCLI:
    ARGS = ["--train-runs", "4", "--pruning-runs", "6"]

    def test_faults_with_quarantine_report(self, tmp_path, capsys):
        report = tmp_path / "quarantine.json"
        rc = main(["diagnose", "gzip", *self.ARGS,
                   "--faults", "seed=3,corrupt_run_seeds=104",
                   "--quarantine-report", str(report)])
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert "quarantined [offline.collect] 104" in out
        import json
        doc = json.loads(report.read_text())
        assert doc["n_quarantined"] == 1
        assert doc["records"][0]["key"] == 104

    def test_bad_faults_spec_rejected(self, capsys):
        rc = main(["diagnose", "gzip", "--faults", "frobnicate=1"])
        assert rc == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        rc1 = main(["diagnose", "gzip", *self.ARGS,
                    "--checkpoint", str(ck)])
        first = capsys.readouterr().out
        assert ck.exists()
        rc2 = main(["diagnose", "gzip", *self.ARGS, "--resume", str(ck)])
        second = capsys.readouterr().out
        assert (rc1, first) == (rc2, second)

    def test_resume_requires_existing_checkpoint(self, tmp_path, capsys):
        rc = main(["diagnose", "gzip", "--resume",
                   str(tmp_path / "nope.json")])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_mismatched_checkpoint_is_an_error(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        assert main(["diagnose", "gzip", *self.ARGS,
                     "--checkpoint", str(ck)]) in (0, 1)
        capsys.readouterr()
        rc = main(["diagnose", "gzip", "--train-runs", "5",
                   "--pruning-runs", "6", "--resume", str(ck)])
        assert rc == 2
        assert "fingerprint" in capsys.readouterr().err


class TestCorpusCLI:
    ARGS = ["--seed", "3", "--size", "2",
            "--train-runs", "4", "--pruning-runs", "6"]

    def test_corpus_reports_tables(self, capsys):
        rc = main(["corpus", *self.ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Corpus diagnosis (seed 3, 2 programs)" in out
        assert "Accuracy by archetype and motif" in out
        assert "Recall (%)" in out and "Mean Rank" in out

    def test_corpus_out_is_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["corpus", *self.ARGS, "--out", str(a)]) == 0
        assert main(["corpus", *self.ARGS, "--jobs", "2",
                     "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        import json
        doc = json.loads(a.read_text())
        assert doc["overall"]["n_programs"] == 2
        assert doc["spec"]["seed"] == 3

    def test_corpus_telemetry_counters(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        rc = main(["corpus", *self.ARGS, "--telemetry", str(out)])
        assert rc == 0
        profile = read_profile(out)
        counters = profile["counters"]
        assert counters["corpus.programs"] == 2
        assert counters["diagnose.runs"] == 2
        assert "corpus.quarantined" in counters
        (root,) = profile["spans"]
        assert root["name"] == "corpus"

    def test_corpus_checkpoint_then_resume(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        assert main(["corpus", *self.ARGS, "--checkpoint", str(ck)]) == 0
        first = capsys.readouterr().out
        assert ck.exists()
        assert main(["corpus", *self.ARGS, "--resume", str(ck)]) == 0
        assert capsys.readouterr().out == first

    def test_corpus_resume_requires_existing_checkpoint(self, tmp_path,
                                                        capsys):
        rc = main(["corpus", "--resume", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_corpus_bad_faults_spec_rejected(self, capsys):
        rc = main(["corpus", "--faults", "frobnicate=1"])
        assert rc == 2
        assert "bad --faults spec" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import os
        import pathlib
        env = dict(os.environ)
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0
        assert "gzip" in proc.stdout and "table5" in proc.stdout
