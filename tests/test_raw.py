"""Tests for RAW-dependence extraction, including property-based checks."""

from hypothesis import given, settings, strategies as st

from repro.trace.events import EventKind, TraceEvent, TraceRun
from repro.trace.raw import (
    RawDep,
    RawDepExtractor,
    dep_sequences,
    extract_raw_deps,
    extract_raw_deps_with_negatives,
    line_level_pairs,
    negative_sequences,
)


def _st(tid, pc, addr):
    return TraceEvent(tid, pc, EventKind.STORE, addr=addr)


def _ld(tid, pc, addr, stack=False):
    return TraceEvent(tid, pc, EventKind.LOAD, addr=addr, is_stack=stack)


class TestExtractor:
    def test_basic_raw_dep(self):
        ex = RawDepExtractor()
        assert ex.feed(_st(0, 0x10, 100)) is None
        rec = ex.feed(_ld(0, 0x20, 100))
        assert rec.dep == RawDep(0x10, 0x20, inter_thread=False)

    def test_inter_thread_label(self):
        ex = RawDepExtractor()
        ex.feed(_st(0, 0x10, 100))
        rec = ex.feed(_ld(1, 0x20, 100))
        assert rec.dep.inter_thread

    def test_no_writer_no_dep(self):
        ex = RawDepExtractor()
        assert ex.feed(_ld(0, 0x20, 100)) is None

    def test_stack_filtering(self):
        ex = RawDepExtractor(filter_stack=True)
        ex.feed(_st(0, 0x10, 100))
        assert ex.feed(_ld(0, 0x20, 100, stack=True)) is None

    def test_stack_filter_disabled(self):
        ex = RawDepExtractor(filter_stack=False)
        ex.feed(_st(0, 0x10, 100))
        assert ex.feed(_ld(0, 0x20, 100, stack=True)) is not None

    def test_last_writer_wins(self):
        ex = RawDepExtractor()
        ex.feed(_st(0, 0x10, 100))
        ex.feed(_st(1, 0x14, 100))
        rec = ex.feed(_ld(0, 0x20, 100))
        assert rec.dep.store_pc == 0x14
        assert rec.dep.inter_thread

    def test_negative_from_previous_writer(self):
        ex = RawDepExtractor(track_previous_writer=True)
        ex.feed(_st(0, 0x10, 100))
        ex.feed(_st(0, 0x14, 100))
        rec = ex.feed(_ld(0, 0x20, 100))
        assert rec.negative == RawDep(0x10, 0x20, inter_thread=False)

    def test_negative_skipped_when_same_pc(self):
        ex = RawDepExtractor(track_previous_writer=True)
        ex.feed(_st(0, 0x10, 100))
        ex.feed(_st(0, 0x10, 100))
        rec = ex.feed(_ld(0, 0x20, 100))
        assert rec.negative is None

    def test_word_granularity_separates_neighbours(self):
        ex = RawDepExtractor(granularity=4)
        ex.feed(_st(0, 0x10, 100))
        ex.feed(_st(0, 0x14, 104))
        rec = ex.feed(_ld(0, 0x20, 100))
        assert rec.dep.store_pc == 0x10

    def test_line_granularity_aliases_neighbours(self):
        ex = RawDepExtractor(granularity=64)
        ex.feed(_st(0, 0x10, 128))
        ex.feed(_st(0, 0x14, 132))  # same 64B line
        rec = ex.feed(_ld(0, 0x20, 128))
        assert rec.dep.store_pc == 0x14


class TestRunHelpers:
    def _run(self):
        events = [
            _st(0, 0x10, 100), _ld(0, 0x20, 100),
            _st(1, 0x30, 104), _ld(0, 0x24, 104),
            _ld(1, 0x34, 100),
        ]
        return TraceRun(events=events, n_threads=2)

    def test_streams_grouped_by_loader_thread(self):
        streams = extract_raw_deps(self._run())
        assert len(streams[0]) == 2
        assert len(streams[1]) == 1

    def test_dep_belongs_to_loading_thread(self):
        streams = extract_raw_deps(self._run())
        assert streams[1][0].dep == RawDep(0x10, 0x34, inter_thread=True)

    def test_with_negatives_keeps_order(self):
        streams = extract_raw_deps_with_negatives(self._run())
        indices = [r.index for r in streams[0]]
        assert indices == sorted(indices)

    def test_line_level_pairs_superset_of_word_pairs(self):
        run = self._run()
        word = {(r.dep.store_pc, r.dep.load_pc)
                for s in extract_raw_deps(run).values() for r in s}
        line = line_level_pairs([run], line_size=64)
        # every word pair arises at line granularity too in this trace
        # except where an alias overwrote it; here addresses share one
        # line so aliasing can redirect pairs.
        assert line  # non-empty
        assert all(isinstance(p, tuple) and len(p) == 2 for p in line)


class TestSequences:
    def _stream(self, n):
        ex = RawDepExtractor(track_previous_writer=True)
        out = []
        for i in range(n):
            ex.feed(_st(0, 0x100 + 8 * i, 100))
            rec = ex.feed(_ld(0, 0x104 + 8 * i, 100))
            out.append(rec)
        return out

    def test_window_count(self):
        stream = self._stream(6)
        assert len(dep_sequences(stream, 3)) == 4

    def test_short_stream_yields_nothing(self):
        stream = self._stream(2)
        assert dep_sequences(stream, 3) == []

    def test_windows_are_contiguous(self):
        stream = self._stream(5)
        seqs = dep_sequences(stream, 2)
        deps = [r.dep for r in stream]
        for i, seq in enumerate(seqs):
            assert seq == (deps[i], deps[i + 1])

    def test_negative_sequences_replace_last(self):
        stream = self._stream(4)
        negs = negative_sequences(stream, 2)
        assert negs
        for seq in negs:
            assert seq[-1] != seq[-2]  # corrupted last dep

    @given(n=st.integers(1, 5), length=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_window_count_formula(self, n, length):
        stream = self._stream(length)
        assert len(dep_sequences(stream, n)) == max(0, length - n + 1)


class TestPropertyBased:
    @given(st.lists(
        st.tuples(st.integers(0, 2),       # tid
                  st.booleans(),           # is_store
                  st.integers(0, 5)),      # addr slot
        min_size=0, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_every_dep_has_a_preceding_store(self, ops):
        events = []
        for i, (tid, is_store, slot) in enumerate(ops):
            addr = 0x1000 + 4 * slot
            pc = 0x100 + 4 * i
            if is_store:
                events.append(_st(tid, pc, addr))
            else:
                events.append(_ld(tid, pc, addr))
        run = TraceRun(events=events, n_threads=3)
        streams = extract_raw_deps(run)
        store_pcs_before = {}
        seen = set()
        for e in events:
            if e.kind == EventKind.STORE:
                seen.add(e.pc)
        for stream in streams.values():
            for rec in stream:
                assert rec.dep.store_pc in seen
                # the record index points at a load event
                assert events[rec.index].kind == EventKind.LOAD

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)),
                    min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_intra_thread_single_thread(self, ops):
        """A single-threaded trace can only produce intra-thread deps."""
        events = []
        for i, (is_store, slot) in enumerate(ops):
            addr = 0x1000 + 4 * slot
            pc = 0x100 + 4 * i
            events.append(_st(0, pc, addr) if is_store else _ld(0, pc, addr))
        run = TraceRun(events=events, n_threads=1)
        for stream in extract_raw_deps(run).values():
            for rec in stream:
                assert not rec.dep.inter_thread
