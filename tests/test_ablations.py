"""Unit tests for the ablation runners (small configurations)."""

import pytest

from repro.analysis.ablations import (
    ablate_debug_buffer,
    ablate_seq_len,
    ablate_threshold,
    ablate_training_ingredients,
    format_ablations,
)


@pytest.fixture(scope="module")
def seq_points():
    return ablate_seq_len(bug="gzip", seq_lens=(2, 5), n_train=5,
                          n_pruning=6)


@pytest.fixture(scope="module")
def buffer_points():
    return ablate_debug_buffer(sizes=(15, 240), n_train=5, n_pruning=6)


@pytest.fixture(scope="module")
def threshold_points():
    return ablate_threshold(thresholds=(0.01, 0.5), n_train=4)


@pytest.fixture(scope="module")
def training_rows():
    return ablate_training_ingredients(bug="ptx", n_train=5, n_pruning=6)


class TestSeqLenAblation:
    def test_point_per_seq_len(self, seq_points):
        assert [p.seq_len for p in seq_points] == [2, 5]

    def test_longest_history_diagnoses(self, seq_points):
        assert seq_points[-1].found

    def test_fp_rates_bounded(self, seq_points):
        for p in seq_points:
            assert 0.0 <= p.false_positive_pct <= 100.0


class TestBufferAblation:
    def test_small_buffer_loses_root_cause(self, buffer_points):
        assert not buffer_points[0].found
        assert buffer_points[0].overflowed

    def test_large_buffer_finds_it(self, buffer_points):
        assert buffer_points[-1].found


class TestThresholdAblation:
    def test_lower_threshold_reacts_at_least_as_much(self, threshold_points):
        low, high = threshold_points
        assert low.threshold < high.threshold
        assert low.mode_switches >= high.mode_switches

    def test_counters_consistent(self, threshold_points):
        for p in threshold_points:
            assert p.online_trained <= p.invalid_predictions


class TestTrainingAblation:
    def test_three_variants(self, training_rows):
        assert {r.variant for r in training_rows} == \
            {"full", "no_augment", "no_line_view"}

    def test_full_recipe_diagnoses(self, training_rows):
        by = {r.variant: r for r in training_rows}
        assert by["full"].found

    def test_augmentation_is_load_bearing(self, training_rows):
        """Without wrong-writer negatives the wild-read bug is missed
        (ptx's out-of-bounds read hits a store no load ever reads)."""
        by = {r.variant: r for r in training_rows}
        assert not by["no_augment"].found or \
            by["no_augment"].rank >= by["full"].rank


class TestFormatting:
    def test_renders_all_four_tables(self, seq_points, buffer_points,
                                     threshold_points, training_rows):
        out = format_ablations(seq_points, buffer_points,
                               threshold_points, training_rows)
        assert "RAW-sequence length" in out
        assert "Debug-Buffer size" in out
        assert "threshold" in out
        assert "ingredients" in out
