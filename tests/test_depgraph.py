"""Tests for the networkx dependence-graph views."""

import networkx as nx

from repro.core.offline import collect_correct_runs
from repro.trace.depgraph import (
    communication_graph,
    hot_dependences,
    path_budget,
    sequence_graph,
    window_space_size,
)
from repro.trace.raw import dep_sequences, extract_raw_deps
from repro.workloads.framework import run_program
from repro.workloads.registry import get_kernel


class TestCommunicationGraph:
    def test_edges_match_observed_deps(self):
        run = run_program(get_kernel("ocean"), seed=1)
        g = communication_graph([run])
        deps = {(r.dep.store_pc, r.dep.load_pc)
                for s in extract_raw_deps(run).values() for r in s}
        assert set(g.edges) == deps

    def test_counts_sum_to_dynamic_deps(self):
        run = run_program(get_kernel("lu"), seed=1)
        g = communication_graph([run])
        total = sum(d["count"] for _, _, d in g.edges(data=True))
        dynamic = sum(len(s) for s in extract_raw_deps(run).values())
        assert total == dynamic

    def test_label_split(self):
        run = run_program(get_kernel("ocean"), seed=1)
        g = communication_graph([run])
        for _, _, d in g.edges(data=True):
            assert d["inter"] + d["intra"] == d["count"]

    def test_multiple_runs_accumulate(self):
        runs = collect_correct_runs(get_kernel("lu"), 2)
        g1 = communication_graph(runs[:1])
        g2 = communication_graph(runs)
        c1 = sum(d["count"] for *_, d in g1.edges(data=True))
        c2 = sum(d["count"] for *_, d in g2.edges(data=True))
        assert c2 > c1

    def test_hot_dependences_sorted(self):
        run = run_program(get_kernel("mcf"), seed=1)
        g = communication_graph([run])
        hot = hot_dependences(g, k=3)
        counts = [c for _, c in hot]
        assert counts == sorted(counts, reverse=True)


class TestSequenceGraph:
    def test_edges_are_observed_transitions(self):
        run = run_program(get_kernel("bzip2"), seed=1)
        g = sequence_graph([run])
        stream = extract_raw_deps(run)[0]
        deps = [r.dep for r in stream]
        for a, b in zip(deps, deps[1:]):
            assert g.has_edge(a, b)

    def test_windows_are_paths(self):
        """Every observed window of length n is a walk in the graph."""
        run = run_program(get_kernel("lu"), seed=1)
        g = sequence_graph([run])
        for stream in extract_raw_deps(run).values():
            for seq in dep_sequences(stream, 3):
                for a, b in zip(seq, seq[1:]):
                    assert g.has_edge(a, b)

    def test_window_space_bounded_by_path_budget(self):
        runs = collect_correct_runs(get_kernel("fft"), 3)
        g = sequence_graph(runs)
        for n in (2, 3):
            actual = window_space_size(runs, n)
            budget = path_budget(g, n)
            assert actual <= budget

    def test_path_budget_seqlen_one(self):
        run = run_program(get_kernel("lu"), seed=1)
        g = sequence_graph([run])
        assert path_budget(g, 1) == g.number_of_nodes()

    def test_is_networkx_digraph(self):
        run = run_program(get_kernel("lu"), seed=1)
        assert isinstance(sequence_graph([run]), nx.DiGraph)
