"""Tests for workload profiling."""

from repro.sim.trace_stats import profile_run, profile_table
from repro.workloads.framework import run_program
from repro.workloads.registry import get_kernel


class TestProfile:
    def test_event_counts_add_up(self):
        run = run_program(get_kernel("lu"), seed=1)
        p = profile_run(run)
        assert p.loads + p.stores + p.branches + p.alu == p.events
        assert p.events == len(run.events)

    def test_dep_counts_consistent(self):
        run = run_program(get_kernel("fft"), seed=1)
        p = profile_run(run)
        assert 0 < p.unique_deps <= p.dynamic_deps

    def test_inter_thread_share_for_mt_kernel(self):
        run = run_program(get_kernel("ocean"), seed=1)
        p = profile_run(run)
        assert p.n_threads == 2
        assert p.inter_thread_pct > 0.0
        assert p.shared_addresses > 0

    def test_sequential_kernel_has_no_sharing(self):
        run = run_program(get_kernel("mcf"), seed=1)
        p = profile_run(run)
        assert p.inter_thread_pct == 0.0
        assert p.shared_addresses == 0
        assert p.multi_writer_lines == 0

    def test_memory_pct_bounds(self):
        run = run_program(get_kernel("bc"), seed=1)
        p = profile_run(run)
        assert 0.0 < p.memory_pct <= 100.0

    def test_table_rendering(self):
        runs = [run_program(get_kernel(k), seed=1) for k in ("lu", "mcf")]
        out = profile_table([profile_run(r) for r in runs])
        assert "lu" in out and "mcf" in out and "Inter %" in out
