"""Tracing v2: clocks, flight recorder, analysis surfaces, overhead.

Covers the deterministic TickClock, the bounded flight recorder and its
profile reconstruction, flame/critical-path/OpenMetrics rendering, the
self-overhead model, the zero-cost audit of the disabled path, and the
golden-file byte-stability of seed-pinned exports.
"""

import json
import pathlib
import time
import tracemalloc

import pytest

from repro import telemetry
from repro.telemetry import (
    FlightRecorder,
    TickClock,
    clock_from_spec,
    clock_spec,
    critical_path,
    events_to_profile,
    folded_stacks,
    format_critical_path,
    is_event_stream,
    read_events,
    read_events_profile,
    render_openmetrics,
)
from repro.telemetry import selfcost
from repro.telemetry.spans import STATUS_ORPHANED, STATUS_UNCLOSED

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


class TestTickClock:
    def test_advances_by_step(self):
        clock = TickClock(step=0.5)
        assert [clock() for _ in range(4)] == [0.0, 0.5, 1.0, 1.5]

    def test_two_clocks_agree(self):
        a, b = TickClock(), TickClock()
        assert [a() for _ in range(10)] == [b() for _ in range(10)]

    def test_spec_roundtrip(self):
        spec = clock_spec(TickClock(step=0.25))
        assert spec == ("tick", 0.25)
        rebuilt = clock_from_spec(spec)
        assert isinstance(rebuilt, TickClock)
        assert rebuilt() == 0.0 and rebuilt() == 0.25

    def test_wall_spec(self):
        assert clock_spec(time.perf_counter) == ("wall",)
        assert clock_from_spec(("wall",)) is telemetry.WALL


class TestFlightRecorder:
    def test_records_in_order(self):
        rec = FlightRecorder(capacity=8)
        rec.record("counter", 0.0, name="a", delta=1)
        rec.record("span_open", 0.1, name="s", id="s1", parent=None)
        rec.record("counter", 0.2, name="b", delta=2)
        types = [e["type"] for e in rec.events()]
        assert types == ["counter", "span_open", "counter"]
        assert rec.n_recorded == 3 and rec.n_dropped == 0

    def test_ring_drops_oldest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("counter", float(i), name="c", delta=1)
        events = rec.events()
        assert len(events) == 4
        assert [e["t"] for e in events] == [6.0, 7.0, 8.0, 9.0]
        assert rec.n_recorded == 10 and rec.n_dropped == 6

    def test_span_events_survive_counter_flood(self):
        # The trace skeleton has its own reservation: no volume of
        # counter deltas may evict a span_open/span_close pair.
        rec = FlightRecorder(capacity=16, span_capacity=8)
        rec.record("span_open", 0.0, name="root", id="s1", parent=None)
        for i in range(1000):
            rec.record("counter", float(i), name="c", delta=1)
        rec.record("span_close", 2.0, name="root", id="s1",
                   duration_s=2.0, status="ok")
        kinds = [e["type"] for e in rec.events()]
        assert kinds[0] == "span_open" and kinds[-1] == "span_close"
        assert kinds.count("counter") == 16

    def test_flush_roundtrip(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        rec.record("counter", 0.5, name="x", delta=3)
        path = rec.flush(tmp_path / "ev.jsonl", meta={"run": "r1"})
        assert is_event_stream(path)
        meta, events, footer = read_events(path)
        assert meta["format"] == "flight-recorder-v1"
        assert meta["run"] == "r1"
        assert events == [{"t": 0.5, "type": "counter", "name": "x",
                           "delta": 3}]
        assert footer["n_recorded"] == 1 and footer["n_dropped"] == 0

    def test_flush_is_atomic(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        FlightRecorder().flush(path)
        assert not (tmp_path / "ev.jsonl.tmp").exists()
        assert is_event_stream(path)

    def test_profile_json_is_not_an_event_stream(self, tmp_path):
        reg = telemetry.Registry(preregister_catalog=False)
        reg.inc("c")
        telemetry.write_profile(reg, tmp_path / "p.json")
        assert not is_event_stream(tmp_path / "p.json")
        assert not is_event_stream(tmp_path / "missing.json")

    def test_extend_preserves_categories(self):
        parent = FlightRecorder(capacity=4, span_capacity=4)
        child = [{"t": 0.0, "type": "span_open", "name": "w", "id": "w1.s1",
                  "parent": "s1"},
                 {"t": 1.0, "type": "counter", "name": "c", "delta": 1}]
        for i in range(10):
            parent.record("counter", float(i), name="noise", delta=1)
        parent.extend(child)
        kinds = [e["type"] for e in parent.events()]
        # The adopted span event landed in the span reservation, not the
        # (already full) main ring.
        assert "span_open" in kinds


class TestEventsToProfile:
    def _stream(self):
        return [
            {"t": 0.0, "type": "span_open", "name": "root", "id": "s1"},
            {"t": 0.1, "type": "span_open", "name": "leaf", "id": "s2",
             "parent": "s1"},
            {"t": 0.2, "type": "counter", "name": "c", "delta": 2},
            {"t": 0.3, "type": "counter", "name": "c", "delta": 3},
            {"t": 0.4, "type": "gauge", "name": "g", "value": 1.5},
            {"t": 0.5, "type": "gauge", "name": "g", "value": 2.5},
            {"t": 0.6, "type": "span_close", "name": "leaf", "id": "s2",
             "duration_s": 0.5, "status": "ok"},
            {"t": 0.7, "type": "span_close", "name": "root", "id": "s1",
             "duration_s": 0.7, "status": "ok"},
        ]

    def test_reconstructs_tree_and_totals(self):
        profile = events_to_profile({"k": "v"}, self._stream())
        assert profile["meta"] == {"k": "v"}
        assert profile["counters"] == {"c": 5}
        assert profile["gauges"] == {"g": 2.5}
        (root,) = profile["spans"]
        assert root["name"] == "root" and root["duration_s"] == 0.7
        (leaf,) = root["children"]
        assert leaf["name"] == "leaf" and leaf["duration_s"] == 0.5

    def test_unclosed_span_is_flagged(self):
        events = self._stream()[:2]  # two opens, no closes
        (root,) = events_to_profile({}, events)["spans"]
        assert root["status"] == STATUS_UNCLOSED
        assert root["children"][0]["status"] == STATUS_UNCLOSED

    def test_dropped_open_gets_a_stub(self):
        events = [{"t": 5.0, "type": "span_close", "name": "lost",
                   "id": "s9", "duration_s": 2.0, "status": "ok"}]
        (root,) = events_to_profile({}, events)["spans"]
        assert root["name"] == "lost"
        assert root["start_s"] == pytest.approx(3.0)
        assert root["duration_s"] == 2.0

    def test_read_events_profile(self, tmp_path):
        rec = FlightRecorder()
        for event in self._stream():
            rec._append(dict(event))
        path = rec.flush(tmp_path / "ev.jsonl", meta={"command": "x"})
        profile = read_events_profile(path)
        assert profile["counters"] == {"c": 5}
        assert profile["meta"]["command"] == "x"


class TestFlameAndCriticalPath:
    SPANS = [{"name": "root", "id": "s1", "duration_s": 1.0, "children": [
        {"name": "a", "id": "s2", "duration_s": 0.6, "children": [
            {"name": "deep", "id": "s4", "duration_s": 0.5}]},
        {"name": "b", "id": "s3", "duration_s": 0.3},
    ]}]

    def test_folded_stacks_self_time(self):
        lines = folded_stacks(self.SPANS)
        assert lines == ["root 100000", "root;a 100000",
                         "root;a;deep 500000", "root;b 300000"]

    def test_stack_values_sum_to_root(self):
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in folded_stacks(self.SPANS))
        assert total == 1_000_000

    def test_critical_path_follows_heaviest_child(self):
        names = [s["name"] for s in critical_path(self.SPANS)]
        assert names == ["root", "a", "deep"]

    def test_format_critical_path_renders(self):
        text = format_critical_path(self.SPANS)
        assert "critical path (1.0000s root-to-leaf)" in text
        assert "deep" in text and "% of root" in text
        assert format_critical_path([]) == "no spans recorded"


class TestOpenMetrics:
    def test_renders_profile(self):
        reg = telemetry.Registry(preregister_catalog=False)
        reg.inc("act.deps_processed", 7)
        reg.set_gauge("sched.events_per_sec", 123.5)
        reg.observe("sim.fifo_occupancy", 1)
        reg.observe("sim.fifo_occupancy", 3)
        text = render_openmetrics(telemetry.profile_dict(reg))
        assert "# TYPE repro_act_deps_processed counter" in text
        assert "repro_act_deps_processed_total 7" in text
        assert "repro_sched_events_per_sec 123.5" in text
        # Cumulative le buckets: the le="3" bucket includes the 1.
        assert 'repro_sim_fifo_occupancy_bucket{le="1"} 1' in text
        assert 'repro_sim_fifo_occupancy_bucket{le="3"} 2' in text
        assert 'le="+Inf"' in text
        assert "repro_sim_fifo_occupancy_count 2" in text
        assert text.rstrip().endswith("# EOF")


class TestSelfOverhead:
    def test_op_counts(self):
        reg = telemetry.Registry(preregister_catalog=False)
        reg.attach_recorder(FlightRecorder())
        reg.inc("c")
        reg.inc("c", 2)
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1)
        with reg.span("s"):
            pass
        counts = reg.op_counts()
        assert counts["inc"] == 2 and counts["gauge"] == 1
        assert counts["observe"] == 1 and counts["span"] == 1
        # events: 2 counter deltas + 1 gauge + span open/close
        assert counts["event"] == 5

    def test_overhead_seconds_is_counts_times_costs(self):
        reg = telemetry.Registry(preregister_catalog=False,
                                 clock=TickClock())
        for _ in range(1000):
            reg.inc("c")
        cal = selfcost.Calibration(inc_ns=100.0, gauge_ns=0, observe_ns=0,
                                   span_ns=0, event_ns=0)
        assert selfcost.overhead_seconds(reg, cal) == pytest.approx(1e-4)

    def test_overhead_pct_needs_a_root_span(self):
        reg = telemetry.Registry(preregister_catalog=False)
        assert selfcost.overhead_pct(
            reg, selfcost.PINNED_CALIBRATION) is None

    def test_profile_meta_reports_overhead(self):
        reg = telemetry.Registry(preregister_catalog=False,
                                 clock=TickClock())
        with reg.span("root"):
            for _ in range(100):
                reg.inc("c")
        profile = telemetry.profile_dict(
            reg, meta={"command": "x"}, self_overhead=True,
            calibration=selfcost.PINNED_CALIBRATION)
        pct = profile["meta"]["telemetry_self_overhead_pct"]
        assert pct > 0
        # Deterministic under the pinned calibration + tick clock.
        again = telemetry.profile_dict(
            reg, meta={"command": "x"}, self_overhead=True,
            calibration=selfcost.PINNED_CALIBRATION)
        assert again["meta"]["telemetry_self_overhead_pct"] == pct

    def test_merge_ops_excludes_spans_and_events(self):
        reg = telemetry.Registry(preregister_catalog=False)
        reg.merge_ops({"inc": 5, "gauge": 2, "observe": 1, "span": 9,
                       "event": 9})
        counts = reg.op_counts()
        assert counts["inc"] == 5 and counts["observe"] == 1
        assert counts["span"] == 0 and counts["event"] == 0


class TestOrphanSpans:
    def test_orphan_is_closed_and_parented(self):
        reg = telemetry.Registry(preregister_catalog=False,
                                 clock=TickClock())
        rec = reg.attach_recorder(FlightRecorder())
        with reg.span("dispatch"):
            span = reg.tracer.orphan("parallel.task", key=4)
        assert span.status == STATUS_ORPHANED
        assert span.duration == 0.0
        (root,) = reg.spans
        assert [c.status for c in root.children] == [STATUS_ORPHANED]
        assert span.parent_id == root.span_id
        kinds = [e["type"] for e in rec.events()]
        assert kinds.count("span_open") == 2  # dispatch + orphan
        assert kinds.count("span_close") == 2


class TestZeroCostAudit:
    """S2: the disabled path must stay free on the hot replay path."""

    N = 5000

    def _hot_loop(self, tele):
        # The per-dependence instrumentation shape of the simulator and
        # deploy loops: one enabled check, an observe, a couple of incs.
        for i in range(self.N):
            if tele.enabled:
                tele.observe("sim.fifo_occupancy", i % 8)
                tele.inc("act.deps_processed")
                tele.inc("sim.fifo_stalls")

    def test_null_registry_allocates_nothing(self):
        tele = telemetry.NullRegistry()
        self._hot_loop(tele)  # warm: bytecode caches, method binds
        tracemalloc.start()
        try:
            tracemalloc.clear_traces()
            before, _ = tracemalloc.get_traced_memory()
            self._hot_loop(tele)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # No retained allocations at all from 15k no-op mutator calls.
        assert after - before < 512, (
            f"NullRegistry retained {after - before} bytes on the hot path")

    def test_instrumented_replay_within_10pct_of_null(self, tinybug,
                                                      trained_tinybug):
        from dataclasses import replace

        from repro.core.deploy import deploy_on_run
        from repro.workloads.framework import run_program

        base = run_program(tinybug, seed=5, buggy=False)
        long_run = replace(base, events=base.events * 30)

        def timed(registry):
            best = None
            for _ in range(5):
                with telemetry.use_registry(registry):
                    t0 = time.perf_counter()
                    deploy_on_run(trained_tinybug, long_run, fast=True)
                    dt = time.perf_counter() - t0
                if best is None or dt < best:
                    best = dt
            return best

        t_null = timed(telemetry.NullRegistry())
        t_live = timed(telemetry.Registry())
        # Aggregate-only instrumentation is amortised per chunk, not per
        # dependence; 10% is the audit budget (plus a 2ms floor so a
        # sub-ms run cannot flake the ratio).
        assert t_live <= 1.10 * t_null + 0.002, (
            f"instrumented replay {t_live:.4f}s vs null {t_null:.4f}s")


class TestGoldenExports:
    """S6: seed-pinned exports are byte-identical under the TickClock."""

    def _check(self, path, text, update):
        if update:
            path.write_text(text, encoding="utf-8")
            pytest.skip(f"updated {path.name}")
        assert path.exists(), (
            f"golden file {path} missing; run pytest --update-golden")
        assert text == path.read_text(encoding="utf-8")

    def _diagnose(self, tinybug, tmp_path):
        from repro.core.config import ACTConfig
        from repro.core.diagnosis import diagnose_failure

        tmp_path.mkdir(parents=True, exist_ok=True)

        reg = telemetry.Registry(clock=TickClock())
        reg.attach_recorder(FlightRecorder())
        with telemetry.use_registry(reg):
            diagnose_failure(tinybug, config=ACTConfig(seq_len=3,
                                                       check_window=20),
                             n_train_runs=4, n_pruning_runs=4)
        meta = {"command": "diagnose", "clock": "tick"}
        profile_path = tmp_path / "profile.json"
        telemetry.write_profile(
            reg, profile_path, meta=meta, self_overhead=True,
            calibration=selfcost.PINNED_CALIBRATION)
        events_path = tmp_path / "events.jsonl"
        reg.recorder.flush(events_path, meta=meta)
        return (profile_path.read_text(encoding="utf-8"),
                events_path.read_text(encoding="utf-8"))

    def test_profile_matches_golden(self, tinybug, tmp_path, update_golden):
        profile_text, _ = self._diagnose(tinybug, tmp_path)
        self._check(GOLDEN_DIR / "tracing_profile.json", profile_text,
                    update_golden)

    def test_events_match_golden(self, tinybug, tmp_path, update_golden):
        _, events_text = self._diagnose(tinybug, tmp_path)
        self._check(GOLDEN_DIR / "tracing_events.jsonl", events_text,
                    update_golden)

    def test_rerun_is_byte_identical(self, tinybug, tmp_path):
        first = self._diagnose(tinybug, tmp_path / "a")
        second = self._diagnose(tinybug, tmp_path / "b")
        assert first == second

    def test_golden_events_reconstruct_one_tree(self, update_golden):
        if update_golden:
            pytest.skip("golden files being rewritten")
        path = GOLDEN_DIR / "tracing_events.jsonl"
        assert path.exists(), "run pytest --update-golden first"
        profile = read_events_profile(path)
        (root,) = profile["spans"]
        assert root["name"] == "diagnose"
        assert profile["counters"]["diagnose.found"] == 1
