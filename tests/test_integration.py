"""Cross-layer integration tests: the pieces agree with each other."""

import pytest

from repro.core.config import ACTConfig
from repro.core.deploy import deploy_on_run
from repro.core.offline import (
    OfflineTrainer,
    collect_correct_runs,
    evaluate_strict_false_negative_rate,
    strict_invalid_sequences,
)
from repro.sim.machine import cache_dep_streams, simulate_run
from repro.sim.params import MachineParams
from repro.trace.raw import extract_raw_deps
from repro.trace.trace_io import read_trace, write_trace
from repro.workloads.framework import run_program
from repro.workloads.registry import get_bug, get_kernel


class TestTraceRoundtripThroughPipeline:
    def test_serialized_trace_diagnoses_identically(self, tmp_path):
        """A trace written to disk and read back yields the same deps."""
        run = run_program(get_bug("ptx"), seed=12345, buggy=True)
        path = tmp_path / "failure.jsonl"
        write_trace(run, path)
        back = read_trace(path)
        orig = extract_raw_deps(run)
        loaded = extract_raw_deps(back)
        assert {t: [r.dep for r in s] for t, s in orig.items()} == \
               {t: [r.dep for r in s] for t, s in loaded.items()}


class TestSimVsSoftwareExtraction:
    def test_ideal_hardware_matches_software_table(self):
        """With word granularity + writeback + full piggyback, the cache
        hierarchy reproduces the perfect extractor's dependences."""
        run = run_program(get_kernel("ocean"), seed=2)
        params = MachineParams(lw_word_granularity=True,
                               lw_writeback_on_evict=True,
                               lw_piggyback_dirty_only=False)
        hw = cache_dep_streams(run, params)
        sw = extract_raw_deps(run)
        hw_map = {r.index: r.dep for s in hw.values() for r in s}
        sw_map = {r.index: r.dep for s in sw.values() for r in s}
        # hardware may drop cold-miss deps but never invents or corrupts
        assert set(hw_map) <= set(sw_map)
        for idx, dep in hw_map.items():
            assert sw_map[idx] == dep

    def test_machine_act_agrees_with_functional_deploy(self, trained_lu):
        """The timing machine's AMs log the same number of invalid
        windows as a functional replay (word-granularity hardware)."""
        run = run_program(get_kernel("lu"), seed=5)
        functional = deploy_on_run(trained_lu, run)
        params = MachineParams(lw_word_granularity=True,
                               lw_writeback_on_evict=True,
                               lw_piggyback_dirty_only=False,
                               n_cores=8)
        result = simulate_run(run, params=params, trained=trained_lu)
        machine_invalid = sum(m.stats.invalid_predictions
                              for m in result.act_modules.values())
        assert machine_invalid == functional.n_invalid


class TestTrainedModelContracts:
    def test_strict_invalids_disjoint_from_observed_valid(self, tinybug):
        cfg = ACTConfig(seq_len=3)
        runs = collect_correct_runs(tinybug, 4, buggy=False)
        strict = strict_invalid_sequences(runs, cfg)
        valid = {(d.store_pc, d.load_pc, d.inter_thread)
                 for s in extract_raw_deps(runs[0]).values()
                 for d in [r.dep for r in s]}
        for seq in strict:
            last = seq[-1]
            assert (last.store_pc, last.load_pc, last.inter_thread) \
                not in valid

    def test_strict_fn_rate_low_on_trained_model(self, trained_tinybug,
                                                 tinybug):
        test_runs = collect_correct_runs(tinybug, 3, seed0=70, buggy=False)
        rate, n = evaluate_strict_false_negative_rate(
            trained_tinybug, test_runs)
        assert n > 0
        assert rate <= 0.3

    def test_diagnosis_stable_across_failure_seeds(self, tinybug,
                                                   trained_tinybug):
        """Whatever interleaving triggers the failure, ACT finds it."""
        from repro.core.diagnosis import diagnose_failure
        for seed in (1, 99, 5000):
            report = diagnose_failure(
                tinybug, trained=trained_tinybug,
                config=trained_tinybug.config, failure_seed=seed,
                n_pruning_runs=6)
            assert report.found
            assert report.rank == 1


class TestWholePipelineOnKernelBug:
    def test_injected_kernel_bug_end_to_end(self):
        from repro.core.diagnosis import diagnose_failure
        report = diagnose_failure(
            get_kernel("barnes"), config=ACTConfig(),
            n_train_runs=6, n_pruning_runs=8,
            failure_params={"inject": True, "new_code": True},
            correct_params={"inject": False, "new_code": False},
            pruning_params={"inject": False, "new_code": True})
        assert report.found
        assert report.filter_pct > 0.0
