"""Tests for trace serialisation."""

import pytest

from repro.common.errors import TraceError
from repro.trace.events import EventKind, TraceEvent, TraceRun
from repro.trace.trace_io import read_trace, write_trace


def _sample_run():
    events = [
        TraceEvent(0, 0x1000, EventKind.STORE, addr=64),
        TraceEvent(1, 0x1004, EventKind.LOAD, addr=64),
        TraceEvent(0, 0x1008, EventKind.LOAD, addr=0x7FFF0000, is_stack=True),
        TraceEvent(1, 0x100C, EventKind.BRANCH, taken=True),
        TraceEvent(0, 0x1010, EventKind.ALU),
    ]
    return TraceRun(events=events, n_threads=2, seed=99)


class TestRoundTrip:
    def test_events_survive(self, tmp_path):
        run = _sample_run()
        path = tmp_path / "t.jsonl"
        write_trace(run, path)
        back = read_trace(path)
        assert len(back.events) == len(run.events)
        for a, b in zip(run.events, back.events):
            assert (a.tid, a.pc, a.kind, a.addr, a.is_stack, a.taken) == \
                   (b.tid, b.pc, b.kind, b.addr, b.is_stack, b.taken)

    def test_header_survives(self, tmp_path):
        run = _sample_run()
        path = tmp_path / "t.jsonl"
        write_trace(run, path)
        back = read_trace(path)
        assert back.n_threads == 2
        assert back.seed == 99
        assert back.failed is False

    def test_failed_flag(self, tmp_path):
        run = _sample_run()
        run.failed = True
        path = tmp_path / "t.jsonl"
        write_trace(run, path)
        assert read_trace(path).failed is True


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"version": 999, "failed": false, '
                        '"n_threads": 1, "seed": 0}\n')
        with pytest.raises(TraceError):
            read_trace(path)
