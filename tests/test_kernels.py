"""Tests for the benchmark kernels."""

import pytest

from repro.trace.raw import extract_raw_deps
from repro.workloads.framework import run_program
from repro.workloads.registry import (
    all_bug_names,
    all_kernel_names,
    get_bug,
    get_kernel,
)
from repro.common.errors import ReproError

ALL_KERNELS = all_kernel_names()
INJECTABLE = ("lu", "fft", "barnes", "fluidanimate", "swaptions")
MULTITHREADED = ("lu", "fft", "radix", "barnes", "ocean", "canneal",
                 "fluidanimate", "streamcluster", "swaptions")
SEQUENTIAL = ("bzip2", "mcf", "bc")


class TestRegistry:
    def test_all_kernels_registered(self):
        # 12 benchmark kernels + 2 task-parallel programs
        assert len(ALL_KERNELS) == 14
        assert {"taskmapreduce", "taskgraphbug"} <= set(ALL_KERNELS)

    def test_eleven_bugs_registered(self):
        assert len(all_bug_names()) == 11

    def test_unknown_names_rejected(self):
        with pytest.raises(ReproError):
            get_kernel("nope")
        with pytest.raises(ReproError):
            get_bug("nope")


class TestAllKernels:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_runs_clean(self, name):
        run = run_program(get_kernel(name), seed=1)
        assert not run.failed
        assert len(run.events) > 20

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_produces_dependences(self, name):
        run = run_program(get_kernel(name), seed=1)
        streams = extract_raw_deps(run)
        assert sum(len(s) for s in streams.values()) > 5

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_deterministic_per_seed(self, name):
        a = run_program(get_kernel(name), seed=4)
        b = run_program(get_kernel(name), seed=4)
        assert [(e.tid, e.pc, e.addr) for e in a.events] == \
               [(e.tid, e.pc, e.addr) for e in b.events]

    @pytest.mark.parametrize("name", MULTITHREADED)
    def test_inter_thread_communication_present(self, name):
        run = run_program(get_kernel(name), seed=1)
        streams = extract_raw_deps(run)
        inter = sum(1 for s in streams.values()
                    for r in s if r.dep.inter_thread)
        assert inter > 0

    @pytest.mark.parametrize("name", SEQUENTIAL)
    def test_sequential_kernels_single_thread(self, name):
        run = run_program(get_kernel(name), seed=1)
        assert run.n_threads == 1

    @pytest.mark.parametrize("name", SEQUENTIAL + ("radix", "canneal"))
    def test_input_varies_with_seed(self, name):
        a = run_program(get_kernel(name), seed=1)
        b = run_program(get_kernel(name), seed=2)
        sig_a = [(e.pc, e.addr) for e in a.events]
        sig_b = [(e.pc, e.addr) for e in b.events]
        assert sig_a != sig_b


class TestInjectedBugs:
    @pytest.mark.parametrize("name", INJECTABLE)
    def test_inject_causes_failure_with_root_cause(self, name):
        run = run_program(get_kernel(name), seed=1, inject=True)
        assert run.failed
        assert run.meta["root_cause"]

    @pytest.mark.parametrize("name", INJECTABLE)
    def test_clean_by_default(self, name):
        run = run_program(get_kernel(name), seed=1)
        assert run.meta["root_cause"] is None

    @pytest.mark.parametrize("name", INJECTABLE)
    def test_root_cause_dep_occurs_in_failure_run(self, name):
        run = run_program(get_kernel(name), seed=1, inject=True)
        truth = run.meta["root_cause"]
        streams = extract_raw_deps(run)
        seen = {(r.dep.store_pc, r.dep.load_pc)
                for s in streams.values() for r in s}
        assert truth & seen

    @pytest.mark.parametrize("name", INJECTABLE)
    def test_new_code_uses_different_pcs(self, name):
        old = run_program(get_kernel(name), seed=1, new_code=False)
        new = run_program(get_kernel(name), seed=1, new_code=True)
        assert {e.pc for e in old.events} != {e.pc for e in new.events}

    @pytest.mark.parametrize("name", INJECTABLE)
    def test_legacy_variant_runs_clean(self, name):
        run = run_program(get_kernel(name), seed=1, new_code=False)
        assert not run.failed
