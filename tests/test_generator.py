"""Tests for the seeded concurrent-program generator.

The Hypothesis properties pin the generator's three contracts: every
generated program is schedulable (and its bug-free variant passes its
own oracle under any scheduler seed), the ground-truth root-cause tag
names a dependence that actually occurs in the failing interleaving and
never in correct ones, and generation is a pure function of the spec.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError
from repro.workloads import get_bug, get_workload
from repro.workloads.framework import run_program
from repro.workloads.generator import (
    ARCHETYPES,
    MOTIFS,
    GeneratedProgram,
    ProgramSpec,
    generate_program,
    parse_generated_name,
)
from repro.trace.raw import extract_raw_deps


def observed_pairs(run):
    """All (store_pc, load_pc) RAW pairs observed in a run."""
    return {(d.dep.store_pc, d.dep.load_pc)
            for deps in extract_raw_deps(run).values() for d in deps}


class TestProgramSpec:
    def test_from_seed_is_deterministic(self):
        assert ProgramSpec.from_seed(42) == ProgramSpec.from_seed(42)

    def test_explicit_choices_keep_drawn_structure(self):
        # Overriding archetype/motif must not shift the structural
        # draws; a spec rebuilt from its name equals the original.
        free = ProgramSpec.from_seed(42)
        forced = ProgramSpec.from_seed(42, archetype=free.archetype,
                                       motif=free.motif)
        assert free == forced

    def test_unknown_archetype_rejected(self):
        with pytest.raises(ReproError, match="archetype"):
            ProgramSpec.from_seed(1, archetype="heisenbug")

    def test_unknown_motif_rejected(self):
        with pytest.raises(ReproError, match="motif"):
            ProgramSpec.from_seed(1, motif="spaghetti")

    @given(seed=st.integers(0, 10**6),
           archetype=st.sampled_from(ARCHETYPES),
           motif=st.sampled_from(MOTIFS))
    @settings(max_examples=30, deadline=None)
    def test_name_round_trips(self, seed, archetype, motif):
        spec = ProgramSpec.from_seed(seed, archetype=archetype, motif=motif)
        assert parse_generated_name(spec.name) == spec

    @pytest.mark.parametrize("name", [
        "gen-heisenbug-regular-s1", "gen-atomicity-spaghetti-s1",
        "gen-atomicity-regular-x1", "gen-atomicity-regular-s1-extra",
        "lu", "gzip", "gen", "gen-atomicity-regular-sNaN"])
    def test_non_generated_names_parse_to_none(self, name):
        assert parse_generated_name(name) is None


class TestRegistryIntegration:
    def test_get_bug_resolves_generated_names(self):
        prog = get_bug("gen-order-pipeline-s7")
        assert isinstance(prog, GeneratedProgram)
        assert prog.spec.archetype == "order"
        assert prog.spec.motif == "pipeline"

    def test_get_workload_resolves_generated_names(self):
        assert isinstance(get_workload("gen-off_by_one-regular-s3"),
                          GeneratedProgram)

    def test_bogus_generated_name_is_helpful_error(self):
        with pytest.raises(ReproError, match="gen-atomicity-pipeline-s7"):
            get_bug("gen-bogus-thing-s1")


class TestGeneratedPrograms:
    @given(seed=st.integers(0, 10**6), sched_seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_bug_free_variant_passes_its_oracle(self, seed, sched_seed):
        # Schedulable under any scheduler seed, no failure, and the
        # run produces real communication for training to learn from.
        run = run_program(generate_program(seed), seed=sched_seed)
        assert not run.failed
        assert len(run.events) > 0
        assert observed_pairs(run)

    @given(seed=st.integers(0, 10**6), sched_seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_ground_truth_occurs_only_in_failing_run(self, seed,
                                                     sched_seed):
        program = generate_program(seed)
        failing = run_program(program, seed=sched_seed, buggy=True)
        assert failing.failed
        root = failing.meta["root_cause"]
        assert root
        # Every tagged dependence really occurs in the failing
        # interleaving...
        assert root <= observed_pairs(failing)
        # ...and never in a correct one, so it is diagnosable in
        # principle (pruning cannot erase it).
        correct = run_program(program, seed=sched_seed, buggy=False)
        assert not root & observed_pairs(correct)

    @given(seed=st.integers(0, 10**6), sched_seed=st.integers(0, 100),
           buggy=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_generation_is_pure(self, seed, sched_seed, buggy):
        # Two builds of the same spec replay to identical traces under
        # the same scheduler seed -- no global-RNG leakage.
        r1 = run_program(generate_program(seed), seed=sched_seed,
                         buggy=buggy)
        r2 = run_program(generate_program(seed), seed=sched_seed,
                         buggy=buggy)
        assert r1.events == r2.events

    @pytest.mark.slow
    @pytest.mark.parametrize("archetype", ARCHETYPES)
    @pytest.mark.parametrize("motif", MOTIFS)
    def test_every_archetype_motif_combination(self, archetype, motif):
        program = generate_program(11, archetype=archetype, motif=motif)
        failing = run_program(program, seed=0, buggy=True)
        assert failing.failed
        assert failing.meta["root_cause"] <= observed_pairs(failing)
        for sched_seed in range(3):
            run = run_program(program, seed=sched_seed)
            assert not run.failed
            assert not failing.meta["root_cause"] & observed_pairs(run)
