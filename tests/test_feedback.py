"""Tests for the programmer negative-feedback path (Section III.C)."""

import numpy as np
import pytest

from repro.core.config import ACTConfig
from repro.core.offline import (
    OfflineTrainer,
    collect_correct_runs,
    evaluate_false_positive_rate,
    sequences_from_runs,
)
from repro.trace.raw import RawDep


@pytest.fixture
def trained_with_gap(tinybug):
    """A model trained WITHOUT augmentation on a program whose traces
    contain no before-last-store negatives either: trained purely on
    positives, it predicts everything valid -- the scenario the
    feedback path exists for."""
    cfg = ACTConfig(seq_len=3)
    trainer = OfflineTrainer(config=cfg, augment_negatives=False)
    return trainer.train(tinybug, n_runs=4, buggy=False)


def _missed_sequence(trained, program):
    """An invalid sequence the network currently calls valid."""
    runs = collect_correct_runs(program, 2, seed0=40, buggy=False)
    pos, _ = sequences_from_runs(runs, trained.config.seq_len)
    base = pos[0]
    net = trained.make_network()
    valid_pairs = {(d.store_pc, d.load_pc) for s in pos for d in s}
    for wrong_store in range(0x2000, 0x2080, 4):
        bad = RawDep(wrong_store, base[-1].load_pc)
        if (bad.store_pc, bad.load_pc) in valid_pairs:
            continue
        seq = base[:-1] + (bad,)
        if net.predict_valid(trained.encoder.encode_seq(seq)):
            return seq
    pytest.skip("network already rejects every synthetic invalid")


class TestNegativeFeedback:
    def test_feedback_flips_missed_sequence(self, trained_with_gap,
                                            tinybug):
        seq = _missed_sequence(trained_with_gap, tinybug)
        n = trained_with_gap.train_negative_feedback([seq])
        assert n >= 1
        net = trained_with_gap.make_network()
        assert not net.predict_valid(trained_with_gap.encoder.encode_seq(seq))

    def test_rehearsal_preserves_false_positive_rate(self, trained_with_gap,
                                                     tinybug):
        seq = _missed_sequence(trained_with_gap, tinybug)
        support = collect_correct_runs(tinybug, 3, seed0=60, buggy=False)
        before = evaluate_false_positive_rate(trained_with_gap, support)
        trained_with_gap.train_negative_feedback([seq],
                                                 support_runs=support)
        after = evaluate_false_positive_rate(trained_with_gap, support)
        assert after <= before + 0.1

    def test_empty_feedback_is_noop(self, trained_with_gap):
        w = trained_with_gap.default_weights.copy()
        assert trained_with_gap.train_negative_feedback([]) == 0
        assert np.allclose(w, trained_with_gap.default_weights)

    def test_all_weight_sets_updated(self, trained_with_gap, tinybug):
        seq = _missed_sequence(trained_with_gap, tinybug)
        trained_with_gap.record_thread_weights(
            1, trained_with_gap.default_weights)
        n = trained_with_gap.train_negative_feedback([seq])
        assert n == 2  # default + thread 1
        net = trained_with_gap.make_network(1)
        assert not net.predict_valid(trained_with_gap.encoder.encode_seq(seq))
