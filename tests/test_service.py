"""Tests for the diagnosis service: ops, protocol, jobstore, daemon.

The daemon contract under test is *byte identity*: a job submitted over
the socket must produce exactly the output (stdout, stderr, exit code,
artifact files) of the equivalent cold CLI invocation, because both
call the same :mod:`repro.service.ops` code. Warm-state reuse must be
observable only in telemetry (``serve.warm_hits``, the missing
``diagnose.offline_train`` span) -- never in the report.

In-process daemon tests run :class:`~repro.service.server.Server` on a
background thread (cold CLI runs are sequenced strictly before the
daemon starts or after it drains, since the telemetry registry is
process-global). The kill/restart test uses a real subprocess and
``SIGKILL`` to prove jobstore durability.
"""

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.cli import main
from repro.common.errors import (
    JobNotFound,
    ProtocolError,
    ReproError,
    ServiceError,
)
from repro.parallel import PoolHandle, get_pool, jobs_from_env
from repro.service import client, ops, protocol
from repro.service.jobstore import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobStore,
)
from repro.service.server import Server

FAST = ["--train-runs", "4", "--pruning-runs", "6"]
FAST_KW = {"train_runs": 4, "pruning_runs": 6}


def _short_dir():
    """AF_UNIX socket paths are length-limited (~107 bytes); pytest's
    tmp_path nests too deep, so sockets live under a short mkdtemp."""
    return tempfile.mkdtemp(prefix="rsv")


def _cold(capsys, argv):
    """Run the CLI in-process; returns (rc, stdout, stderr)."""
    capsys.readouterr()
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


def _outcome_text(result):
    """Reassemble a job result as the CLI would have printed it."""
    out = result["out"] + "\n" if result["out"] else ""
    err = result["err"] + "\n" if result["err"] else ""
    return result["rc"], out, err


class _Daemon:
    """An in-process Server on a background thread."""

    def __init__(self, tmp=None, **kwargs):
        self.dir = tmp or _short_dir()
        self.socket_path = os.path.join(self.dir, "s.sock")
        self.server = Server(self.socket_path, **kwargs)
        self.thread = threading.Thread(
            target=lambda: self.server.run(install_signal_handlers=False),
            daemon=True)

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 10
        while True:
            try:
                client.ping(self.socket_path, timeout=1.0)
                return self
            except ServiceError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)

    def __exit__(self, *_exc):
        try:
            client.shutdown(self.socket_path, timeout=5.0)
        except ServiceError:
            self.server.stop()
        self.thread.join(timeout=60)


# ---------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------

class TestProtocol:
    def test_encode_decode_round_trip(self):
        payload = {"op": "submit", "request": {"kind": "trace",
                                               "args": {"seed": 3}}}
        frame = protocol.encode_message(payload)
        assert frame.endswith(b"\n")
        assert protocol.decode_frame(frame[:-1]) == payload

    def test_socketpair_round_trip(self):
        a, b = socket.socketpair()
        try:
            protocol.write_message(a, {"ok": True, "n": 7})
            assert protocol.read_message(b) == {"ok": True, "n": 7}
        finally:
            a.close()
            b.close()

    def test_bad_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_frame(b"{not json")
        assert exc.value.frame == "{not json"

    def test_non_object_frame_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"[1, 2]")

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b'{"half": ')
            a.close()
            with pytest.raises(ProtocolError):
                protocol.read_message(b)
        finally:
            b.close()

    def test_unreachable_daemon_is_service_error(self):
        path = os.path.join(_short_dir(), "nobody.sock")
        with pytest.raises(ServiceError) as exc:
            protocol.request(path, {"op": "ping"}, timeout=1.0)
        assert exc.value.socket_path == path


class TestRequestPayloads:
    REQUESTS = [
        ops.DiagnoseRequest(bug="gzip", seed=9, jobs=2),
        ops.CorpusRequest(seed=3, size=2, out="m.json"),
        ops.TraceRequest(program="lu", seed=4, out="t.jsonl"),
        ops.ProfileRequest(programs=("gzip",), tick_clock=True),
    ]

    # ids get a suffix so the "corpus" param id doesn't collide with
    # the corpus marker keyword (conftest deselects on it).
    @pytest.mark.parametrize("req", REQUESTS,
                             ids=lambda r: f"{r.kind}-req")
    def test_round_trip(self, req):
        payload = ops.request_to_payload(req)
        # Must survive the wire (JSON) unchanged.
        payload = json.loads(json.dumps(payload))
        assert ops.request_from_payload(payload) == req

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            ops.request_from_payload({"kind": "frobnicate", "args": {}})
        assert "frobnicate" in str(exc.value)

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            ops.request_from_payload(
                {"kind": "diagnose", "args": {"bug": "gzip", "zap": 1}})
        assert "zap" in str(exc.value)

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError):
            ops.request_from_payload({"kind": "diagnose", "args": {}})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError):
            ops.request_from_payload("diagnose")


# ---------------------------------------------------------------------
# jobstore
# ---------------------------------------------------------------------

def _req_payload(bug="gzip"):
    return ops.request_to_payload(
        ops.DiagnoseRequest(bug=bug, **FAST_KW))


class TestJobStore:
    def test_fifo_ids_and_order(self):
        store = JobStore()
        j1 = store.submit(_req_payload())
        j2 = store.submit(_req_payload("mysql1"))
        assert (j1.id, j2.id) == ("j1", "j2")
        assert store.next_queued().id == "j1"
        store.mark_running("j1")
        assert store.next_queued().id == "j2"

    def test_get_unknown_job(self):
        with pytest.raises(JobNotFound) as exc:
            JobStore().get("j99")
        assert exc.value.job_id == "j99"

    def test_rc1_is_done_rc2_is_failed(self):
        store = JobStore()
        j1 = store.submit(_req_payload())
        j2 = store.submit(_req_payload())
        store.mark_running(j1.id)
        store.finish(j1.id, ops.Outcome(rc=1, out="not found"))
        store.mark_running(j2.id)
        store.finish(j2.id, ops.Outcome(rc=2, err="error: boom"))
        assert store.get(j1.id).state == JOB_DONE
        assert store.get(j2.id).state == JOB_FAILED

    def test_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "jobs.json")
        store = JobStore(path)
        job = store.submit(_req_payload())
        store.mark_running(job.id)
        store.finish(job.id, ops.Outcome(rc=0, out="hi",
                                         payload={"found": True}),
                     profile={"counters": {}})
        reloaded = JobStore(path)
        got = reloaded.get(job.id)
        assert got.state == JOB_DONE
        assert got.result["out"] == "hi"
        assert got.profile == {"counters": {}}
        assert reloaded.next_queued() is None

    def test_finished_history_is_pruned(self, tmp_path):
        path = str(tmp_path / "jobs.json")
        store = JobStore(path, history_limit=2)
        ids = []
        for i in range(4):
            job = store.submit(_req_payload())
            store.mark_running(job.id)
            store.finish(job.id, ops.Outcome(rc=0, out=f"r{i}"))
            ids.append(job.id)
        assert len(store) == 2
        assert store.pruned == 2
        assert store.counts()["pruned"] == 2
        with pytest.raises(JobNotFound):
            store.get(ids[0])
        assert store.get(ids[3]).result["out"] == "r3"
        # Pruning persists: the count and the id counter both survive a
        # reload, so ids never recycle even if every job was pruned.
        reloaded = JobStore(path, history_limit=2)
        assert reloaded.pruned == 2
        assert len(reloaded) == 2
        assert reloaded.submit(_req_payload()).id == "j5"

    def test_under_limit_prunes_nothing(self):
        # Fewer finished jobs than the limit: the excess is negative
        # and must not turn into a Python negative slice that prunes.
        store = JobStore(history_limit=3)
        for _ in range(2):
            job = store.submit(_req_payload())
            store.mark_running(job.id)
            store.finish(job.id, ops.Outcome(rc=0))
            assert store.pruned == 0
        assert len(store) == 2

    def test_queued_and_running_never_pruned(self):
        store = JobStore(history_limit=1)
        queued = store.submit(_req_payload())
        running = store.submit(_req_payload())
        store.mark_running(running.id)
        for _ in range(3):
            job = store.submit(_req_payload())
            store.mark_running(job.id)
            store.finish(job.id, ops.Outcome(rc=0))
        assert store.get(queued.id).state == JOB_QUEUED
        assert store.get(running.id).state == JOB_RUNNING
        states = [j.state for j in store.jobs()]
        assert states.count(JOB_DONE) == 1  # newest kept, older pruned
        assert store.pruned == 2

    def test_history_limit_must_allow_reading_results(self):
        with pytest.raises(ReproError):
            JobStore(history_limit=0)

    def test_running_jobs_requeued_on_load(self, tmp_path):
        path = str(tmp_path / "jobs.json")
        store = JobStore(path)
        j1 = store.submit(_req_payload())
        j2 = store.submit(_req_payload("mysql1"))
        store.mark_running(j1.id)
        # Simulate a daemon killed mid-job: just reload the file.
        reloaded = JobStore(path)
        got = reloaded.get(j1.id)
        assert got.state == JOB_QUEUED
        assert got.requeues == 1
        assert got.started_at is None
        assert reloaded.get(j2.id).state == JOB_QUEUED
        assert reloaded.next_queued().id == j1.id  # FIFO preserved
        assert reloaded.submit(_req_payload()).id == "j3"  # ids continue


# ---------------------------------------------------------------------
# warm-state cache
# ---------------------------------------------------------------------

class TestWarmStateCache:
    def test_lru_eviction(self):
        cache = ops.WarmStateCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refreshes "a"
        cache.put("c", {"v": 3})           # evicts "b"
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert cache.stats() == {"size": 2, "capacity": 2, "hits": 3,
                                 "misses": 1, "evictions": 1}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            ops.WarmStateCache(capacity=0)

    def test_key_is_order_independent(self):
        assert (ops.WarmStateCache.key(a=1, b=2)
                == ops.WarmStateCache.key(b=2, a=1))

    def test_warm_diagnose_identical_and_skips_training(self):
        req = ops.DiagnoseRequest(bug="gzip", **FAST_KW)
        cold = ops.run_diagnose(req)
        cache = ops.WarmStateCache()
        first = ops.run_diagnose(req, warm=cache)
        assert (first.rc, first.out, first.err) == (cold.rc, cold.out,
                                                    cold.err)
        assert cache.misses == 1 and len(cache) == 1
        warm = ops.run_diagnose(req, warm=cache)
        assert (warm.rc, warm.out, warm.err) == (cold.rc, cold.out,
                                                 cold.err)
        assert cache.hits == 1

    def test_faulted_requests_bypass_cache(self):
        cache = ops.WarmStateCache()
        req = ops.DiagnoseRequest(bug="gzip", faults="seed=3", **FAST_KW)
        ops.run_diagnose(req, warm=cache)
        assert cache.hits == cache.misses == len(cache) == 0

    def test_warm_key_tracks_diagnose_default_train_seed(self):
        # The warm key must derive its training seed from the same
        # constant diagnose_failure defaults to -- a drift between the
        # two would serve trained state from the wrong seed silently.
        import inspect

        from repro.core.diagnosis import (
            DEFAULT_TRAIN_SEED0,
            diagnose_failure,
        )

        sig = inspect.signature(diagnose_failure)
        assert (sig.parameters["train_seed0"].default
                == DEFAULT_TRAIN_SEED0)

    def test_engines_never_share_cache_entries(self):
        # The warm key carries the engine fingerprint, so two engines
        # on the same workload miss independently and hold separate
        # entries -- serving NN weights to pset (or vice versa) would
        # be silent corruption.
        cache = ops.WarmStateCache()
        nn = ops.DiagnoseRequest(bug="gzip", **FAST_KW)
        pset = ops.DiagnoseRequest(bug="gzip", engine="pset", **FAST_KW)
        cold = {"nn": ops.run_diagnose(nn), "pset": ops.run_diagnose(pset)}
        first = {"nn": ops.run_diagnose(nn, warm=cache),
                 "pset": ops.run_diagnose(pset, warm=cache)}
        assert cache.misses == 2 and cache.hits == 0 and len(cache) == 2
        warm = {"nn": ops.run_diagnose(nn, warm=cache),
                "pset": ops.run_diagnose(pset, warm=cache)}
        assert cache.misses == 2 and cache.hits == 2 and len(cache) == 2
        for name in ("nn", "pset"):
            for got in (first[name], warm[name]):
                assert (got.rc, got.out, got.err) == (
                    cold[name].rc, cold[name].out, cold[name].err)

    def test_ensemble_member_list_distinguishes_cache_keys(self):
        # ensemble:nn+pset and ensemble:pbi+pset fingerprint differently.
        from repro.engines import registry as engine_registry

        fp_a = ops.WarmStateCache.key(
            engine=engine_registry.create("ensemble:nn+pset").fingerprint())
        fp_b = ops.WarmStateCache.key(
            engine=engine_registry.create("ensemble:pbi+pset").fingerprint())
        assert fp_a != fp_b


# ---------------------------------------------------------------------
# pool close + jobs env satellites
# ---------------------------------------------------------------------

class TestPoolClose:
    def test_close_is_idempotent_and_rebuildable(self):
        handle = PoolHandle()
        ex = handle.executor(1)
        assert handle.max_workers == 1
        handle.close()
        handle.close()
        assert handle.max_workers == 0
        ex2 = handle.executor(1)  # a closed handle can come back warm
        assert ex2 is not ex
        handle.close()

    def test_shared_pool_survives_close(self):
        from repro.parallel import run_tasks

        get_pool().close()
        assert run_tasks(abs, [-1, -2], jobs=2) == [1, 2]
        get_pool().close()


class TestJobsFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert jobs_from_env() is None
        assert jobs_from_env(default=3) == 3

    def test_zero_means_auto_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert jobs_from_env() == 0

    def test_auto_resolves_to_cpu_count(self, monkeypatch):
        from repro.parallel import resolve_jobs

        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3

    def test_resolved_value_recorded_in_telemetry(self):
        from repro import telemetry
        from repro.parallel import resolve_jobs

        with telemetry.use_registry(telemetry.Registry()) as reg:
            resolve_jobs(0)
        snapshot = reg.snapshot()
        assert (snapshot["gauges"]["parallel.jobs_resolved"]
                == (os.cpu_count() or 1))

    def test_preset_from_env_honours_auto(self, monkeypatch):
        from repro.analysis.presets import preset_from_env

        monkeypatch.setenv("REPRO_PRESET", "fast")
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert preset_from_env().jobs == 0


# ---------------------------------------------------------------------
# daemon end-to-end (in-process server thread)
# ---------------------------------------------------------------------

class TestDaemonRoundTrip:
    def test_submit_matches_cold_cli_for_two_bugs(self, capsys, tmp_path):
        cold = {}
        for bug in ("gzip", "mysql1"):
            cold[bug] = _cold(capsys, ["diagnose", bug, *FAST])
        with _Daemon() as d:
            for bug in ("gzip", "mysql1"):
                job = client.submit(
                    d.socket_path,
                    ops.DiagnoseRequest(bug=bug, **FAST_KW))
                reply = client.wait_for(d.socket_path, job["id"],
                                        timeout=120)
                assert _outcome_text(reply["result"]) == cold[bug]

    def test_corpus_artifact_matches_cold_cli(self, capsys, tmp_path):
        args = ["--seed", "3", "--size", "2", *FAST]
        cold_out = tmp_path / "cold.json"
        cold = _cold(capsys, ["corpus", *args, "--out", str(cold_out)])
        warm_out = tmp_path / "warm.json"
        with _Daemon() as d:
            job = client.submit(
                d.socket_path,
                ops.CorpusRequest(seed=3, size=2, out=str(warm_out),
                                  **FAST_KW))
            reply = client.wait_for(d.socket_path, job["id"], timeout=120)
        rc, out, err = _outcome_text(reply["result"])
        # The printed path differs (cold.json vs warm.json); everything
        # else -- tables, rc, the metrics JSON bytes -- must match.
        assert rc == cold[0]
        assert out.replace(str(warm_out), str(cold_out)) == cold[1]
        assert err == cold[2]
        assert warm_out.read_bytes() == cold_out.read_bytes()

    def test_concurrent_submits_run_fifo_and_deterministic(
            self, capsys, tmp_path):
        jobs_argv = [
            ["diagnose", "gzip", *FAST],
            ["diagnose", "mysql1", *FAST],
            ["corpus", "--seed", "3", "--size", "2", *FAST],
        ]
        cold = [_cold(capsys, argv) for argv in jobs_argv]
        requests = [
            ops.DiagnoseRequest(bug="gzip", **FAST_KW),
            ops.DiagnoseRequest(bug="mysql1", **FAST_KW),
            ops.CorpusRequest(seed=3, size=2, **FAST_KW),
        ]
        with _Daemon(jobs=2) as d:
            # Burst-submit before anything finishes: the queue must
            # execute strictly FIFO, and --jobs 2 intra-job parallelism
            # must not change a byte of any result.
            ids = [client.submit(d.socket_path, r)["id"]
                   for r in requests]
            assert ids == ["j1", "j2", "j3"]
            replies = [client.wait_for(d.socket_path, jid, timeout=240)
                       for jid in ids]
            status = client.status(d.socket_path)
        for reply, expected in zip(replies, cold):
            assert _outcome_text(reply["result"]) == expected
        starts = [r["job"]["started_at"] for r in replies]
        assert starts == sorted(starts)  # FIFO execution order
        assert status["counts"][JOB_DONE] == 3

    def test_warm_cache_hit_on_repeat_submit(self, capsys):
        cold = _cold(capsys, ["diagnose", "gzip", *FAST])
        req = ops.DiagnoseRequest(bug="gzip", **FAST_KW)
        with _Daemon() as d:
            first = client.wait_for(
                d.socket_path,
                client.submit(d.socket_path, req)["id"], timeout=120)
            second = client.wait_for(
                d.socket_path,
                client.submit(d.socket_path, req)["id"], timeout=120)
            s1 = client.status(d.socket_path, job_id=first["job"]["id"])
            s2 = client.status(d.socket_path, job_id=second["job"]["id"])
            daemon_status = client.status(d.socket_path)
        # Identical bytes either way...
        assert _outcome_text(first["result"]) == cold
        assert _outcome_text(second["result"]) == cold
        # ...but the second run skipped offline retraining entirely:
        # telemetry says so, and the span tree has no training phase.
        c1, c2 = s1["profile"]["counters"], s2["profile"]["counters"]
        assert (c1["serve.warm_hits"], c1["serve.warm_misses"]) == (0, 1)
        assert (c2["serve.warm_hits"], c2["serve.warm_misses"]) == (1, 0)
        assert "diagnose.offline_train" in _span_names(s1["profile"])
        assert "diagnose.offline_train" not in _span_names(s2["profile"])
        warm = daemon_status["warm"]
        assert warm["hits"] == 1 and warm["misses"] == 1

    def test_submit_engine_matches_cold_cli(self, capsys):
        cold = _cold(capsys,
                     ["diagnose", "gzip", "--engine", "pset", *FAST])
        req = ops.DiagnoseRequest(bug="gzip", engine="pset", **FAST_KW)
        with _Daemon() as d:
            first = client.wait_for(
                d.socket_path,
                client.submit(d.socket_path, req)["id"], timeout=120)
            # A repeat submit is served from the per-engine warm cache
            # and must still be byte-identical.
            second = client.wait_for(
                d.socket_path,
                client.submit(d.socket_path, req)["id"], timeout=120)
            warm = client.status(d.socket_path)["warm"]
        assert _outcome_text(first["result"]) == cold
        assert _outcome_text(second["result"]) == cold
        assert warm["hits"] == 1 and warm["misses"] == 1

    def test_submit_shootout_matches_cold_cli(self, capsys, tmp_path):
        cold_out = tmp_path / "cold.json"
        cold = _cold(capsys, ["shootout", "--seed", "3", "--size", "2",
                              "--engines", "pset,pbi", *FAST,
                              "--no-bench", "--out", str(cold_out)])
        warm_out = tmp_path / "warm.json"
        with _Daemon() as d:
            job = client.submit(
                d.socket_path,
                ops.ShootoutRequest(seed=3, size=2,
                                    engines=("pset", "pbi"),
                                    out=str(warm_out), bench=None,
                                    **FAST_KW))
            reply = client.wait_for(d.socket_path, job["id"], timeout=240)
        rc, out, err = _outcome_text(reply["result"])
        assert rc == cold[0]
        assert out.replace(str(warm_out), str(cold_out)) == cold[1]
        assert err == cold[2]
        assert warm_out.read_bytes() == cold_out.read_bytes()

    def test_status_and_errors_over_socket(self):
        with _Daemon() as d:
            info = client.ping(d.socket_path)
            assert info["pid"] == os.getpid()
            with pytest.raises(JobNotFound):
                client.status(d.socket_path, job_id="j99")
            with pytest.raises(ProtocolError):
                client.submit(d.socket_path,
                              {"kind": "frobnicate", "args": {}})
            # A bad request never reaches the queue.
            assert client.status(d.socket_path)["jobs"] == []

    def test_failed_job_is_failed_not_fatal(self):
        with _Daemon() as d:
            job = client.submit(
                d.socket_path, ops.DiagnoseRequest(bug="not-a-bug"))
            reply = client.wait_for(d.socket_path, job["id"], timeout=60)
            assert reply["job"]["state"] == JOB_FAILED
            assert "unknown bug" in reply["result"]["err"]
            assert reply["result"]["rc"] == 2
            # The daemon is still alive and serving.
            assert client.ping(d.socket_path)["ok"]


class TestDaemonRobustness:
    def test_idle_or_dying_client_does_not_kill_daemon(self, monkeypatch):
        from repro.service import server as server_mod

        monkeypatch.setattr(server_mod, "CONN_TIMEOUT", 0.2)
        with _Daemon() as d:
            # A client that connects and sends nothing: its recv times
            # out daemon-side and only the connection is dropped.
            idle = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            idle.connect(d.socket_path)
            time.sleep(0.6)  # well past the per-connection timeout
            assert client.ping(d.socket_path)["ok"]
            idle.close()
            # A client that dies mid-frame is equally harmless.
            half = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            half.connect(d.socket_path)
            half.sendall(b'{"op": ')
            half.close()
            assert client.ping(d.socket_path)["ok"]

    def test_store_failure_surfaces_and_scheduler_survives(
            self, tmp_path):
        with _Daemon() as d:
            original = d.server.store.finish

            def boom(*_args, **_kwargs):
                raise OSError("disk full")

            d.server.store.finish = boom
            client.submit(
                d.socket_path,
                ops.TraceRequest(program="lu",
                                 out=str(tmp_path / "t1.jsonl")))
            deadline = time.monotonic() + 60
            while (client.status(d.socket_path)["scheduler"]["errors"]
                   == 0):
                assert time.monotonic() < deadline, \
                    "scheduler error never surfaced"
                time.sleep(0.05)
            d.server.store.finish = original
            status = client.status(d.socket_path)
            assert status["scheduler"]["alive"]
            assert "disk full" in status["scheduler"]["last_error"]
            # The scheduler thread survived: the next job completes.
            job = client.submit(
                d.socket_path,
                ops.TraceRequest(program="lu",
                                 out=str(tmp_path / "t2.jsonl")))
            reply = client.wait_for(d.socket_path, job["id"], timeout=60)
            assert reply["job"]["state"] == JOB_DONE

    def test_bind_refuses_non_socket_path(self):
        # A typo'd --socket pointing at a real file must not delete it.
        path = os.path.join(_short_dir(), "not-a-socket")
        with open(path, "w", encoding="utf-8") as f:
            f.write("precious data")
        server = Server(path)
        with pytest.raises(ReproError, match="not a socket"):
            server.run(install_signal_handlers=False)
        with open(path, encoding="utf-8") as f:
            assert f.read() == "precious data"


def _span_names(profile):
    names = set()
    stack = list(profile.get("spans") or [])
    while stack:
        span = stack.pop()
        names.add(span["name"])
        stack.extend(span.get("children") or [])
    return names


# ---------------------------------------------------------------------
# daemon durability (real subprocess, SIGKILL)
# ---------------------------------------------------------------------

def _serve_env():
    env = dict(os.environ)
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_daemon(sock, state):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--socket", sock, "--state", state],
        env=_serve_env(), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)


def _wait_ping(sock, proc, timeout=30):
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.ping(sock, timeout=1.0)
        except ServiceError:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon died: {proc.stderr.read()}")
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


class TestDaemonDurability:
    def test_sigkill_then_restart_resumes_queue(self, capsys, tmp_path):
        cold = _cold(capsys, ["diagnose", "gzip", *FAST])
        tmp = _short_dir()
        sock = os.path.join(tmp, "s.sock")
        state = str(tmp_path / "jobs.json")
        daemon = _spawn_daemon(sock, state)
        try:
            _wait_ping(sock, daemon)
            # j1 is slow enough to be caught mid-run; j2 waits behind it.
            j1 = client.submit(
                sock, ops.CorpusRequest(seed=3, size=4, **FAST_KW))
            j2 = client.submit(
                sock, ops.DiagnoseRequest(bug="gzip", **FAST_KW))
            deadline = time.monotonic() + 60
            while True:
                if (client.status(sock, job_id=j1["id"])["job"]["state"]
                        == JOB_RUNNING):
                    break
                assert time.monotonic() < deadline, "j1 never started"
                time.sleep(0.05)
            daemon.kill()
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

        # The store on disk has j1 persisted as running; loading it
        # demotes the job back to queued, FIFO position intact.
        store = JobStore(state)
        assert store.get(j1["id"]).state == JOB_QUEUED
        assert store.get(j1["id"]).requeues == 1
        assert store.get(j2["id"]).state == JOB_QUEUED

        daemon = _spawn_daemon(sock, state)
        try:
            _wait_ping(sock, daemon)
            r1 = client.wait_for(sock, j1["id"], timeout=240)
            r2 = client.wait_for(sock, j2["id"], timeout=240)
            assert r1["job"]["state"] == JOB_DONE
            assert r1["job"]["requeues"] == 1
            # The requeued run and the fresh one both produce exactly
            # what the cold CLI would have.
            assert "Corpus diagnosis (seed 3, 4 programs)" in (
                r1["result"]["out"])
            assert _outcome_text(r2["result"]) == cold
            client.shutdown(sock)
            daemon.wait(timeout=60)
            assert daemon.returncode == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

    def test_sigterm_drains_gracefully(self, tmp_path):
        tmp = _short_dir()
        sock = os.path.join(tmp, "s.sock")
        state = str(tmp_path / "jobs.json")
        daemon = _spawn_daemon(sock, state)
        try:
            _wait_ping(sock, daemon)
            job = client.submit(
                sock, ops.DiagnoseRequest(bug="gzip", **FAST_KW))
            daemon.send_signal(signal.SIGTERM)
            daemon.wait(timeout=120)
            assert daemon.returncode == 0
            assert not os.path.exists(sock)  # socket unlinked on the way out
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
        # Whatever the drain didn't finish is still queued durably.
        store = JobStore(state)
        assert store.get(job["id"]).state in (JOB_QUEUED, JOB_DONE)


# ---------------------------------------------------------------------
# service CLI commands
# ---------------------------------------------------------------------

class TestServiceCLI:
    def test_submit_wait_is_byte_identical(self, capsys):
        cold = _cold(capsys, ["diagnose", "gzip", *FAST])
        with _Daemon() as d:
            rc = main(["submit", "--socket", d.socket_path, "--wait",
                       "diagnose", "gzip", *FAST])
            captured = capsys.readouterr()
        assert (rc, captured.out, captured.err) == cold

    def test_submit_status_result_flow(self, capsys):
        with _Daemon() as d:
            assert main(["submit", "--socket", d.socket_path,
                         "diagnose", "gzip", *FAST]) == 0
            job_id = capsys.readouterr().out.strip()
            assert job_id == "j1"
            rc = main(["result", job_id, "--socket", d.socket_path,
                       "--wait"])
            waited = capsys.readouterr()
            assert rc in (0, 1)
            assert "root cause found" in waited.out
            assert main(["status", "--socket", d.socket_path]) == 0
            status_out = capsys.readouterr().out
            assert "j1" in status_out and "done" in status_out
            assert "warm cache:" in status_out

    def test_status_out_writes_profile_json(self, capsys, tmp_path):
        out = tmp_path / "status.json"
        with _Daemon() as d:
            assert main(["submit", "--socket", d.socket_path,
                         "diagnose", "gzip", *FAST]) == 0
            job_id = capsys.readouterr().out.strip()
            assert main(["result", job_id, "--socket", d.socket_path,
                         "--wait"]) in (0, 1)
            capsys.readouterr()
            assert main(["status", job_id, "--socket", d.socket_path,
                         "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["job"]["id"] == job_id
        assert doc["profile"]["counters"]["diagnose.runs"] == 1

    def test_result_without_wait_on_unfinished_job(self, capsys):
        with _Daemon() as d:
            assert main(["submit", "--socket", d.socket_path,
                         "corpus", "--seed", "3", "--size", "2",
                         *FAST]) == 0
            job_id = capsys.readouterr().out.strip()
            rc = main(["result", job_id, "--socket", d.socket_path])
            captured = capsys.readouterr()
            if rc == 2:  # still running: the common case
                assert "still" in captured.err
            # Drain before shutdown so teardown isn't racing the job.
            main(["result", job_id, "--socket", d.socket_path, "--wait"])
            capsys.readouterr()

    def test_client_commands_without_daemon(self, capsys):
        missing = os.path.join(_short_dir(), "no.sock")
        for argv in (["status", "--socket", missing],
                     ["shutdown", "--socket", missing],
                     ["submit", "--socket", missing, "trace", "lu"]):
            assert main(argv) == 2
            assert "cannot reach daemon" in capsys.readouterr().err
