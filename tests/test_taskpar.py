"""Tests for the task-parallel model (the paper's deferred future work)."""

import pytest

from repro.core.config import ACTConfig
from repro.core.diagnosis import diagnose_failure
from repro.trace.raw import extract_raw_deps
from repro.workloads.framework import run_program
from repro.workloads.registry import get_kernel


class TestTaskPool:
    def test_all_tasks_execute_exactly_once(self):
        run = run_program(get_kernel("taskmapreduce"), seed=3)
        assert not run.failed
        streams = extract_raw_deps(run)
        # the reduce task stores the total exactly once
        code_map = run.code_map
        total_pc = code_map.pc_of("reduce_store_total", "reduce_task")
        stores = [e for e in run.events if e.pc == total_pc]
        assert len(stores) == 1

    def test_task_to_worker_mapping_varies_with_schedule(self):
        """The same task runs on different workers across seeds --
        the property that breaks per-thread invariant schemes."""
        code_map = None
        owners = set()
        for seed in range(10):
            run = run_program(get_kernel("taskmapreduce"), seed=seed)
            code_map = run.code_map
            pc = code_map.pc_of("reduce_store_total", "reduce_task")
            tid = next(e.tid for e in run.events if e.pc == pc)
            owners.add(tid)
        assert len(owners) > 1

    def test_reduce_reads_every_map_partial(self):
        run = run_program(get_kernel("taskmapreduce"), seed=1, n_maps=3)
        pc = run.code_map.pc_of("reduce_load_partial", "reduce_task")
        loads = [e for e in run.events if e.pc == pc]
        assert len(loads) == 3

    def test_more_workers_still_correct(self):
        run = run_program(get_kernel("taskmapreduce"), seed=5, n_workers=4)
        assert not run.failed


class TestTaskGraphBug:
    def test_correct_runs_clean(self):
        for seed in range(8):
            run = run_program(get_kernel("taskgraphbug"), seed=seed)
            assert not run.failed

    def test_buggy_run_fails_with_root_cause(self):
        run = run_program(get_kernel("taskgraphbug"), seed=9, buggy=True)
        assert run.failed
        assert run.meta["root_cause"]

    def test_act_diagnoses_task_parallel_bug(self):
        """Pooled (pattern-based) weights diagnose the bug regardless of
        which worker executed the racing tasks."""
        report = diagnose_failure(get_kernel("taskgraphbug"),
                                  config=ACTConfig(),
                                  n_train_runs=8, n_pruning_runs=12)
        assert report.failed
        assert report.found
        assert report.rank <= 3

    def test_diagnosis_robust_to_task_placement(self):
        """Different failure seeds put producer/consumer on different
        workers; diagnosis succeeds either way."""
        from repro.core.offline import OfflineTrainer
        cfg = ACTConfig()
        trained = OfflineTrainer(config=cfg).train(
            get_kernel("taskgraphbug"), n_runs=8, buggy=False)
        for seed in (7, 21):
            report = diagnose_failure(get_kernel("taskgraphbug"),
                                      config=cfg, trained=trained,
                                      failure_seed=seed, n_pruning_runs=8)
            assert report.found, seed
