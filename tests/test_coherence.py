"""Tests for the snoopy MESI coherent memory system."""

from hypothesis import given, settings, strategies as st

from repro.sim.coherence import CoherentMemorySystem, MESIState
from repro.sim.params import MachineParams


def _sys(**kw):
    defaults = dict(n_cores=4, l1_size=1024, l1_assoc=2,
                    l2_size=4096, l2_assoc=4, line_size=64)
    defaults.update(kw)
    return CoherentMemorySystem(MachineParams(**defaults))


class TestMESITransitions:
    def test_cold_read_is_exclusive(self):
        m = _sys()
        res = m.load(0, 128)
        assert res.level == "mem"
        assert res.state_before == MESIState.INVALID
        assert m._cores[0].l2.lookup(128).state == MESIState.EXCLUSIVE

    def test_second_reader_shares(self):
        m = _sys()
        m.load(0, 128)
        res = m.load(1, 128)
        assert res.level == "c2c"
        assert m._cores[0].l2.lookup(128).state == MESIState.SHARED
        assert m._cores[1].l2.lookup(128).state == MESIState.SHARED

    def test_store_makes_modified(self):
        m = _sys()
        m.store(0, 128, pc=0x10)
        assert m._cores[0].l2.lookup(128).state == MESIState.MODIFIED

    def test_exclusive_upgrades_silently(self):
        m = _sys()
        m.load(0, 128)
        res = m.store(0, 128, pc=0x10)
        assert res.level == "l1"
        assert m._cores[0].l2.lookup(128).state == MESIState.MODIFIED

    def test_shared_store_invalidates_remotes(self):
        m = _sys()
        m.load(0, 128)
        m.load(1, 128)
        res = m.store(0, 128, pc=0x10)
        assert res.level == "upgrade"
        assert m._cores[1].l2.lookup(128) is None

    def test_remote_store_invalidates(self):
        m = _sys()
        m.store(0, 128, pc=0x10)
        m.store(1, 128, pc=0x14)
        assert m._cores[0].l2.lookup(128) is None
        assert m._cores[1].l2.lookup(128).state == MESIState.MODIFIED

    def test_dirty_read_miss_is_cache_to_cache(self):
        m = _sys()
        m.store(0, 128, pc=0x10)
        res = m.load(1, 128)
        assert res.level == "c2c"
        assert m._cores[0].l2.lookup(128).state == MESIState.SHARED

    def test_l1_hit_after_fill(self):
        m = _sys()
        m.load(0, 128)
        res = m.load(0, 128)
        assert res.level == "l1"


class TestLastWriter:
    def test_local_store_then_load(self):
        m = _sys()
        m.store(0, 128, pc=0x10)
        res = m.load(0, 128)
        assert res.writer == (0x10, 0)

    def test_piggyback_on_dirty_c2c(self):
        m = _sys()
        m.store(0, 128, pc=0x10)
        res = m.load(1, 128)
        assert res.writer == (0x10, 0)

    def test_no_piggyback_on_clean_c2c_by_default(self):
        m = _sys()
        m.store(0, 128, pc=0x10)
        m.load(1, 128)       # dirty c2c: both now S, metadata travelled
        res = m.load(2, 128)  # clean c2c: no piggyback (dirty-only)
        assert res.writer is None

    def test_piggyback_always_when_policy_disabled(self):
        m = _sys(lw_piggyback_dirty_only=False)
        m.store(0, 128, pc=0x10)
        m.load(1, 128)
        res = m.load(2, 128)
        assert res.writer == (0x10, 0)

    def test_line_granularity_aliases_words(self):
        m = _sys(lw_word_granularity=False)
        m.store(0, 128, pc=0x10)
        m.store(0, 132, pc=0x14)  # same line, next word
        res = m.load(0, 128)
        assert res.writer == (0x14, 0)

    def test_word_granularity_keeps_words_separate(self):
        m = _sys(lw_word_granularity=True)
        m.store(0, 128, pc=0x10)
        m.store(0, 132, pc=0x14)
        res = m.load(0, 128)
        assert res.writer == (0x10, 0)

    def test_eviction_drops_metadata_by_default(self):
        m = _sys(l2_size=128, l2_assoc=1, l1_size=64, l1_assoc=1)
        m.store(0, 0, pc=0x10)
        m.store(0, 128, pc=0x14)  # evicts line 0 (same set, assoc 1)
        res = m.load(0, 0)
        assert res.writer is None
        assert m.stats["lw_dropped"] >= 1

    def test_eviction_writeback_preserves_metadata(self):
        m = _sys(l2_size=128, l2_assoc=1, l1_size=64, l1_assoc=1,
                 lw_writeback_on_evict=True)
        m.store(0, 0, pc=0x10)
        m.store(0, 128, pc=0x14)
        res = m.load(0, 0)
        assert res.writer == (0x10, 0)


class TestStats:
    def test_counters_accumulate(self):
        m = _sys()
        m.store(0, 0, pc=1)
        m.load(0, 0)
        m.load(1, 0)
        s = m.stats
        assert s["stores"] == 1
        assert s["loads"] == 2
        assert s["c2c"] >= 1


class TestPropertySingleWriter:
    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 3)),
                    min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_reported_writer_wrote_that_line(self, ops):
        """Any writer returned for a load previously stored to the line."""
        m = _sys(lw_word_granularity=False)
        writers = {}
        pc = 0x100
        for core, slot in ops:
            addr = slot * 64
            pc += 4
            m.store(core, addr, pc=pc)
            writers.setdefault(addr, set()).add(pc)
        for slot in range(4):
            addr = slot * 64
            res = m.load(0, addr)
            if res.writer is not None:
                assert res.writer[0] in writers.get(addr, set())


class TestSWMRInvariant:
    """Single-Writer-Multiple-Reader: the defining MESI invariant."""

    @given(st.lists(st.tuples(st.integers(0, 3),    # core
                              st.booleans(),        # is_store
                              st.integers(0, 2)),   # line slot
                    min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_never_two_modified_copies(self, ops):
        m = _sys()
        pc = 0x100
        for core, is_store, slot in ops:
            addr = slot * 64
            pc += 4
            if is_store:
                m.store(core, addr, pc=pc)
            else:
                m.load(core, addr)
            # After every operation: at most one M/E copy per line, and
            # if any copy is M or E there are no other copies at all.
            for s in range(3):
                la = s * 64
                states = []
                for caches in m._cores:
                    line = caches.l2.lookup(la, touch=False)
                    if line is not None and line.state != MESIState.INVALID:
                        states.append(line.state)
                exclusive = [x for x in states
                             if x in (MESIState.MODIFIED,
                                      MESIState.EXCLUSIVE)]
                assert len(exclusive) <= 1
                if exclusive:
                    assert len(states) == 1

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                    min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_l1_always_subset_of_l2(self, ops):
        m = _sys()
        pc = 0x100
        for core, slot in ops:
            addr = slot * 64
            pc += 4
            m.store(core, addr, pc=pc)
            m.load((core + 1) % 3, addr)
            for caches in m._cores:
                for line in caches.l1.resident_lines():
                    l2_line = caches.l2.lookup(line.addr, touch=False)
                    assert l2_line is not None
