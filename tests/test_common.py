"""Tests for repro.common: rng determinism, errors, table rendering."""

import inspect
import pickle

import pytest

from repro.common import errors as errors_module
from repro.common.errors import (
    CheckpointError,
    ConfigError,
    EngineError,
    FaultInjected,
    JobNotFound,
    ProtocolError,
    ReproError,
    ServiceError,
    SimulatedFailure,
    TraceError,
    WorkerKilled,
)
from repro.common.rng import make_np_rng, make_rng
from repro.common.texttable import render_table


class TestRng:
    def test_same_seed_same_stream_reproduces(self):
        a = make_rng(42, stream=1)
        b = make_rng(42, stream=1)
        assert [a.random() for _ in range(10)] == [b.random()
                                                   for _ in range(10)]

    def test_different_streams_decorrelate(self):
        a = make_rng(42, stream=1)
        b = make_rng(42, stream=2)
        assert [a.random() for _ in range(5)] != [b.random()
                                                  for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_np_rng_reproducible(self):
        a = make_np_rng(7, stream=3).random(4)
        b = make_np_rng(7, stream=3).random(4)
        assert (a == b).all()

    def test_np_rng_streams_differ(self):
        a = make_np_rng(7, stream=3).random(4)
        b = make_np_rng(7, stream=4).random(4)
        assert (a != b).any()


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SimulatedFailure, ReproError)
        assert issubclass(ConfigError, ReproError)
        assert issubclass(TraceError, ReproError)

    def test_simulated_failure_carries_context(self):
        f = SimulatedFailure("boom", tid=2, pc=0x1004)
        assert f.tid == 2
        assert f.pc == 0x1004
        assert "boom" in str(f)

    def test_simulated_failure_is_raisable(self):
        with pytest.raises(SimulatedFailure):
            raise SimulatedFailure("x")


# Every exception type with its context attributes. SimulatedFailure
# once dropped tid/pc across a process-pool boundary because the default
# Exception reduce protocol only re-raises with ``args``; this audit
# pins the fix for every error type in the module.
_ERROR_SAMPLES = [
    (ReproError("plain"), {}),
    (ConfigError("bad config"), {}),
    (TraceError("bad trace"), {}),
    (SimulatedFailure("boom", tid=3, pc=0x40), {"tid": 3, "pc": 0x40}),
    (FaultInjected("injected", site="run_corrupt", key=104),
     {"site": "run_corrupt", "key": 104}),
    (WorkerKilled("died", task_index=7, attempt=2),
     {"task_index": 7, "attempt": 2, "site": "worker_kill",
      "key": (7, 2)}),
    (CheckpointError("corrupt", path="/tmp/ck.json"),
     {"path": "/tmp/ck.json"}),
    (EngineError("unknown engine 'bogus'", engine="bogus",
                 known=("nn", "aviso", "pbi", "pset", "ensemble")),
     {"engine": "bogus",
      "known": ("nn", "aviso", "pbi", "pset", "ensemble")}),
    (ServiceError("daemon unreachable", socket_path="/tmp/repro.sock"),
     {"socket_path": "/tmp/repro.sock"}),
    (JobNotFound("no such job", job_id="j42"), {"job_id": "j42"}),
    (ProtocolError("bad frame", frame="{oops"), {"frame": "{oops"}),
]


class TestErrorPickling:
    @pytest.mark.parametrize(
        "err,attrs", _ERROR_SAMPLES,
        ids=[type(e).__name__ for e, _ in _ERROR_SAMPLES])
    def test_round_trip_keeps_type_message_and_context(self, err, attrs):
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is type(err)
        assert str(back) == str(err)
        for name, value in attrs.items():
            assert getattr(back, name) == value, name

    def test_audit_covers_every_exception_in_module(self):
        covered = {type(e) for e, _ in _ERROR_SAMPLES}
        defined = {
            obj for _name, obj in inspect.getmembers(errors_module,
                                                     inspect.isclass)
            if issubclass(obj, Exception)
            and obj.__module__ == errors_module.__name__
        }
        assert defined <= covered, (
            f"exception types missing a pickle round-trip sample: "
            f"{[c.__name__ for c in defined - covered]}")


class TestTextTable:
    def test_contains_headers_and_cells(self):
        out = render_table(("a", "bb"), [(1, "x"), (22, "yyy")])
        assert "a" in out and "bb" in out
        assert "22" in out and "yyy" in out

    def test_title_line(self):
        out = render_table(("h",), [("v",)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        out = render_table(("col",), [("short",), ("much longer cell",)])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_float_formatting(self):
        out = render_table(("x",), [(1.23456,)])
        assert "1.235" in out

    def test_empty_rows(self):
        out = render_table(("a", "b"), [])
        assert "a" in out
