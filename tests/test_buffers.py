"""Tests for the Input Generator Buffer and Debug Buffer."""

import pytest

from repro.common.errors import ConfigError
from repro.core.buffers import DebugBuffer, DebugEntry, InputGeneratorBuffer
from repro.trace.raw import RawDep


def _dep(i):
    return RawDep(0x100 + 4 * i, 0x200 + 4 * i)


class TestInputGeneratorBuffer:
    def test_warmup_returns_none(self):
        buf = InputGeneratorBuffer(5)
        buf.push(_dep(0))
        assert buf.sequence(3) is None

    def test_sequence_oldest_first(self):
        buf = InputGeneratorBuffer(5)
        for i in range(4):
            buf.push(_dep(i))
        seq = buf.sequence(3)
        assert seq == (_dep(1), _dep(2), _dep(3))

    def test_fifo_drops_oldest(self):
        buf = InputGeneratorBuffer(3)
        for i in range(5):
            buf.push(_dep(i))
        assert buf.sequence(3) == (_dep(2), _dep(3), _dep(4))
        assert len(buf) == 3

    def test_sequence_longer_than_capacity_rejected(self):
        buf = InputGeneratorBuffer(3)
        with pytest.raises(ConfigError):
            buf.sequence(4)

    def test_clear(self):
        buf = InputGeneratorBuffer(3)
        buf.push(_dep(0))
        buf.clear()
        assert len(buf) == 0

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            InputGeneratorBuffer(0)


class TestDebugBuffer:
    def _entry(self, i, output=0.1):
        return DebugEntry(seq=(_dep(i),), output=output, index=i, tid=0)

    def test_keeps_last_n(self):
        buf = DebugBuffer(3)
        for i in range(5):
            buf.log(self._entry(i))
        assert [e.index for e in buf.entries] == [2, 3, 4]

    def test_overflow_flag(self):
        buf = DebugBuffer(2)
        buf.log(self._entry(0))
        assert not buf.overflowed
        buf.log(self._entry(1))
        assert not buf.overflowed
        buf.log(self._entry(2))
        assert buf.overflowed

    def test_total_logged_counts_overwritten(self):
        buf = DebugBuffer(2)
        for i in range(5):
            buf.log(self._entry(i))
        assert buf.total_logged == 5
        assert len(buf) == 2

    def test_position_from_newest(self):
        buf = DebugBuffer(10)
        for i in range(4):
            buf.log(self._entry(i))
        pos = buf.position_from_newest(lambda e: e.index == 3)
        assert pos == 1
        pos = buf.position_from_newest(lambda e: e.index == 0)
        assert pos == 4

    def test_position_none_when_absent(self):
        buf = DebugBuffer(2)
        for i in range(5):
            buf.log(self._entry(i))
        assert buf.position_from_newest(lambda e: e.index == 0) is None

    def test_clear_resets_overflow(self):
        buf = DebugBuffer(1)
        buf.log(self._entry(0))
        buf.log(self._entry(1))
        buf.clear()
        assert not buf.overflowed
        assert buf.total_logged == 0

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            DebugBuffer(0)
