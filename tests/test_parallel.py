"""Serial vs --jobs determinism (repro.parallel).

Parallel orchestration must be invisible in the results: identical
runs, identical trained weights, identical diagnosis reports, identical
telemetry counter totals, identical exceptions.
"""

import os
import pickle

import numpy as np
import pytest

from repro import telemetry
from repro.common.errors import ReproError, SimulatedFailure, WorkerKilled
from repro.core.config import ACTConfig
from repro.core.diagnosis import diagnose_failure
from repro.core.offline import OfflineTrainer, collect_correct_runs
from repro.faults import FaultPlan, Quarantine, use_plan
from repro.parallel import get_pool, resolve_jobs, run_tasks
from repro.workloads.registry import get_bug

_CONFIG = ACTConfig()


def _double(x):  # module-level: must be picklable for the pool
    return 2 * x


def _crash_once_then_double(payload):
    """Genuinely kill the worker process on the first-ever execution.

    The flag file is the cross-process memory: whichever worker runs
    first creates it and dies via ``os._exit`` (no exception, no pickle
    -- the pool just breaks, as a real OOM kill would); every later
    execution finds the flag and computes normally.
    """
    flag, x = payload
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(1)
    return 2 * x


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_explicit_count(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1


class TestRunTasks:
    def test_serial_and_parallel_agree(self):
        items = list(range(7))
        assert (run_tasks(_double, items)
                == run_tasks(_double, items, jobs=2)
                == [2 * i for i in items])

    def test_empty_items(self):
        assert run_tasks(_double, [], jobs=4) == []

    def test_records_pool_telemetry(self):
        with telemetry.use_registry(telemetry.Registry()) as reg:
            run_tasks(_double, [1, 2, 3], jobs=2)
        counters = reg.snapshot()["counters"]
        assert counters["parallel.batches"] == 1
        assert counters["parallel.tasks"] == 3


class TestWorkerDeathRecovery:
    """Injected worker kills: bounded retry, quarantine, determinism."""

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_killed_task_is_retried_transparently(self, jobs):
        plan = FaultPlan(seed=0, kill_tasks=((1, 0),))
        with use_plan(plan):
            with telemetry.use_registry(telemetry.Registry()) as reg:
                results = run_tasks(_double, [0, 1, 2], jobs=jobs)
        assert results == [0, 2, 4]
        counters = reg.snapshot()["counters"]
        assert counters["faults.worker_kills"] == 1
        assert counters["parallel.retries"] == 1

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_exhausted_retries_raise_worker_killed(self, jobs):
        plan = FaultPlan(seed=0, kill_tasks=((1, 0), (1, 1), (1, 2)),
                         max_retries=2)
        with use_plan(plan):
            with pytest.raises(WorkerKilled) as err:
                run_tasks(_double, [0, 1, 2], jobs=jobs)
        assert err.value.task_index == 1
        assert err.value.attempt == 2

    def test_serial_and_parallel_raise_identically(self):
        plan = FaultPlan(seed=0, kill_tasks=((1, 0), (1, 1), (1, 2)),
                         max_retries=2)
        errors = []
        for jobs in (None, 2):
            with use_plan(plan):
                with pytest.raises(WorkerKilled) as err:
                    run_tasks(_double, [0, 1, 2], jobs=jobs)
            errors.append(str(err.value))
        assert errors[0] == errors[1]

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_quarantine_absorbs_exhausted_kills(self, jobs):
        plan = FaultPlan(seed=0, kill_tasks=((1, 0), (1, 1), (1, 2)),
                         max_retries=2)
        quarantine = Quarantine()
        with use_plan(plan):
            results = run_tasks(_double, [0, 1, 2], jobs=jobs,
                                quarantine=quarantine, phase="test")
        assert results == [0, None, 4]
        assert len(quarantine) == 1
        record = quarantine.records[0]
        assert record.phase == "test"
        assert record.key == 1
        assert record.error_type == "WorkerKilled"
        assert record.attempts == 3

    def test_kill_keyed_by_quarantine_key_not_position(self):
        # keys name the units (e.g. run seeds); the kill follows the
        # key, so splitting a batch differently kills the same unit.
        plan = FaultPlan(seed=0, kill_tasks=((104, 0),), max_retries=0)
        quarantine = Quarantine()
        with use_plan(plan):
            whole = run_tasks(_double, [3, 4, 5], quarantine=quarantine,
                              keys=[103, 104, 105], phase="test")
            split = [run_tasks(_double, [x], quarantine=quarantine,
                               keys=[k], phase="test")[0]
                     for k, x in [(103, 3), (104, 4), (105, 5)]]
        assert whole == split == [6, None, 10]
        assert quarantine.keys() == [104, 104]

    def test_real_worker_crash_restarts_pool(self, tmp_path):
        flag = str(tmp_path / "crashed")
        payloads = [(flag, x) for x in range(3)]
        with telemetry.use_registry(telemetry.Registry()) as reg:
            results = run_tasks(_crash_once_then_double, payloads, jobs=2)
        assert results == [0, 2, 4]
        counters = reg.snapshot()["counters"]
        assert counters["parallel.pool_restarts"] >= 1
        assert counters["faults.worker_kills"] >= 1

    def test_keys_must_match_items(self):
        with pytest.raises(ReproError):
            run_tasks(_double, [1, 2], keys=[1])

    def test_backoff_sleeps_are_bounded(self):
        import time

        plan = FaultPlan(seed=0, kill_tasks=((0, 0),), max_retries=1,
                         retry_backoff=0.01)
        t0 = time.time()
        with use_plan(plan):
            assert run_tasks(_double, [5]) == [10]
        assert 0.01 <= time.time() - t0 < 1.0


def _tree_is_coherent(span, parent_id=None):
    """Every span's parent pointer matches its position in the tree."""
    if parent_id is not None and span.get("parent") != parent_id:
        return False
    return all(_tree_is_coherent(c, span["id"])
               for c in span.get("children", []))


class TestSpanStitching:
    """Tracing v2: worker spans land under the coordinator's span."""

    def _dispatch(self, jobs, plan=None, quarantine=None):
        reg = telemetry.Registry(clock=telemetry.TickClock())
        reg.attach_recorder(telemetry.FlightRecorder())
        with use_plan(plan or FaultPlan()):
            with telemetry.use_registry(reg):
                with reg.span("dispatch"):
                    results = run_tasks(_double, [0, 1, 2], jobs=jobs,
                                        quarantine=quarantine, phase="test")
        return reg, results

    def test_worker_spans_parent_under_dispatch(self):
        reg, results = self._dispatch(jobs=2)
        assert results == [0, 2, 4]
        (root,) = reg.snapshot()["spans"]
        tasks = [c for c in root["children"]
                 if c["name"] == "parallel.task"]
        assert sorted(t["id"] for t in tasks) == [
            "b1.w0.s1", "b1.w1.s1", "b1.w2.s1"]
        assert all(t["parent"] == root["id"] for t in tasks)
        assert _tree_is_coherent(root)

    def test_trace_tree_identical_across_reruns(self):
        first, _ = self._dispatch(jobs=2)
        second, _ = self._dispatch(jobs=2)
        assert first.snapshot()["spans"] == second.snapshot()["spans"]
        assert first.recorder.events() == second.recorder.events()

    def test_serial_records_the_same_task_spans(self):
        reg, _ = self._dispatch(jobs=None)
        (root,) = reg.snapshot()["spans"]
        names = [c["name"] for c in root["children"]]
        assert names == ["parallel.task"] * 3

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_killed_worker_leaves_orphaned_span(self, jobs):
        # Task key 1 dies on every attempt; the tree must still be
        # coherent, with the lost task flagged at its dispatch site.
        plan = FaultPlan(seed=0, kill_tasks=((1, 0), (1, 1), (1, 2)),
                         max_retries=2)
        quarantine = Quarantine()
        reg, results = self._dispatch(jobs=jobs, plan=plan,
                                      quarantine=quarantine)
        assert results == [0, None, 4]
        (root,) = reg.snapshot()["spans"]
        assert _tree_is_coherent(root)
        tasks = [c for c in root["children"]
                 if c["name"] == "parallel.task"]
        orphans = [t for t in tasks if t.get("status") == "orphaned"]
        assert len(orphans) == 1
        assert orphans[0]["attrs"]["key"] == 1
        assert orphans[0]["duration_s"] == 0.0
        survivors = [t for t in tasks if t.get("status") != "orphaned"]
        assert len(survivors) == 2
        events = reg.recorder.events()
        assert [e for e in events if e["type"] == "task_orphaned"
                and e["key"] == 1]
        assert [e for e in events if e["type"] == "quarantine"]

    def test_batches_get_distinct_scopes(self):
        reg = telemetry.Registry(clock=telemetry.TickClock())
        with telemetry.use_registry(reg):
            with reg.span("dispatch"):
                run_tasks(_double, [0, 1], jobs=2)
                run_tasks(_double, [0, 1], jobs=2)
        (root,) = reg.snapshot()["spans"]
        ids = sorted(c["id"] for c in root["children"]
                     if c["name"] == "parallel.task")
        assert ids == ["b1.w0.s1", "b1.w1.s1", "b2.w0.s1", "b2.w1.s1"]


class TestSimulatedFailurePickle:
    def test_roundtrip_keeps_context(self):
        err = SimulatedFailure("boom", tid=3, pc=0x40)
        back = pickle.loads(pickle.dumps(err))
        assert back.description == "boom"
        assert back.tid == 3
        assert back.pc == 0x40


class TestCollectRuns:
    def test_parallel_runs_identical(self):
        program = get_bug("gzip")
        serial = collect_correct_runs(program, 5, seed0=0, buggy=False)
        parallel = collect_correct_runs(program, 5, seed0=0, jobs=2,
                                        buggy=False)
        assert [r.seed for r in serial] == [r.seed for r in parallel]
        for a, b in zip(serial, parallel):
            assert a.events == b.events

    def test_parallel_failure_matches_serial(self):
        program = get_bug("gzip")
        with pytest.raises(ReproError) as serial_err:
            collect_correct_runs(program, 3, seed0=12345, buggy=True)
        with pytest.raises(ReproError) as parallel_err:
            collect_correct_runs(program, 3, seed0=12345, jobs=2,
                                 buggy=True)
        assert str(serial_err.value) == str(parallel_err.value)

    def test_telemetry_totals_match(self):
        program = get_bug("gzip")
        with telemetry.use_registry(telemetry.Registry()) as ser_reg:
            collect_correct_runs(program, 4, seed0=0, buggy=False)
        with telemetry.use_registry(telemetry.Registry()) as par_reg:
            collect_correct_runs(program, 4, seed0=0, jobs=2, buggy=False)
        ser = ser_reg.snapshot()
        par = par_reg.snapshot()
        for key, value in ser["counters"].items():
            if key.startswith("parallel."):
                continue
            assert par["counters"][key] == value, key
        for key, value in ser["histograms"].items():
            assert par["histograms"][key] == value, key


class TestTrainingAndDiagnosis:
    def test_per_thread_training_identical(self):
        program = get_bug("gzip")
        runs = collect_correct_runs(program, 4, seed0=0, buggy=False)
        trainer = OfflineTrainer(config=_CONFIG)
        serial = trainer.train(runs=runs, pool_threads=False)
        parallel = trainer.train(runs=runs, pool_threads=False, jobs=2)
        assert set(serial.weights) == set(parallel.weights)
        for tid in serial.weights:
            assert np.array_equal(serial.weights[tid],
                                  parallel.weights[tid])
        assert np.array_equal(serial.default_weights,
                              parallel.default_weights)

    def test_topology_search_identical(self):
        program = get_bug("gzip")
        runs = collect_correct_runs(program, 5, seed0=0, buggy=False)
        trainer = OfflineTrainer(config=_CONFIG)
        best_s, choices_s, _ = trainer.search(
            train_runs=runs[:3], test_runs=runs[3:],
            seq_lens=(2, 3), hidden_widths=(2, 4))
        best_p, choices_p, _ = trainer.search(
            train_runs=runs[:3], test_runs=runs[3:],
            seq_lens=(2, 3), hidden_widths=(2, 4), jobs=2)
        assert (best_s.seq_len, best_s.n_hidden) == (best_p.seq_len,
                                                     best_p.n_hidden)
        assert len(choices_s) == len(choices_p)
        for a, b in zip(choices_s, choices_p):
            assert (a.seq_len, a.n_hidden, a.mispred_rate) == (
                b.seq_len, b.n_hidden, b.mispred_rate)
            assert np.array_equal(a.result.net.read_weights(),
                                  b.result.net.read_weights())

    def test_diagnosis_report_identical(self):
        program = get_bug("gzip")
        kwargs = dict(config=_CONFIG, n_train_runs=4, n_pruning_runs=6)
        serial = diagnose_failure(program, **kwargs)
        parallel = diagnose_failure(program, jobs=2, **kwargs)
        assert serial == parallel


def _encode_triple(x):
    return ("wire", x)


def _decode_triple(payload):
    tag, x = payload
    assert tag == "wire"
    return x


class TestWarmPool:
    """The process-wide pool is created once and reused across batches."""

    def test_get_pool_is_a_singleton(self):
        assert get_pool() is get_pool()

    def test_executor_reused_across_batches(self):
        pool = get_pool()
        run_tasks(_double, [1, 2, 3], jobs=2)
        first = pool._executor
        run_tasks(_double, [4, 5, 6], jobs=2)
        assert pool._executor is first

    def test_pool_grows_but_never_shrinks(self):
        pool = get_pool()
        pool.shutdown()  # earlier tests may have grown the shared pool
        pool.executor(2)
        grown = pool.executor(3)
        assert pool.max_workers == 3
        assert pool.executor(2) is grown
        assert pool.max_workers == 3

    def test_shutdown_then_reuse_spawns_fresh_pool(self):
        pool = get_pool()
        run_tasks(_double, [1], jobs=2)
        pool.shutdown()
        assert run_tasks(_double, [7, 8], jobs=2) == [14, 16]

    def test_warm_round_trips_every_worker(self):
        pool = get_pool()
        pool.warm(2)
        assert pool.max_workers >= 2
        assert run_tasks(_double, [3], jobs=2) == [6]

    def test_codec_round_trips_results(self):
        items = list(range(5))
        expected = [2 * i for i in items]
        assert run_tasks(_double, items, jobs=2,
                         codec=(_encode_triple, _decode_triple)) == expected
        # Serial path never encodes: results are the raw values.
        assert run_tasks(_double, items,
                         codec=(_encode_triple, _decode_triple)) == expected

    def test_two_consecutive_diagnoses_identical_to_serial(self):
        # Warm-pool reuse determinism: the second --jobs diagnosis runs
        # on the already-warm pool and must still match serial exactly.
        program = get_bug("gzip")
        kwargs = dict(config=_CONFIG, n_train_runs=3, n_pruning_runs=4)
        serial = diagnose_failure(program, **kwargs)
        first = diagnose_failure(program, jobs=2, **kwargs)
        second = diagnose_failure(program, jobs=2, **kwargs)
        assert first == serial
        assert second == serial

    def test_pool_survives_a_crash_and_stays_warm(self, tmp_path):
        flag = str(tmp_path / "crashed")
        payloads = [(flag, x) for x in range(3)]
        assert run_tasks(_crash_once_then_double, payloads, jobs=2) \
            == [0, 2, 4]
        pool = get_pool()
        restarted = pool._executor
        assert run_tasks(_double, [9], jobs=2) == [18]
        assert pool._executor is restarted
