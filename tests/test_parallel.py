"""Serial vs --jobs determinism (repro.parallel).

Parallel orchestration must be invisible in the results: identical
runs, identical trained weights, identical diagnosis reports, identical
telemetry counter totals, identical exceptions.
"""

import pickle

import numpy as np
import pytest

from repro import telemetry
from repro.common.errors import ReproError, SimulatedFailure
from repro.core.config import ACTConfig
from repro.core.diagnosis import diagnose_failure
from repro.core.offline import OfflineTrainer, collect_correct_runs
from repro.parallel import resolve_jobs, run_tasks
from repro.workloads.registry import get_bug

_CONFIG = ACTConfig()


def _double(x):  # module-level: must be picklable for the pool
    return 2 * x


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_explicit_count(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1


class TestRunTasks:
    def test_serial_and_parallel_agree(self):
        items = list(range(7))
        assert (run_tasks(_double, items)
                == run_tasks(_double, items, jobs=2)
                == [2 * i for i in items])

    def test_empty_items(self):
        assert run_tasks(_double, [], jobs=4) == []

    def test_records_pool_telemetry(self):
        with telemetry.use_registry(telemetry.Registry()) as reg:
            run_tasks(_double, [1, 2, 3], jobs=2)
        counters = reg.snapshot()["counters"]
        assert counters["parallel.batches"] == 1
        assert counters["parallel.tasks"] == 3


class TestSimulatedFailurePickle:
    def test_roundtrip_keeps_context(self):
        err = SimulatedFailure("boom", tid=3, pc=0x40)
        back = pickle.loads(pickle.dumps(err))
        assert back.description == "boom"
        assert back.tid == 3
        assert back.pc == 0x40


class TestCollectRuns:
    def test_parallel_runs_identical(self):
        program = get_bug("gzip")
        serial = collect_correct_runs(program, 5, seed0=0, buggy=False)
        parallel = collect_correct_runs(program, 5, seed0=0, jobs=2,
                                        buggy=False)
        assert [r.seed for r in serial] == [r.seed for r in parallel]
        for a, b in zip(serial, parallel):
            assert a.events == b.events

    def test_parallel_failure_matches_serial(self):
        program = get_bug("gzip")
        with pytest.raises(ReproError) as serial_err:
            collect_correct_runs(program, 3, seed0=12345, buggy=True)
        with pytest.raises(ReproError) as parallel_err:
            collect_correct_runs(program, 3, seed0=12345, jobs=2,
                                 buggy=True)
        assert str(serial_err.value) == str(parallel_err.value)

    def test_telemetry_totals_match(self):
        program = get_bug("gzip")
        with telemetry.use_registry(telemetry.Registry()) as ser_reg:
            collect_correct_runs(program, 4, seed0=0, buggy=False)
        with telemetry.use_registry(telemetry.Registry()) as par_reg:
            collect_correct_runs(program, 4, seed0=0, jobs=2, buggy=False)
        ser = ser_reg.snapshot()
        par = par_reg.snapshot()
        for key, value in ser["counters"].items():
            if key.startswith("parallel."):
                continue
            assert par["counters"][key] == value, key
        for key, value in ser["histograms"].items():
            assert par["histograms"][key] == value, key


class TestTrainingAndDiagnosis:
    def test_per_thread_training_identical(self):
        program = get_bug("gzip")
        runs = collect_correct_runs(program, 4, seed0=0, buggy=False)
        trainer = OfflineTrainer(config=_CONFIG)
        serial = trainer.train(runs=runs, pool_threads=False)
        parallel = trainer.train(runs=runs, pool_threads=False, jobs=2)
        assert set(serial.weights) == set(parallel.weights)
        for tid in serial.weights:
            assert np.array_equal(serial.weights[tid],
                                  parallel.weights[tid])
        assert np.array_equal(serial.default_weights,
                              parallel.default_weights)

    def test_topology_search_identical(self):
        program = get_bug("gzip")
        runs = collect_correct_runs(program, 5, seed0=0, buggy=False)
        trainer = OfflineTrainer(config=_CONFIG)
        best_s, choices_s, _ = trainer.search(
            train_runs=runs[:3], test_runs=runs[3:],
            seq_lens=(2, 3), hidden_widths=(2, 4))
        best_p, choices_p, _ = trainer.search(
            train_runs=runs[:3], test_runs=runs[3:],
            seq_lens=(2, 3), hidden_widths=(2, 4), jobs=2)
        assert (best_s.seq_len, best_s.n_hidden) == (best_p.seq_len,
                                                     best_p.n_hidden)
        assert len(choices_s) == len(choices_p)
        for a, b in zip(choices_s, choices_p):
            assert (a.seq_len, a.n_hidden, a.mispred_rate) == (
                b.seq_len, b.n_hidden, b.mispred_rate)
            assert np.array_equal(a.result.net.read_weights(),
                                  b.result.net.read_weights())

    def test_diagnosis_report_identical(self):
        program = get_bug("gzip")
        kwargs = dict(config=_CONFIG, n_train_runs=4, n_pruning_runs=6)
        serial = diagnose_failure(program, **kwargs)
        parallel = diagnose_failure(program, jobs=2, **kwargs)
        assert serial == parallel
