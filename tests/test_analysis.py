"""Tests for the experiment harness (FAST preset)."""

import pytest

from repro.analysis.presets import FAST, FULL


class TestPresets:
    def test_full_covers_paper_protocol(self):
        assert FULL.n_train_traces == 10
        assert FULL.n_test_traces == 10
        assert FULL.seq_lens == (1, 2, 3, 4, 5)
        assert len(FULL.hidden_widths) == 10
        assert FULL.muladd_sweep == (1, 2, 5, 10)
        assert FULL.fifo_sweep == (4, 8, 16)
        assert FULL.core_sweep == (4, 8, 16)

    def test_fast_is_reduced(self):
        assert FAST.n_train_traces < FULL.n_train_traces
        assert len(FAST.table4_programs) < len(FULL.table4_programs)


class TestTable1:
    def test_static_table(self):
        from repro.analysis.table1 import format_table1, run_table1
        rows = run_table1()
        assert ("ACT", "yes", "yes", "yes") in rows
        out = format_table1()
        assert "ACT" in out and "PSet" in out


@pytest.mark.slow
class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.analysis.table4 import run_table4
        return run_table4(FAST)

    def test_row_per_program(self, rows):
        assert {r.program for r in rows} == set(FAST.table4_programs)

    def test_topology_within_bounds(self, rows):
        for r in rows:
            i, h, o = map(int, r.topology.split("-"))
            assert 1 <= i <= 10 and 1 <= h <= 10 and o == 1

    def test_misprediction_rates_sane(self, rows):
        for r in rows:
            assert 0.0 <= r.mispred_pct <= 100.0
        avg = sum(r.mispred_pct for r in rows) / len(rows)
        assert avg < 20.0  # shape: low false-positive rates

    def test_format(self, rows):
        from repro.analysis.table4 import format_table4
        out = format_table4(rows)
        assert "Average" in out


@pytest.mark.slow
class TestFig7a:
    def test_false_negative_rates(self):
        from repro.analysis.fig7a import format_fig7a, run_fig7a
        points = run_fig7a(FAST)
        assert points
        for p in points:
            assert 0.0 <= p.false_negative_pct <= 100.0
        assert "average" in format_fig7a(points)


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.analysis.table5 import run_table5
        return run_table5(FAST, bugs=["mysql2", "gzip"])

    def test_act_diagnoses_both(self, rows):
        for r in rows:
            assert r.act_rank is not None
            assert r.act_rank <= 5

    def test_aviso_inapplicable_for_sequential(self, rows):
        by_bug = {r.bug: r for r in rows}
        assert not by_bug["gzip"].aviso_applicable
        assert by_bug["mysql2"].aviso_applicable

    def test_format(self, rows):
        from repro.analysis.table5 import format_table5
        out = format_table5(rows)
        assert "mysql2" in out and "n/a (sequential)" in out


@pytest.mark.slow
class TestTable6:
    def test_injected_bugs_found_and_filtered(self):
        from repro.analysis.table6 import format_table6, run_table6
        rows = run_table6(FAST)
        assert len(rows) == 5
        found = [r for r in rows if r.found]
        assert len(found) >= 4  # shape: injected bugs are diagnosable
        for r in found:
            assert r.rank <= 5
        # new-code pruning does real work
        assert max(r.filter_pct for r in rows) > 30.0
        assert "TouchArray" in format_table6(rows)


class TestFig7b:
    def test_adaptivity_beats_pset(self):
        from repro.analysis.fig7b import format_fig7b, run_fig7b
        points = run_fig7b(FAST)
        assert points
        for p in points:
            assert p.incorrect_pct <= p.pset_violation_pct
        assert "average" in format_fig7b(points)


@pytest.mark.slow
class TestOverhead:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.analysis.overhead import run_overhead
        return run_overhead(FAST)

    def test_default_overhead_moderate(self, study):
        assert 0.0 <= study.avg_default_pct < 60.0

    def test_muladd_monotone(self, study):
        xs = sorted(study.muladd_sweep)
        vals = [study.muladd_sweep[x] for x in xs]
        assert vals[0] >= vals[-1]  # more units -> less overhead

    def test_fifo_monotone(self, study):
        fs = sorted(study.fifo_sweep)
        vals = [study.fifo_sweep[f] for f in fs]
        assert vals[0] >= vals[-1]  # deeper FIFO -> less overhead

    def test_format(self, study):
        from repro.analysis.overhead import format_overhead
        out = format_overhead(study)
        assert "Average" in out and "multiply-add" in out


@pytest.mark.slow
class TestFalseSharing:
    def test_line_granularity_effects(self):
        from repro.analysis.false_sharing import (
            format_false_sharing,
            run_false_sharing,
        )
        rows = run_false_sharing(FAST, programs=("lu", "fft"))
        assert rows
        word_rows = [r for r in rows if r.word_granularity]
        line_rows = [r for r in rows if not r.word_granularity]
        # word granularity attributes everything correctly
        for r in word_rows:
            assert r.wrong_writer_pct == 0.0
        # line granularity introduces some aliasing
        assert any(r.wrong_writer_pct > 0 for r in line_rows)
        assert "LW gran." in format_false_sharing(rows)


class TestNNDesign:
    def test_act_always_faster(self):
        from repro.analysis.nn_design import format_nn_design, run_nn_design
        rows = run_nn_design(FULL)
        assert len(rows) == 4
        for r in rows:
            assert r.act_test_interval < r.mux_test_interval
            assert r.throughput_advantage > 1.0
        assert "Mux lat" in format_nn_design(rows)


class TestAdaptationCurve:
    def test_rate_decays_across_runs(self):
        from repro.analysis.adaptation import (
            format_adaptation,
            run_adaptation,
        )
        curve = run_adaptation(kernel="fft", n_executions=3, n_train=5)
        assert len(curve.runs) == 3
        assert curve.last_rate <= max(curve.first_rate, 0.05)
        for r in curve.runs:
            assert 0 <= r.flagged <= r.predictions
        out = format_adaptation(curve)
        assert "fft" in out and "Mode switches" in out
