"""Tests for the NN pipeline timing model and the time-mux baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.nn.pipeline import ACTPipelineModel, NeuronTiming
from repro.nn.timemux import TimeMultiplexedModel, compare_designs


class TestNeuronTiming:
    def test_latency_formula(self):
        # ceil(10/2)*1 + 2 = 7
        assert NeuronTiming(muladd_units=2).neuron_latency() == 7
        assert NeuronTiming(muladd_units=1).neuron_latency() == 12
        assert NeuronTiming(muladd_units=5).neuron_latency() == 4
        assert NeuronTiming(muladd_units=10).neuron_latency() == 3

    def test_more_units_never_slower(self):
        lats = [NeuronTiming(muladd_units=x).neuron_latency()
                for x in (1, 2, 5, 10)]
        assert lats == sorted(lats, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigError):
            NeuronTiming(muladd_units=0)
        with pytest.raises(ConfigError):
            NeuronTiming(muladd_units=11)


class TestPipelineModel:
    def test_accepts_when_empty(self):
        pipe = ACTPipelineModel(fifo_depth=4)
        accepted, retry = pipe.offer(0)
        assert accepted and retry == 0

    def test_training_interval_is_4t(self):
        pipe = ACTPipelineModel()
        assert pipe.service_interval(training=True) == \
            4 * pipe.service_interval(training=False)

    def test_back_to_back_fills_fifo(self):
        pipe = ACTPipelineModel(fifo_depth=2)
        t = pipe.latency
        # one in service + 2 queued = full at cycle 0
        assert pipe.offer(0)[0]
        assert pipe.offer(0)[0]
        assert pipe.offer(0)[0]
        accepted, retry = pipe.offer(0)
        assert not accepted
        assert retry > 0

    def test_retry_cycle_frees_slot(self):
        pipe = ACTPipelineModel(fifo_depth=1)
        assert pipe.offer(0)[0]
        assert pipe.offer(0)[0]
        accepted, retry = pipe.offer(0)
        assert not accepted
        accepted2, _ = pipe.offer(retry)
        assert accepted2

    def test_slow_arrivals_never_stall(self):
        pipe = ACTPipelineModel(fifo_depth=1)
        t = pipe.service_interval(False)
        cycle = 0
        for _ in range(20):
            accepted, _ = pipe.offer(cycle)
            assert accepted
            cycle += t + 1

    def test_counters(self):
        pipe = ACTPipelineModel(fifo_depth=1)
        pipe.offer(0)
        pipe.offer(0)
        pipe.offer(0)  # rejected
        assert pipe.accepted == 2
        assert pipe.rejected == 1

    def test_reset(self):
        pipe = ACTPipelineModel(fifo_depth=1)
        pipe.offer(0)
        pipe.reset()
        assert pipe.accepted == 0
        assert pipe.offer(0)[0]

    def test_completion_after_three_stages(self):
        pipe = ACTPipelineModel()
        pipe.offer(10)
        assert pipe.completion_cycle() == 10 + 1 + 2 * pipe.latency

    def test_fifo_depth_validation(self):
        with pytest.raises(ConfigError):
            ACTPipelineModel(fifo_depth=0)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=60),
           st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_depth(self, gaps, depth):
        pipe = ACTPipelineModel(fifo_depth=depth)
        cycle = 0
        for gap in gaps:
            cycle += gap
            accepted, retry = pipe.offer(cycle)
            if not accepted:
                cycle = retry
                accepted2, _ = pipe.offer(cycle)
                assert accepted2
            assert pipe.occupancy(cycle) <= depth


class TestTimeMux:
    def test_rounds(self):
        mux = TimeMultiplexedModel(n_pe=8)
        assert mux.rounds(8) == 2   # one hidden round + output
        assert mux.rounds(10) == 3

    def test_latency_grows_with_hidden(self):
        mux = TimeMultiplexedModel(n_pe=8)
        assert mux.input_latency(10) > mux.input_latency(4)

    def test_no_pipelining(self):
        mux = TimeMultiplexedModel()
        assert mux.steady_state_interval(10) == mux.input_latency(10)

    def test_throughput_inverse_of_interval(self):
        mux = TimeMultiplexedModel()
        assert mux.throughput(10) == pytest.approx(
            1.0 / mux.steady_state_interval(10))

    def test_act_beats_mux_on_throughput(self):
        for x in (1, 2, 5, 10):
            metrics = compare_designs(NeuronTiming(muladd_units=x))
            assert metrics["act_test_interval"] < metrics["mux_test_interval"]

    def test_compare_designs_keys(self):
        m = compare_designs()
        assert {"act_input_latency", "mux_input_latency",
                "act_train_interval", "mux_train_interval"} <= set(m)
