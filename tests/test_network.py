"""Tests for the one-hidden-layer network and sigmoid table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.nn.network import OneHiddenLayerNet, SigmoidTable


class TestSigmoidTable:
    def test_matches_exact_sigmoid(self):
        table = SigmoidTable(resolution=4096)
        xs = np.linspace(-7.5, 7.5, 101)
        exact = 1.0 / (1.0 + np.exp(-xs))
        assert np.max(np.abs(table(xs) - exact)) < 1e-2

    def test_saturates_outside_clip(self):
        table = SigmoidTable(clip=8.0)
        assert table(100.0) == pytest.approx(1.0, abs=1e-3)
        assert table(-100.0) == pytest.approx(0.0, abs=1e-3)

    def test_midpoint(self):
        table = SigmoidTable(resolution=4097)
        assert float(table(0.0)) == pytest.approx(0.5, abs=1e-3)

    def test_resolution_validation(self):
        with pytest.raises(ConfigError):
            SigmoidTable(resolution=1)

    def test_vectorised(self):
        table = SigmoidTable()
        out = table(np.zeros((3, 4)))
        assert out.shape == (3, 4)


class TestNetworkStructure:
    def test_input_bounds_enforced(self):
        with pytest.raises(ConfigError):
            OneHiddenLayerNet(11, 5)
        with pytest.raises(ConfigError):
            OneHiddenLayerNet(0, 5)
        with pytest.raises(ConfigError):
            OneHiddenLayerNet(5, 11)

    def test_weight_register_count(self):
        net = OneHiddenLayerNet(4, 3)
        # hidden: 3 x (4+1), output: 3+1
        assert net.n_weight_registers == 15 + 4

    def test_weight_roundtrip(self):
        net = OneHiddenLayerNet(4, 3, seed=1)
        flat = net.read_weights()
        net2 = OneHiddenLayerNet(4, 3, seed=2)
        net2.write_weights(flat)
        x = np.ones(4) * 0.3
        assert net.output(x) == pytest.approx(net2.output(x))

    def test_write_weights_size_checked(self):
        net = OneHiddenLayerNet(4, 3)
        with pytest.raises(ConfigError):
            net.write_weights(np.zeros(7))

    def test_clone_independent(self):
        net = OneHiddenLayerNet(4, 3, seed=1)
        clone = net.clone()
        x = np.full(4, 0.2)
        before = clone.output(x)
        net.train_example(x, 1.0, lr=0.5)
        assert clone.output(x) == pytest.approx(before)

    def test_read_weights_returns_copy(self):
        net = OneHiddenLayerNet(2, 2, seed=0)
        flat = net.read_weights()
        flat[:] = 0
        assert net.read_weights().any()


class TestInference:
    def test_output_in_unit_interval(self):
        net = OneHiddenLayerNet(6, 4, seed=3)
        for _ in range(10):
            x = np.random.default_rng(1).random(6)
            assert 0.0 <= net.output(x) <= 1.0

    def test_margin_sign_convention(self):
        net = OneHiddenLayerNet(2, 2, seed=0)
        x = np.zeros(2)
        o = net.output(x)
        assert net.margin(x) == pytest.approx(o - 0.5)
        assert net.predict_valid(x) == (o >= 0.5)

    def test_predict_batch_matches_forward(self):
        net = OneHiddenLayerNet(4, 5, seed=9)
        xs = np.random.default_rng(2).random((8, 4))
        batch = net.predict_batch(xs)
        single = np.array([net.output(x) for x in xs])
        assert np.allclose(batch, single)

    def test_predict_batch_requires_2d(self):
        net = OneHiddenLayerNet(4, 5)
        with pytest.raises(ConfigError):
            net.predict_batch(np.zeros(4))

    @given(st.lists(st.floats(-1, 1), min_size=4, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_output_bounded_for_any_input(self, vals):
        net = OneHiddenLayerNet(4, 4, seed=5)
        out = net.output(np.array(vals))
        assert 0.0 <= out <= 1.0


class TestLearning:
    def test_train_example_moves_output_toward_target(self):
        net = OneHiddenLayerNet(3, 4, seed=2)
        x = np.array([0.3, 0.6, 0.9])
        before = net.output(x)
        for _ in range(50):
            net.train_example(x, 0.9, lr=0.5)
        after = net.output(x)
        assert abs(after - 0.9) < abs(before - 0.9)

    def test_train_toward_invalid(self):
        net = OneHiddenLayerNet(3, 4, seed=2)
        x = np.array([0.5, 0.1, 0.8])
        for _ in range(100):
            net.train_example(x, 0.1, lr=0.5)
        assert net.output(x) < 0.5

    def test_can_separate_two_points(self):
        net = OneHiddenLayerNet(2, 4, seed=4)
        a = np.array([0.2, 0.2])
        b = np.array([0.8, 0.8])
        for _ in range(300):
            net.train_example(a, 0.9, lr=0.5)
            net.train_example(b, 0.1, lr=0.5)
        assert net.predict_valid(a)
        assert not net.predict_valid(b)

    def test_train_returns_pre_update_output(self):
        net = OneHiddenLayerNet(2, 2, seed=1)
        x = np.array([0.4, 0.4])
        before = net.output(x)
        returned = net.train_example(x, 0.9, lr=0.2)
        assert returned == pytest.approx(before)


class TestCrossEntropyRule:
    def test_escapes_saturation(self):
        """The plain sigmoid rule stalls on a confidently-wrong
        prediction; the cross-entropy rule does not."""
        net = OneHiddenLayerNet(2, 3, seed=1)
        x = np.array([0.4, 0.6])
        # saturate the network toward "valid"
        for _ in range(2000):
            net.train_example(x, 0.999, lr=1.0)
        assert net.output(x) > 0.98
        stuck = net.clone()
        for _ in range(200):
            stuck.train_example(x, 0.1, lr=0.2)
        for _ in range(200):
            net.train_example_ce(x, 0.1, lr=0.2)
        assert net.output(x) < 0.5
        assert net.output(x) < stuck.output(x)

    def test_returns_pre_update_output(self):
        net = OneHiddenLayerNet(2, 2, seed=3)
        x = np.array([0.2, 0.8])
        before = net.output(x)
        assert net.train_example_ce(x, 0.1, lr=0.1) == pytest.approx(before)


class TestPredictBatchExact:
    def test_matches_scalar_output_bitwise(self):
        net = OneHiddenLayerNet(6, 5, seed=3)
        rng = np.random.default_rng(11)
        xs = rng.uniform(-1.0, 1.0, size=(257, 6))
        out, n_risky = net.predict_batch_exact(xs)
        ref = np.array([net.output(x) for x in xs])
        assert np.array_equal(out, ref)
        assert 0 <= n_risky <= len(xs)

    def test_risky_rows_recomputed(self):
        # Force a pre-activation exactly onto a table rounding boundary:
        # the guard band must flag it and fall back to the scalar kernel.
        net = OneHiddenLayerNet(2, 2, seed=0)
        table = net.sigmoid
        # Solve for an h_in landing exactly between two table indices.
        boundary_x = (-table.clip
                      + (2 * table.clip) * 100.5 / (table.resolution - 1))
        assert table.boundary_risk(np.array([boundary_x]))[0]
        assert not table.boundary_risk(np.array([0.1]))[0]

    def test_rejects_1d(self):
        net = OneHiddenLayerNet(2, 2, seed=0)
        with pytest.raises(ConfigError):
            net.predict_batch_exact(np.zeros(2))

    def test_empty_batch(self):
        net = OneHiddenLayerNet(4, 3, seed=1)
        out, n_risky = net.predict_batch_exact(np.empty((0, 4)))
        assert out.shape == (0,)
        assert n_risky == 0
