"""Tests for the corpus accuracy harness.

Three layers: metric math on synthetic records (fast unit tests),
byte-level golden-file regression on a small fixed-seed corpus, and the
seed-determinism audit (serial vs ``--jobs 4`` vs a second invocation
in the same process). The full 20-program acceptance corpus is marked
``corpus`` and runs only with ``--run-corpus``.
"""

import json
import pathlib

import pytest

from repro.analysis.accuracy import (
    CorpusSpec,
    corpus_metrics,
    corpus_programs,
    format_corpus,
    metrics_json,
    run_corpus,
)
from repro.faults import FaultPlan, Quarantine

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

# Small enough for tier-1, large enough to cover four archetypes.
SMALL = CorpusSpec(seed=3, size=4, n_train_runs=4, n_pruning_runs=6)


@pytest.fixture(scope="session")
def small_corpus():
    return run_corpus(SMALL)


def record(archetype="order", motif="regular", found=True, rank=1,
           n_findings=3, hits=(1, 0, 0), status=None, failed=True):
    return {
        "program": f"gen-{archetype}-{motif}-s1", "seed": 1,
        "archetype": archetype, "motif": motif,
        "status": status or ("diagnosed" if found else "missed"),
        "failed": failed, "found": found, "rank": rank,
        "n_findings": n_findings, "finding_hits": list(hits),
        "debug_buffer_position": rank, "debug_overflowed": False,
        "filter_pct": 50.0, "n_deps": 10, "n_invalid": 1,
    }


class TestMetricMath:
    def test_overall_counts(self):
        records = [record(rank=1), record(rank=3),
                   record(found=False, rank=None, hits=(0, 0, 0))]
        m = corpus_metrics(SMALL, records)["overall"]
        assert m["n_programs"] == 3
        assert m["n_found"] == 2
        assert m["recall"] == pytest.approx(2 / 3)
        assert m["top1"] == pytest.approx(1 / 3)
        assert m["top5"] == pytest.approx(2 / 3)
        assert m["mean_rank"] == pytest.approx(2.0)
        assert m["median_rank"] == pytest.approx(2.0)
        assert m["precision_at_k"] == pytest.approx(2 / 9)

    def test_rank_beyond_k_counts_for_recall_not_topk(self):
        m = corpus_metrics(SMALL, [record(rank=9)])["overall"]
        assert m["recall"] == 1.0
        assert m["top1"] == 0.0
        assert m["top5"] == 0.0

    def test_quarantined_scores_as_miss(self):
        records = [record(),
                   record(archetype="atomicity", found=False, rank=None,
                          n_findings=0, hits=(), status="quarantined",
                          failed=False)]
        m = corpus_metrics(SMALL, records)
        assert m["overall"]["n_quarantined"] == 1
        assert m["overall"]["recall"] == pytest.approx(0.5)
        assert m["by_archetype"]["atomicity"]["recall"] == 0.0

    def test_empty_group_yields_none_not_crash(self):
        records = [record(found=False, rank=None, n_findings=0, hits=())]
        m = corpus_metrics(SMALL, records)["overall"]
        assert m["mean_rank"] is None
        assert m["median_rank"] is None
        assert m["precision_at_k"] is None

    def test_per_archetype_and_motif_partitions(self):
        records = [record(archetype="order", motif="regular"),
                   record(archetype="off_by_one", motif="pipeline",
                          found=False, rank=None, hits=(0, 0, 0))]
        m = corpus_metrics(SMALL, records)
        assert set(m["by_archetype"]) == {"order", "off_by_one"}
        assert set(m["by_motif"]) == {"regular", "pipeline"}
        assert m["by_archetype"]["order"]["recall"] == 1.0
        assert m["by_archetype"]["off_by_one"]["recall"] == 0.0


class TestCorpusPrograms:
    def test_round_robin_covers_all_archetypes(self):
        specs = corpus_programs(CorpusSpec(seed=7, size=10))
        assert [s.archetype for s in specs[:5]] == list(
            CorpusSpec().archetypes)
        assert len({s.name for s in specs}) == 10

    def test_item_seeds_are_deterministic(self):
        a = corpus_programs(CorpusSpec(seed=7, size=6))
        b = corpus_programs(CorpusSpec(seed=7, size=6))
        assert a == b

    def test_different_corpus_seeds_differ(self):
        a = corpus_programs(CorpusSpec(seed=7, size=6))
        b = corpus_programs(CorpusSpec(seed=8, size=6))
        assert [s.seed for s in a] != [s.seed for s in b]

    def test_prefix_stability(self):
        # Growing a corpus keeps the existing programs unchanged.
        small = corpus_programs(CorpusSpec(seed=7, size=4))
        large = corpus_programs(CorpusSpec(seed=7, size=8))
        assert large[:4] == small


class TestGoldenFiles:
    def _check(self, path, text, update):
        if update:
            path.write_text(text, encoding="utf-8")
            pytest.skip(f"updated {path.name}")
        assert path.exists(), (
            f"golden file {path} missing; run pytest --update-golden")
        assert text == path.read_text(encoding="utf-8")

    def test_metrics_json_matches_golden(self, small_corpus, update_golden):
        self._check(GOLDEN_DIR / "corpus_metrics.json",
                    metrics_json(small_corpus), update_golden)

    def test_report_text_matches_golden(self, small_corpus, update_golden):
        self._check(GOLDEN_DIR / "corpus_report.txt",
                    format_corpus(small_corpus) + "\n", update_golden)

    def test_metrics_json_is_canonical(self, small_corpus):
        text = metrics_json(small_corpus)
        doc = json.loads(text)
        assert text == json.dumps(doc, sort_keys=True, indent=2) + "\n"


@pytest.mark.slow
class TestSeedDeterminism:
    """The audit: same (seed, size) => byte-identical metrics JSON."""

    def test_second_invocation_same_process(self, small_corpus):
        again = run_corpus(SMALL)
        assert metrics_json(again) == metrics_json(small_corpus)
        assert again.records == small_corpus.records

    def test_serial_vs_jobs_4(self, small_corpus):
        parallel = run_corpus(SMALL, jobs=4)
        assert metrics_json(parallel) == metrics_json(small_corpus)
        assert parallel.records == small_corpus.records


@pytest.mark.slow
class TestResilienceComposition:
    def test_checkpoint_resume_reproduces_metrics(self, tmp_path,
                                                  small_corpus):
        ck = tmp_path / "corpus.ck"
        first = run_corpus(SMALL, checkpoint=str(ck))
        assert ck.exists()
        resumed = run_corpus(SMALL, checkpoint=str(ck))
        assert metrics_json(first) == metrics_json(small_corpus)
        assert metrics_json(resumed) == metrics_json(small_corpus)

    def test_checkpoint_spec_mismatch_rejected(self, tmp_path):
        from dataclasses import replace

        from repro.common.errors import CheckpointError

        tiny = replace(SMALL, size=1)
        ck = tmp_path / "corpus.ck"
        run_corpus(tiny, checkpoint=str(ck))
        with pytest.raises(CheckpointError, match="fingerprint"):
            run_corpus(replace(tiny, size=2), checkpoint=str(ck))

    def test_faulted_programs_quarantine_as_misses(self):
        from dataclasses import replace

        tiny = replace(SMALL, size=2)
        plan = FaultPlan.from_spec("seed=5,run_corrupt=0.9")
        quarantine = Quarantine()
        result = run_corpus(tiny, faults=plan, quarantine=quarantine)
        overall = result.metrics["overall"]
        assert overall["n_quarantined"] == len(quarantine) > 0
        assert overall["n_found"] + overall["n_quarantined"] <= 2
        assert result.quarantine["n_quarantined"] == len(quarantine)
        statuses = {r["status"] for r in result.records}
        assert "quarantined" in statuses


@pytest.mark.corpus
class TestAcceptanceCorpus:
    """The ISSUE's acceptance run: repro corpus --seed 7 --size 20."""

    def test_full_corpus_end_to_end(self):
        spec = CorpusSpec(seed=7, size=20)
        serial = run_corpus(spec)
        parallel = run_corpus(spec, jobs=4)
        assert metrics_json(serial) == metrics_json(parallel)
        overall = serial.metrics["overall"]
        assert overall["n_programs"] == 20
        assert overall["recall"] >= 0.7
        assert overall["mean_rank"] is not None
        assert set(serial.metrics["by_archetype"]) == set(
            CorpusSpec().archetypes)
        # Every archetype other than atomicity (the known-hard one,
        # see docs/accuracy.md) diagnoses at rank 1 across the corpus.
        for archetype, m in serial.metrics["by_archetype"].items():
            if archetype != "atomicity":
                assert m["recall"] == 1.0, archetype
