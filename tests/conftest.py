"""Shared fixtures: fast configs, tiny programs, cached trained models.

Also registers the ``slow`` and ``corpus`` markers and the golden-file
machinery. ``corpus``-marked tests (full accuracy-corpus runs, minutes
of wall time) are deselected by default; opt in with ``--run-corpus``.
``--update-golden`` rewrites the golden files under ``tests/golden/``
instead of comparing against them.
"""

import pytest

from repro.common.errors import SimulatedFailure
from repro.core.config import ACTConfig
from repro.core.offline import OfflineTrainer
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)


def pytest_addoption(parser):
    parser.addoption(
        "--run-corpus", action="store_true", default=False,
        help="run corpus-marked tests (full accuracy-corpus e2e runs)")
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/ files instead of comparing")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (kept in tier-1, but flagged)")
    config.addinivalue_line(
        "markers",
        "corpus: full accuracy-corpus e2e test; deselected unless "
        "--run-corpus is given")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-corpus"):
        return
    skip = pytest.mark.skip(reason="needs --run-corpus")
    for item in items:
        if "corpus" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")


class PingPong(Program):
    """Two threads exchanging a counter -- the minimal concurrent workload."""

    name = "pingpong"

    def default_params(self):
        return {"rounds": 6}

    def build(self, rounds=6):
        cm = CodeMap()
        mem = AddressSpace()
        ball = mem.var("ball")
        pad = [mem.array(f"pad{t}", 4) for t in range(2)]

        s_serve = cm.store("serve", function="t0")
        l_ret0 = cm.load("t0_return", function="t0")
        s_hit0 = cm.store("t0_hit", function="t0")
        l_ret1 = cm.load("t1_return", function="t1")
        s_hit1 = cm.store("t1_hit", function="t1")
        l_pad = cm.load("read_pad", function="t1")
        s_pad = cm.store("write_pad", function="t1")

        def t0(ctx):
            yield ctx.store(s_serve, ball, value=0)
            yield ctx.set_flag("served")
            for r in range(rounds):
                yield ctx.wait(f"hit1.{r}")
                yield ctx.load(l_ret0, ball)
                yield ctx.store(s_hit0, ball, value=2 * r)
                yield ctx.set_flag(f"hit0.{r}")

        def t1(ctx):
            yield ctx.wait("served")
            for r in range(rounds):
                yield ctx.store(s_pad, pad[1] + 4 * (r % 4), value=r)
                yield ctx.load(l_pad, pad[1] + 4 * (r % 4))
                yield ctx.load(l_ret1, ball)
                yield ctx.store(s_hit1, ball, value=2 * r + 1)
                yield ctx.set_flag(f"hit1.{r}")
                yield ctx.wait(f"hit0.{r}")

        return ProgramInstance(self.name, cm, [t0, t1])


class TinyBug(Program):
    """Single-thread program with a deterministic wild-read failure."""

    name = "tinybug"

    def default_params(self):
        return {"buggy": False, "n": 8}

    def build(self, buggy=False, n=8):
        cm = CodeMap()
        mem = AddressSpace()
        buf = mem.array("buf", n)
        hidden = mem.var("hidden", packed=True)

        s_hidden = cm.store("init_hidden", function="setup")
        s_buf = cm.store("fill", function="work")
        l_buf = cm.load("read", function="work")
        l_oob = cm.load("read_oob", function="work")

        def body(ctx):
            yield ctx.store(s_hidden, hidden, value=7)
            for i in range(n):
                yield ctx.store(s_buf, buf + 4 * i, value=i)
            for i in range(n):
                yield ctx.load(l_buf, buf + 4 * i)
            if buggy:
                v = yield ctx.load(l_oob, hidden)
                raise SimulatedFailure(f"tinybug: wild read {v}", pc=l_oob)

        inst = ProgramInstance(self.name, cm, [body])
        inst.root_cause = {(s_hidden, l_oob)}
        return inst


@pytest.fixture
def pingpong():
    return PingPong()


@pytest.fixture
def tinybug():
    return TinyBug()


@pytest.fixture
def fast_config():
    """Small sequence length + window for quick online behaviour."""
    return ACTConfig(seq_len=3, check_window=20)


@pytest.fixture(scope="session")
def default_config():
    return ACTConfig()


@pytest.fixture(scope="session")
def trained_tinybug():
    """A TrainedACT for TinyBug, shared across the session."""
    cfg = ACTConfig(seq_len=3, check_window=20)
    return OfflineTrainer(config=cfg).train(TinyBug(), n_runs=4,
                                            buggy=False)


@pytest.fixture(scope="session")
def trained_lu():
    from repro.workloads import get_kernel
    cfg = ACTConfig()
    return OfflineTrainer(config=cfg).train(get_kernel("lu"), n_runs=4)
