"""Columnar trace format: round trips, damage handling, CLI convert.

The contract under test: a columnar file and a JSON-lines file written
from the same run decode to identical :class:`TraceRun` events; the
same :class:`FaultPlan` damages the same records in both; header-level
damage (magic, version, truncation, checksum) is never recoverable
while record-level damage follows the jsonl recover semantics.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.cli import main as cli_main
from repro.common.errors import TraceError
from repro.faults import FaultPlan, Quarantine
from repro.trace import columnar, read_trace, write_trace
from repro.trace.events import EventKind, TraceEvent, TraceRun
from repro.workloads.framework import run_program


def _make_event(tid, pc, kind, addr, is_stack, taken):
    if kind.is_memory():
        return TraceEvent(tid, pc, kind, addr=addr, is_stack=is_stack)
    if kind is EventKind.BRANCH:
        return TraceEvent(tid, pc, kind, taken=taken)
    return TraceEvent(tid, pc, kind)


# Events as the workload framework emits them: memory events always carry
# an address, branches always a concrete bool outcome.
_events = st.lists(
    st.builds(_make_event,
              tid=st.integers(0, 63),
              pc=st.integers(0, 2 ** 40),
              kind=st.sampled_from(list(EventKind)),
              addr=st.integers(0, 2 ** 40),
              is_stack=st.booleans(),
              taken=st.booleans()),
    max_size=60)


def _run_of(events, failed=False, n_threads=2, seed=3):
    return TraceRun(events=list(events), failed=failed,
                    n_threads=n_threads, seed=seed)


class TestRoundTrip:
    def test_both_formats_decode_identically(self, pingpong, tmp_path):
        run = run_program(pingpong, seed=1)
        jsonl_path = tmp_path / "t.jsonl"
        col_path = tmp_path / "t.columnar"
        write_trace(run, jsonl_path)
        write_trace(run, col_path, trace_format="columnar")
        a = read_trace(jsonl_path)
        b = read_trace(col_path)
        assert a.events == b.events == run.events
        assert (a.failed, a.n_threads, a.seed) == (
            b.failed, b.n_threads, b.seed)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(events=_events, failed=st.booleans(),
           n_threads=st.integers(1, 8), seed=st.integers(0, 2 ** 31))
    def test_columnar_round_trip_exact(self, events, failed, n_threads,
                                       seed, tmp_path):
        run = _run_of(events, failed=failed, n_threads=n_threads, seed=seed)
        path = tmp_path / "t.columnar"
        write_trace(run, path, trace_format="columnar")
        back = read_trace(path)
        assert back.events == run.events
        assert back.failed == run.failed
        assert back.n_threads == run.n_threads
        assert back.seed == run.seed

    def test_unset_branch_taken_reads_back_false_in_both(self, tmp_path):
        # The jsonl quirk the columnar format must reproduce.
        run = _run_of([TraceEvent(0, 1, EventKind.BRANCH, taken=None)])
        expected = [TraceEvent(0, 1, EventKind.BRANCH, taken=False)]
        for fmt in ("jsonl", "columnar"):
            path = tmp_path / f"t.{fmt}"
            write_trace(run, path, trace_format=fmt)
            assert read_trace(path).events == expected

    def test_zero_plan_write_is_byte_deterministic(self, pingpong, tmp_path):
        run = run_program(pingpong, seed=1)
        a, b = tmp_path / "a.columnar", tmp_path / "b.columnar"
        write_trace(run, a, trace_format="columnar")
        write_trace(run, b, trace_format="columnar")
        assert a.read_bytes() == b.read_bytes()

    def test_read_trace_autodetects_regardless_of_extension(
            self, pingpong, tmp_path):
        run = run_program(pingpong, seed=1)
        path = tmp_path / "misleading.jsonl"
        write_trace(run, path, trace_format="columnar")
        assert columnar.is_columnar(path)
        assert read_trace(path).events == run.events

    def test_unknown_format_rejected(self, pingpong, tmp_path):
        run = run_program(pingpong, seed=1)
        with pytest.raises(TraceError):
            write_trace(run, tmp_path / "t.x", trace_format="parquet")


class TestLayout:
    def test_columns_are_zero_copy_mmap_views(self, pingpong, tmp_path):
        run = run_program(pingpong, seed=1)
        path = tmp_path / "t.columnar"
        write_trace(run, path, trace_format="columnar")
        header, cols = columnar.read_columns(path)
        assert header["n_events"] == len(run.events)
        for name, dtype in columnar.COLUMNS:
            arr = cols[name]
            assert arr.dtype == np.dtype(dtype)
            assert not arr.flags.owndata
            assert not arr.flags.writeable

    def test_columns_start_on_alignment_boundaries(self, pingpong, tmp_path):
        run = run_program(pingpong, seed=1)
        path = tmp_path / "t.columnar"
        write_trace(run, path, trace_format="columnar")
        header, _cols = columnar.read_columns(path)
        for _name, _dtype, offset in header["columns"]:
            assert offset % columnar.ALIGNMENT == 0

    def test_is_columnar_false_for_jsonl_and_missing(self, pingpong,
                                                     tmp_path):
        run = run_program(pingpong, seed=1)
        jsonl_path = tmp_path / "t.jsonl"
        write_trace(run, jsonl_path)
        assert not columnar.is_columnar(jsonl_path)
        assert not columnar.is_columnar(tmp_path / "nope")


class TestHeaderDamage:
    """File-level damage is never recoverable, matching jsonl headers."""

    def _written(self, pingpong, tmp_path):
        run = run_program(pingpong, seed=1)
        path = tmp_path / "t.columnar"
        write_trace(run, path, trace_format="columnar")
        return path

    def test_checksum_tamper_raises_even_with_recover(self, pingpong,
                                                      tmp_path):
        path = self._written(pingpong, tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte without touching records'
        path.write_bytes(bytes(data))  # header bookkeeping
        with pytest.raises(TraceError, match="checksum"):
            read_trace(path, recover=True)

    def test_bad_magic_rejected(self, pingpong, tmp_path):
        path = self._written(pingpong, tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        assert not columnar.is_columnar(path)
        with pytest.raises(TraceError):
            columnar.read_columns(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "t.columnar"
        head = json.dumps({"version": 99}).encode()
        path.write_bytes(columnar.MAGIC
                         + len(head).to_bytes(4, "little") + head)
        with pytest.raises(TraceError, match="version"):
            read_trace(path, recover=True)

    def test_truncated_payload_rejected(self, pingpong, tmp_path):
        path = self._written(pingpong, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 16])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path, recover=True)


class TestFaultParity:
    def test_poisoned_record_skip_counts_match_jsonl(self, pingpong,
                                                     tmp_path):
        run = run_program(pingpong, seed=1)
        plan = FaultPlan(seed=2, trace_corrupt=0.3)
        jsonl_path = tmp_path / "t.jsonl"
        col_path = tmp_path / "t.columnar"
        with telemetry.use_registry(telemetry.Registry()):
            write_trace(run, jsonl_path, faults=plan)
            write_trace(run, col_path, faults=plan, trace_format="columnar")
        qa, qb = Quarantine(), Quarantine()
        a = read_trace(jsonl_path, quarantine=qa)
        b = read_trace(col_path, quarantine=qb)
        assert a.events == b.events
        assert (a.meta["skipped_records"] == b.meta["skipped_records"] > 0)
        assert len(qa) == len(qb) == 1


class TestPackRun:
    def test_pack_unpack_exact(self, pingpong):
        run = run_program(pingpong, seed=1)
        run.meta["note"] = "kept"
        back = columnar.unpack_run(columnar.pack_run(run))
        assert back.events == run.events
        assert back.failed == run.failed
        assert back.failure is run.failure
        assert back.code_map is run.code_map
        assert back.n_threads == run.n_threads
        assert back.seed == run.seed
        assert back.meta == run.meta

    @settings(max_examples=25, deadline=None)
    @given(events=_events)
    def test_pack_unpack_property(self, events):
        run = _run_of(events)
        assert columnar.unpack_run(columnar.pack_run(run)).events \
            == run.events


class TestCliConvert:
    def _trace(self, pingpong, tmp_path, fmt):
        run = run_program(pingpong, seed=1)
        path = tmp_path / f"src.{fmt}"
        write_trace(run, path, trace_format=fmt)
        return run, path

    def test_jsonl_to_columnar_and_back_verified(self, pingpong, tmp_path,
                                                 capsys):
        run, src = self._trace(pingpong, tmp_path, "jsonl")
        col = tmp_path / "out.columnar"
        back = tmp_path / "back.jsonl"
        assert cli_main(["trace", "convert", str(src), str(col),
                         "--verify"]) == 0
        assert columnar.is_columnar(col)
        assert cli_main(["trace", "convert", str(col), str(back),
                         "--verify"]) == 0
        assert not columnar.is_columnar(back)
        assert back.read_bytes() == src.read_bytes()
        assert "verified" in capsys.readouterr().out

    def test_forced_format_overrides_default(self, pingpong, tmp_path):
        _run, src = self._trace(pingpong, tmp_path, "jsonl")
        dst = tmp_path / "still.jsonl"
        assert cli_main(["trace", "convert", str(src), str(dst),
                         "--trace-format", "jsonl"]) == 0
        assert not columnar.is_columnar(dst)

    def test_missing_input_is_an_error(self, tmp_path, capsys):
        rc = cli_main(["trace", "convert", str(tmp_path / "nope"),
                       str(tmp_path / "out")])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_wrong_arity_is_an_error(self, pingpong, tmp_path, capsys):
        _run, src = self._trace(pingpong, tmp_path, "jsonl")
        assert cli_main(["trace", "convert", str(src)]) == 2
        assert "exactly" in capsys.readouterr().err
