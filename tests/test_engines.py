"""Cross-engine differential suite for the predictor-engine registry.

Four layers: registry semantics (names, unknown-engine errors, ensemble
member parsing), the Predictor protocol contract every engine must
satisfy, Hypothesis round-trip properties pinning
``deserialize(serialize(e))``, and the byte-identity audits -- the
NN-via-registry path against the direct path (reports, telemetry,
exported artifacts), and the seed-pinned shootout golden with its
serial-vs-``--jobs`` determinism check.
"""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.analysis.accuracy import CorpusSpec, run_corpus
from repro.analysis.shootout import (
    ShootoutSpec,
    append_bench,
    bench_entry,
    format_shootout,
    run_shootout,
    shootout_json,
)
from repro.common.errors import EngineError
from repro.core.config import ACTConfig
from repro.core.diagnosis import diagnose_failure
from repro.engines import create, names, register
from repro.engines import registry as engine_registry
from repro.engines.base import (
    EngineCapabilities,
    Predictor,
    candidate,
    candidate_report,
)
from repro.engines.ensemble import rrf_merge
from repro.trace.raw import dep_sequences, extract_raw_deps
from repro.workloads.framework import run_program
from repro.workloads.registry import all_bug_names, get_bug

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

CFG = ACTConfig(seq_len=3, check_window=20)
ENGINES = ("nn", "aviso", "pbi", "pset", "ensemble")

# The seed-pinned shootout shared by the golden test and CI's
# shootout-smoke job (.github/workflows/ci.yml): small enough for
# tier-1, large enough to exercise every archetype but one.
SHOOT = ShootoutSpec(seed=7, size=5, n_train_runs=4, n_pruning_runs=6)


@pytest.fixture(scope="session")
def seq_pool():
    """Dependence sequences from correct gzip + aget runs."""
    pool = []
    for bug in ("gzip", "aget"):
        run = run_program(get_bug(bug), seed=0, buggy=False)
        for stream in extract_raw_deps(run).values():
            pool.extend(dep_sequences(stream, CFG.seq_len))
    assert len(pool) >= 8
    return pool


@pytest.fixture(scope="session")
def trained_engines():
    """Every registered engine, trained on the same gzip runs."""
    engines = {}
    for name in ENGINES:
        engine = create(name, config=CFG)
        engine.train(get_bug("gzip"), n_runs=4, buggy=False)
        engines[name] = engine
    return engines


@pytest.fixture(scope="session")
def small_shootout():
    return run_shootout(SHOOT)


class TestRegistry:
    def test_names_registration_order(self):
        assert names() == ENGINES

    def test_create_returns_predictors(self):
        for name in names():
            engine = create(name, config=CFG)
            assert isinstance(engine, Predictor)
            assert engine.name == name
            assert isinstance(engine.capabilities, EngineCapabilities)

    def test_unknown_engine_lists_registered_names(self):
        with pytest.raises(EngineError) as exc:
            create("bogus")
        assert exc.value.engine == "bogus"
        assert exc.value.known == names()
        for name in names():
            assert name in str(exc.value)

    def test_member_list_on_non_ensemble_rejected(self):
        with pytest.raises(EngineError, match="ensemble"):
            create("pset:nn")

    def test_ensemble_explicit_members(self):
        engine = create("ensemble:nn+pset", config=CFG)
        assert [m.name for m in engine.members] == ["nn", "pset"]

    def test_ensemble_default_members_are_all_base_engines(self):
        engine = create("ensemble", config=CFG)
        assert [m.name for m in engine.members] == [
            n for n in names() if n != "ensemble"]

    def test_ensemble_empty_member_list_rejected(self):
        with pytest.raises(EngineError, match="no members"):
            create("ensemble:")

    def test_ensemble_unknown_member_rejected(self):
        with pytest.raises(EngineError) as exc:
            create("ensemble:nn+bogus")
        assert exc.value.engine == "bogus"

    def test_ensemble_cannot_nest(self):
        with pytest.raises(EngineError):
            create("ensemble:ensemble")

    def test_register_adds_engine(self):
        class _Custom(Predictor):
            capabilities = EngineCapabilities(
                name="custom-test", description="registry test stub")

        register("custom-test", _Custom)
        try:
            assert "custom-test" in names()
            assert isinstance(create("custom-test"), _Custom)
        finally:
            del engine_registry._REGISTRY["custom-test"]


class TestCapabilities:
    """The Table-I axes each engine declares (docs/engines.md)."""

    def test_nn_adapts_online(self):
        caps = create("nn").capabilities
        assert caps.adapts_online
        assert caps.trains_offline
        assert not caps.multithreaded_only

    def test_aviso_needs_many_failure_runs_and_threads(self):
        caps = create("aviso").capabilities
        assert caps.needs_failure_runs > 1
        assert caps.multithreaded_only

    def test_pbi_and_pset_are_single_failure_schemes(self):
        for name in ("pbi", "pset"):
            caps = create(name).capabilities
            assert caps.needs_failure_runs == 1, name
            assert not caps.adapts_online, name

    def test_ensemble_capabilities_are_derived_from_members(self):
        engine = create("ensemble")
        members = engine.members
        caps = engine.capabilities
        assert caps.needs_failure_runs == max(
            m.capabilities.needs_failure_runs for m in members)
        assert caps.adapts_online == any(
            m.capabilities.adapts_online for m in members)
        assert caps.multithreaded_only == all(
            m.capabilities.multithreaded_only for m in members)


class TestProtocolContract:
    """Every registered engine satisfies the Predictor protocol."""

    @pytest.mark.parametrize("name", ENGINES)
    def test_cold_engine_is_untrained_and_unserializable(self, name):
        engine = create(name, config=CFG)
        assert not engine.trained
        with pytest.raises(EngineError):
            engine.serialize()

    @pytest.mark.parametrize("name", ENGINES)
    def test_train_sets_trained(self, name, trained_engines):
        assert trained_engines[name].trained

    @pytest.mark.parametrize("name", ENGINES)
    def test_predict_batch_shape_and_range(self, name, trained_engines,
                                           seq_pool):
        scores = np.asarray(trained_engines[name].predict_batch(seq_pool),
                            dtype=float)
        assert scores.shape == (len(seq_pool),)
        assert ((scores >= 0.0) & (scores <= 1.0)).all()

    @pytest.mark.parametrize("name", ENGINES)
    def test_predict_batch_deterministic(self, name, trained_engines,
                                         seq_pool):
        engine = trained_engines[name]
        a = np.asarray(engine.predict_batch(seq_pool), dtype=float)
        b = np.asarray(engine.predict_batch(seq_pool), dtype=float)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", ENGINES)
    def test_predict_batch_empty(self, name, trained_engines):
        assert len(trained_engines[name].predict_batch([])) == 0

    @pytest.mark.parametrize("name", ENGINES)
    def test_serialize_is_json_safe(self, name, trained_engines):
        payload = trained_engines[name].serialize()
        assert payload["engine"] == name
        json.dumps(payload)  # must not raise

    @pytest.mark.parametrize("name", ENGINES)
    def test_fingerprint_is_json_safe_and_named(self, name):
        fp = create(name).fingerprint()
        assert fp["engine"] == name
        json.dumps(fp)

    def test_load_state_rejects_foreign_engine(self, trained_engines):
        with pytest.raises(EngineError):
            create("pbi", config=CFG).load_state(
                trained_engines["pset"].serialize())

    @pytest.mark.parametrize("name", [n for n in ENGINES if n != "nn"])
    def test_non_nn_engines_reject_checkpoints(self, name, tinybug):
        with pytest.raises(EngineError, match="checkpoint"):
            create(name, config=CFG).diagnose_report(
                tinybug, checkpoint="ck.json")

    def test_unknown_engine_via_diagnose_failure(self, tinybug):
        with pytest.raises(EngineError, match="registered engines"):
            diagnose_failure(tinybug, config=CFG, engine="bogus")


class TestSerializeRoundTrip:
    """Hypothesis pin: deserialize(serialize(e)) predicts identically."""

    @pytest.mark.parametrize("name", ENGINES)
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_round_trip_predictions_identical(self, name, data,
                                              trained_engines, seq_pool):
        engine = trained_engines[name]
        # Through actual JSON text: what the warm cache / wire carries.
        payload = json.loads(json.dumps(engine.serialize()))
        restored = type(engine).deserialize(payload)
        idxs = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(seq_pool) - 1),
            max_size=8))
        seqs = [seq_pool[i] for i in idxs]
        a = np.asarray(engine.predict_batch(seqs), dtype=float)
        b = np.asarray(restored.predict_batch(seqs), dtype=float)
        assert a.shape == b.shape
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", ENGINES)
    def test_round_trip_reserializes_identically(self, name,
                                                 trained_engines):
        engine = trained_engines[name]
        payload = engine.serialize()
        restored = type(engine).deserialize(
            json.loads(json.dumps(payload)))
        assert restored.trained
        assert restored.serialize() == payload

    def test_instance_load_state_round_trip(self, trained_engines,
                                            seq_pool):
        engine = trained_engines["pset"]
        other = create("pset", config=CFG)
        other.load_state(engine.serialize())
        assert np.array_equal(
            np.asarray(engine.predict_batch(seq_pool), dtype=float),
            np.asarray(other.predict_batch(seq_pool), dtype=float))


class TestRRFMerge:
    def test_scores_and_order(self):
        merged = rrf_merge([
            [candidate("a", 0.9, False), candidate("b", 0.5, True)],
            [candidate("b", 0.8, False), candidate("c", 0.2, False)],
        ])
        by_key = {c["key"]: c for c in merged}
        assert by_key["b"]["score"] == pytest.approx(
            1 / 62 + 1 / 61)
        assert by_key["a"]["score"] == pytest.approx(1 / 61)
        assert merged[0]["key"] == "b"  # two votes beat one
        assert by_key["b"]["hit"] is True  # hit is OR-ed across members

    def test_tie_breaks_on_key(self):
        merged = rrf_merge([[candidate("z", 1.0, False)],
                            [candidate("a", 1.0, False)]])
        assert [c["key"] for c in merged] == ["a", "z"]

    def test_empty_input(self):
        assert rrf_merge([]) == []


class TestCandidateReport:
    def test_rank_is_first_hit(self):
        report = candidate_report(
            "p", failed=True, failure_description="boom",
            truth={(1, 2)},
            candidates=[candidate("x", 0.9, False),
                        candidate("y", 0.8, True),
                        candidate("z", 0.7, True)],
            engine="pset")
        assert report.found and report.rank == 2
        assert report.engine == "pset"
        assert report.applicable

    def test_no_hit_means_not_found(self):
        report = candidate_report(
            "p", failed=True, failure_description="boom", truth=set(),
            candidates=[candidate("x", 0.9, False)], engine="pbi")
        assert not report.found and report.rank is None


def _nn_diagnosis(bug, engine):
    reg = telemetry.Registry(clock=telemetry.TickClock())
    with telemetry.use_registry(reg):
        report = diagnose_failure(bug, config=ACTConfig(seq_len=3),
                                  n_train_runs=4, n_pruning_runs=6,
                                  engine=engine)
    return report, telemetry.profile_dict(reg)


@pytest.mark.slow
class TestNNRegistryByteIdentity:
    """engine='nn' must be indistinguishable from the direct path."""

    @pytest.mark.parametrize("bug_name", all_bug_names())
    def test_report_and_telemetry_identical(self, bug_name):
        direct, direct_profile = _nn_diagnosis(get_bug(bug_name), None)
        routed, routed_profile = _nn_diagnosis(get_bug(bug_name), "nn")
        assert routed == direct
        assert routed_profile == direct_profile

    def test_cli_telemetry_artifact_identical(self, tmp_path, capsys):
        from repro import cli

        fast = ["--train-runs", "4", "--pruning-runs", "6",
                "--tick-clock"]
        a = tmp_path / "direct.json"
        b = tmp_path / "routed.json"
        rc_a = cli.main(["diagnose", "gzip", *fast,
                         "--telemetry", str(a)])
        rc_b = cli.main(["diagnose", "gzip", "--engine", "nn", *fast,
                         "--telemetry", str(b)])
        capsys.readouterr()
        assert rc_a == rc_b
        assert a.read_bytes() == b.read_bytes()


class TestEngineDiagnosis:
    """Each baseline produces a well-formed candidate report."""

    @pytest.mark.parametrize("name", ["pbi", "pset", "ensemble:pbi+pset"])
    def test_single_thread_bug_report(self, name, tinybug):
        report = diagnose_failure(tinybug, config=CFG, n_train_runs=4,
                                  n_pruning_runs=6, engine=name)
        assert report.engine == name.partition(":")[0]
        assert report.applicable
        assert report.failed
        for cand in report.candidates:
            assert set(cand) == {"key", "score", "hit"}
        ranks = [i for i, c in enumerate(report.candidates, start=1)
                 if c["hit"]]
        assert report.rank == (ranks[0] if ranks else None)

    def test_aviso_inapplicable_on_single_thread(self, tinybug):
        report = diagnose_failure(tinybug, config=CFG, n_train_runs=4,
                                  n_pruning_runs=6, engine="aviso")
        assert report.engine == "aviso"
        assert not report.applicable
        assert not report.found

    def test_warm_state_round_trip_matches_cold(self, tinybug):
        captured = {}
        cold = diagnose_failure(
            tinybug, config=CFG, n_train_runs=4, n_pruning_runs=6,
            engine="pset",
            engine_state_sink=lambda s: captured.update(state=s))
        warm = diagnose_failure(
            tinybug, config=CFG, n_train_runs=4, n_pruning_runs=6,
            engine="pset", engine_state=captured["state"])
        assert warm == cold


class TestEngineCorpus:
    def test_default_fingerprint_has_no_engine_key(self):
        # Pre-engine corpus checkpoints/goldens must stay valid.
        assert "engine" not in CorpusSpec().fingerprint()

    def test_non_default_engine_in_fingerprint(self):
        fp = CorpusSpec(engine="pset").fingerprint()
        assert fp["engine"] == "pset"

    @pytest.mark.slow
    def test_corpus_records_carry_candidate_counts(self):
        spec = CorpusSpec(seed=3, size=2, n_train_runs=4,
                          n_pruning_runs=6, engine="pset")
        result = run_corpus(spec)
        assert len(result.records) == 2
        for rec in result.records:
            assert rec["n_findings"] == len(rec["finding_hits"])
        assert result.metrics["overall"]["n_programs"] == 2


class TestShootout:
    def _check(self, path, text, update):
        if update:
            path.write_text(text, encoding="utf-8")
            pytest.skip(f"updated {path.name}")
        assert path.exists(), (
            f"golden file {path} missing; run pytest --update-golden")
        assert text == path.read_text(encoding="utf-8")

    def test_metrics_json_matches_golden(self, small_shootout,
                                         update_golden):
        self._check(GOLDEN_DIR / "shootout_s7.json",
                    shootout_json(small_shootout), update_golden)

    def test_metrics_json_is_canonical(self, small_shootout):
        text = shootout_json(small_shootout)
        doc = json.loads(text)
        assert text == json.dumps(doc, sort_keys=True, indent=2) + "\n"

    def test_covers_every_registered_engine(self, small_shootout):
        assert set(small_shootout.metrics["engines"]) == set(names())
        for doc in small_shootout.metrics["engines"].values():
            assert set(doc) == {"capabilities", "overall", "by_archetype"}

    def test_table_lists_every_engine(self, small_shootout):
        table = format_shootout(small_shootout)
        assert table.splitlines()[0] == (
            "Engine shootout (seed 7, 5 programs)")
        for name in names():
            assert name in table

    def test_bench_append_and_dedupe(self, small_shootout, tmp_path):
        path = tmp_path / "BENCH_accuracy.json"
        doc = append_bench(small_shootout, str(path))
        assert doc["schema"] == 1
        assert doc["entries"] == [bench_entry(small_shootout)]
        # Re-running the same shootout must not grow the trajectory.
        again = append_bench(small_shootout, str(path))
        assert again["entries"] == doc["entries"]
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == doc
        entry = doc["entries"][0]
        assert set(entry["engines"]) == set(names())
        assert "timestamp" not in entry

    @pytest.mark.slow
    def test_serial_vs_jobs_4_byte_identical(self, small_shootout):
        parallel = run_shootout(SHOOT, jobs=4)
        assert shootout_json(parallel) == shootout_json(small_shootout)
