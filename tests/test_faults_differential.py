"""Differential regression suite for the fault subsystem.

Pins the three contracts the resilience machinery must keep:

1. **Zero-fault identity** -- for every bug workload, diagnosing under
   an explicit zero :class:`FaultPlan` (with a live quarantine attached)
   is indistinguishable from the plain path: identical report, identical
   telemetry counters/histograms/gauges and span tree, empty quarantine.
2. **Quarantine-subset equivalence** -- quarantining ``k`` corrupt runs
   produces exactly the result of running on the clean subset.
3. **Crash/resume equivalence** -- a diagnosis killed mid-flight and
   resumed from its checkpoint yields the same report as an
   uninterrupted run; likewise for the topology search.

Plus Hypothesis-generated random fault plans asserting that no injected
fault ever escapes the quarantine boundary.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.common.errors import WorkerKilled
from repro.core.diagnosis import DiagnosisReport, diagnose_failure
from repro.core.offline import OfflineTrainer, collect_runs_for_seeds
from repro.faults import ZERO_PLAN, Checkpoint, FaultPlan, Quarantine, use_plan
from repro.trace.trace_io import read_trace, write_trace
from repro.workloads.framework import run_program
from repro.workloads.registry import all_bug_names, get_bug

_RUNS = dict(n_train_runs=3, n_pruning_runs=4)


def _strip_spans(spans):
    """Span tree shapes (names, attrs, nesting) without wall-clock times."""
    return [{"name": s["name"], "attrs": s.get("attrs", {}),
             "children": _strip_spans(s.get("children", []))}
            for s in spans]


def _normalized(snapshot):
    """A snapshot with its only wall-clock-dependent pieces removed:
    span durations and the events/sec throughput gauge."""
    gauges = {k: v for k, v in snapshot["gauges"].items()
              if k != "sched.events_per_sec"}
    return {"counters": snapshot["counters"],
            "histograms": snapshot["histograms"],
            "gauges": gauges,
            "spans": _strip_spans(snapshot["spans"])}


@pytest.mark.slow
class TestZeroFaultIdentity:
    @pytest.mark.parametrize("bug", all_bug_names())
    def test_report_and_telemetry_identical(self, bug):
        program = get_bug(bug)
        with telemetry.use_registry(telemetry.Registry()) as plain_reg:
            plain = diagnose_failure(program, **_RUNS)
        quarantine = Quarantine()
        with telemetry.use_registry(telemetry.Registry()) as faulted_reg:
            faulted = diagnose_failure(program, faults=ZERO_PLAN,
                                       quarantine=quarantine, **_RUNS)
        assert plain == faulted
        assert faulted.quarantine is None
        assert len(quarantine) == 0
        assert (_normalized(plain_reg.snapshot())
                == _normalized(faulted_reg.snapshot()))

    def test_zero_plan_forces_no_behaviour_change_with_jobs(self):
        program = get_bug("gzip")
        plain = diagnose_failure(program, jobs=2, **_RUNS)
        faulted = diagnose_failure(program, jobs=2, faults=ZERO_PLAN,
                                   quarantine=Quarantine(), **_RUNS)
        assert plain == faulted


class TestQuarantineSubsetEquivalence:
    def test_collection_skips_exactly_the_corrupt_runs(self):
        program = get_bug("gzip")
        plan = FaultPlan(seed=0, corrupt_run_seeds=(2,))
        quarantine = Quarantine()
        with use_plan(plan):
            faulted = collect_runs_for_seeds(program, [0, 1, 2, 3],
                                             quarantine=quarantine,
                                             buggy=False)
        clean = collect_runs_for_seeds(program, [0, 1, 3], buggy=False)
        assert quarantine.keys() == [2]
        kept = [r for r in faulted if r is not None]
        assert [r.seed for r in kept] == [r.seed for r in clean]
        for a, b in zip(kept, clean):
            assert a.events == b.events

    def test_training_on_quarantined_set_equals_clean_subset(self):
        import numpy as np

        program = get_bug("gzip")
        trainer = OfflineTrainer()
        quarantine = Quarantine()
        with use_plan(FaultPlan(seed=0, corrupt_run_seeds=(1,))):
            faulted = trainer.train(program, n_runs=4, seed0=0,
                                    quarantine=quarantine, buggy=False)
        clean_runs = collect_runs_for_seeds(program, [0, 2, 3], buggy=False)
        clean = trainer.train(runs=clean_runs)
        assert quarantine.keys() == [1]
        assert set(faulted.weights) == set(clean.weights)
        for tid in clean.weights:
            assert np.array_equal(faulted.weights[tid], clean.weights[tid])
        assert np.array_equal(faulted.default_weights,
                              clean.default_weights)

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_diagnosis_with_k_quarantined_equals_clean_subset(self, jobs):
        program = get_bug("gzip")
        # Corrupt the last pruning seed (100 + 3): the surviving work is
        # exactly a 3-pruning-run diagnosis.
        quarantine = Quarantine()
        faulted = diagnose_failure(program, n_train_runs=3, n_pruning_runs=4,
                                   faults=FaultPlan(seed=0,
                                                    corrupt_run_seeds=(103,)),
                                   quarantine=quarantine, jobs=jobs)
        clean = diagnose_failure(program, n_train_runs=3, n_pruning_runs=3)
        assert quarantine.keys() == [103]
        assert faulted.quarantine == quarantine.report_dict()
        faulted.quarantine = None
        assert faulted == clean

    def test_all_training_runs_quarantined_aborts_with_report(self):
        program = get_bug("gzip")
        quarantine = Quarantine()
        report = diagnose_failure(
            program, n_train_runs=2, n_pruning_runs=2,
            faults=FaultPlan(seed=0, corrupt_run_seeds=(0, 1)),
            quarantine=quarantine)
        assert isinstance(report, DiagnosisReport)
        assert not report.found
        assert any("aborted" in note for note in report.notes)
        assert report.quarantine is not None
        assert report.quarantine["n_quarantined"] == 2


class TestKilledWorkerSpanStitching:
    """A worker killed mid-diagnosis still yields one coherent trace."""

    def _span_index(self, spans):
        index = {}
        stack = list(spans)
        while stack:
            span = stack.pop()
            index[span["id"]] = span
            stack.extend(span.get("children", []))
        return index

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_diagnosis_tree_flags_the_lost_run(self, jobs):
        program = get_bug("gzip")
        # Kill pruning seed 102 on every attempt; quarantine absorbs it.
        plan = FaultPlan(seed=0, kill_tasks=((102, 0), (102, 1), (102, 2)),
                         max_retries=2)
        quarantine = Quarantine()
        reg = telemetry.Registry(clock=telemetry.TickClock())
        with telemetry.use_registry(reg):
            report = diagnose_failure(program, faults=plan,
                                      quarantine=quarantine, jobs=jobs,
                                      **_RUNS)
        assert isinstance(report, DiagnosisReport)
        assert quarantine.keys() == [102]
        snap = reg.snapshot()
        index = self._span_index(snap["spans"])
        orphans = [s for s in index.values()
                   if s.get("status") == "orphaned"]
        assert len(orphans) == 1
        assert orphans[0]["name"] == "parallel.task"
        assert orphans[0]["attrs"]["key"] == 102
        # No dangling parents: every non-root span's parent exists.
        for span in index.values():
            parent = span.get("parent")
            assert parent is None or parent in index
        # The orphan sits under the pruning-runs dispatch chain.
        chain = []
        node = index[orphans[0]["parent"]]
        while node is not None:
            chain.append(node["name"])
            node = index.get(node.get("parent"))
        assert "diagnose.pruning_runs" in chain


class TestCrashResume:
    KWARGS = dict(n_train_runs=3, n_pruning_runs=4)

    def test_killed_diagnosis_resumes_to_identical_report(self, tmp_path):
        program = get_bug("gzip")
        uninterrupted = diagnose_failure(program, **self.KWARGS)
        path = str(tmp_path / "ck.json")
        # Kill pruning seed 102 on every attempt; with no quarantine the
        # retries exhaust and the diagnosis crashes mid-pruning.
        plan = FaultPlan(seed=0, kill_tasks=((102, 0), (102, 1), (102, 2)),
                         max_retries=2)
        with pytest.raises(WorkerKilled):
            diagnose_failure(program, faults=plan, checkpoint=path,
                             **self.KWARGS)
        saved = Checkpoint.load(path)
        assert "trained" in saved
        assert "pruning:100" in saved and "pruning:101" in saved
        assert "report" not in saved
        resumed = diagnose_failure(program, checkpoint=path, **self.KWARGS)
        assert resumed == uninterrupted
        # The whole report is now cached: a second resume replays it.
        again = diagnose_failure(program, checkpoint=path, **self.KWARGS)
        assert again == uninterrupted

    def test_resume_refuses_different_parameters(self, tmp_path):
        from repro.common.errors import CheckpointError

        program = get_bug("gzip")
        path = str(tmp_path / "ck.json")
        diagnose_failure(program, checkpoint=path, **self.KWARGS)
        with pytest.raises(CheckpointError):
            diagnose_failure(program, checkpoint=path, n_train_runs=3,
                             n_pruning_runs=9)

    def test_topology_search_resumes_to_identical_winner(self, tmp_path):
        import numpy as np

        program = get_bug("gzip")
        path = str(tmp_path / "search.json")
        trainer = OfflineTrainer()
        kwargs = dict(seq_lens=(2, 3), hidden_widths=(2, 3),
                      n_train_runs=3, n_test_runs=3, buggy=False)
        best0, choices0, _ = trainer.search(program, checkpoint=path,
                                            **kwargs)
        # Simulate a crash that lost one grid point: drop its snapshot
        # and resume -- only that point re-trains.
        saved = Checkpoint.load(path)
        assert saved.phases.pop("point:2-3") is not None
        saved.save()
        best1, choices1, _ = trainer.search(program, checkpoint=path,
                                            **kwargs)
        assert (best0.seq_len, best0.n_hidden) == (best1.seq_len,
                                                   best1.n_hidden)
        for a, b in zip(choices0, choices1):
            assert (a.seq_len, a.n_hidden, a.mispred_rate) == (
                b.seq_len, b.n_hidden, b.mispred_rate)
            assert np.array_equal(a.result.net.read_weights(),
                                  b.result.net.read_weights())


_RUN_CACHE = {}


def _correct_run():
    """One cached correct gzip run for the trace round-trip property."""
    if "run" not in _RUN_CACHE:
        _RUN_CACHE["run"] = run_program(get_bug("gzip"), seed=1, buggy=False)
    return _RUN_CACHE["run"]


_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2 ** 16),
    run_corrupt=st.floats(0.0, 0.5),
    worker_kill=st.floats(0.0, 0.3),
    weight_flip=st.floats(0.0, 1.0),
    fifo_overflow=st.floats(0.0, 0.05),
    max_retries=st.integers(0, 2),
)

_trace_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2 ** 16),
    trace_drop=st.floats(0.0, 0.5),
    trace_corrupt=st.floats(0.0, 0.5),
    trace_reorder=st.floats(0.0, 0.5),
)


@pytest.mark.slow
class TestNoFaultEscapesQuarantine:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plan=_plans)
    def test_diagnosis_always_completes(self, plan):
        program = get_bug("gzip")
        quarantine = Quarantine()
        report = diagnose_failure(program, n_train_runs=3, n_pruning_runs=3,
                                  faults=plan, quarantine=quarantine)
        assert isinstance(report, DiagnosisReport)
        if len(quarantine):
            assert report.quarantine == quarantine.report_dict()

    @pytest.mark.parametrize("fmt", ["jsonl", "columnar"])
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(plan=_trace_plans)
    def test_trace_round_trip_always_recovers(self, plan, fmt, tmp_path):
        run = _correct_run()
        path = tmp_path / f"t{plan.seed}.{fmt}"
        write_trace(run, path, faults=plan, trace_format=fmt)
        quarantine = Quarantine()
        back = read_trace(path, quarantine=quarantine)
        assert len(back.events) <= len(run.events)
        assert back.seed == run.seed

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(plan=_trace_plans)
    def test_same_plan_survivors_identical_across_formats(self, plan,
                                                          tmp_path):
        """The format-agnostic fault decisions damage the same records
        whether the writer emits JSON lines or packed columns."""
        run = _correct_run()
        jsonl_path = tmp_path / f"t{plan.seed}.jsonl"
        col_path = tmp_path / f"t{plan.seed}.columnar"
        write_trace(run, jsonl_path, faults=plan)
        write_trace(run, col_path, faults=plan, trace_format="columnar")
        a = read_trace(jsonl_path, recover=True)
        b = read_trace(col_path, recover=True)
        assert a.events == b.events
        assert (a.meta.get("skipped_records")
                == b.meta.get("skipped_records"))
