"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.sim.cache import Cache, CacheLine


class TestBasics:
    def test_miss_then_hit(self):
        c = Cache(n_sets=4, assoc=2, line_size=64)
        assert c.lookup(100) is None
        c.insert(100, "E")
        assert c.lookup(100) is not None
        assert 100 in c

    def test_line_alignment(self):
        c = Cache(n_sets=4, assoc=2, line_size=64)
        assert c.line_addr(130) == 128
        c.insert(130, "E")
        assert c.lookup(190) is not None  # same line
        assert c.lookup(192) is None      # next line

    def test_invalidate(self):
        c = Cache(n_sets=4, assoc=2, line_size=64)
        c.insert(100, "M")
        line = c.invalidate(100)
        assert line.state == "M"
        assert c.lookup(100) is None

    def test_lru_eviction_order(self):
        c = Cache(n_sets=1, assoc=2, line_size=64)
        c.insert(0, "E")
        c.insert(64, "E")
        c.lookup(0)              # touch 0: now 64 is LRU
        _, evicted = c.insert(128, "E")
        assert evicted.addr == 64

    def test_reinsert_updates_state(self):
        c = Cache(n_sets=1, assoc=2, line_size=64)
        c.insert(0, "E")
        line, evicted = c.insert(0, "M")
        assert evicted is None
        assert line.state == "M"

    def test_validation(self):
        with pytest.raises(ConfigError):
            Cache(n_sets=0, assoc=1, line_size=64)
        with pytest.raises(ConfigError):
            Cache(n_sets=1, assoc=0, line_size=64)


class TestLineMetadata:
    def test_word_granularity_writers(self):
        line = CacheLine(0)
        line.set_writer(0, 0x10, 1, word_granularity=True)
        line.set_writer(1, 0x14, 2, word_granularity=True)
        assert line.get_writer(0, True) == (0x10, 1)
        assert line.get_writer(1, True) == (0x14, 2)

    def test_line_granularity_single_writer(self):
        line = CacheLine(0)
        line.set_writer(0, 0x10, 1, word_granularity=False)
        line.set_writer(5, 0x14, 2, word_granularity=False)
        # one writer per line: the later store wins for every word
        assert line.get_writer(0, False) == (0x14, 2)
        assert line.get_writer(9, False) == (0x14, 2)

    def test_missing_writer(self):
        line = CacheLine(0)
        assert line.get_writer(3, True) is None


class TestPropertyLRU:
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_lru(self, accesses):
        """The cache behaves exactly like a reference LRU model."""
        assoc = 2
        c = Cache(n_sets=1, assoc=assoc, line_size=64)
        reference = []  # most recent last
        for slot in accesses:
            addr = slot * 64
            if c.lookup(addr) is not None:
                assert addr in reference
                reference.remove(addr)
                reference.append(addr)
            else:
                assert addr not in reference
                c.insert(addr, "E")
                if len(reference) >= assoc:
                    reference.pop(0)
                reference.append(addr)
            resident = {line.addr for line in c.resident_lines()}
            assert resident == set(reference)
