"""Task-parallel programming model (the paper's deferred future work).

Section IV.C: "We consider a general programming model using a thread
library e.g., pthread. Other models (e.g., task parallel) are left as a
future work." The challenge with task parallelism is that the mapping
from *logical work* to *threads* is scheduler-dependent: the same task
may run on any worker in any execution, so per-thread weights no longer
line up with per-task behaviour.

This module provides that model on top of the generator framework: a
:class:`TaskPool` program runs worker threads that pull task closures
from a lock-protected shared queue. Because ACT's pooled training
(one weight set replicated per core, the default of
:class:`~repro.core.offline.OfflineTrainer`) learns *communication
patterns* rather than thread identities, diagnosis carries over: the
included :class:`TaskGraphBug` demonstrates a cross-task order
violation being caught regardless of which workers execute the racing
tasks.
"""

from repro.common.errors import SimulatedFailure
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_kernel
from repro.workloads.synclib import barrier


class TaskPool(Program):
    """Generic work-stealing-style pool: subclasses provide tasks.

    Subclasses override :meth:`make_tasks`, returning a list of task
    generator functions ``task(ctx)``. Workers atomically pop the next
    task index from a shared cursor (a real load/store under a lock, so
    the pool's own communication is also visible to ACT) and run it.
    """

    name = "taskpool"

    def default_params(self):
        return {"n_workers": 2}

    def make_tasks(self, cm, mem, **params):
        raise NotImplementedError

    def finalize(self, instance, **params):
        """Hook for subclasses to attach a root cause etc."""
        return instance

    def build(self, n_workers=2, **params):
        cm = CodeMap()
        mem = AddressSpace()
        cursor = mem.var("task_cursor")
        l_cur = cm.load("pool_load_cursor", function="task_pool")
        s_cur = cm.store("pool_store_cursor", function="task_pool")
        s_init = cm.store("pool_init_cursor", function="task_pool")

        tasks = self.make_tasks(cm, mem, **params)
        n_tasks = len(tasks)

        def worker(wid):
            def body(ctx):
                if wid == 0:
                    yield ctx.store(s_init, cursor, value=0)
                    yield ctx.set_flag("pool_ready")
                else:
                    yield ctx.wait("pool_ready")
                while True:
                    yield ctx.acquire("pool_lock")
                    idx = yield ctx.load(l_cur, cursor)
                    idx = idx or 0
                    if idx >= n_tasks:
                        yield ctx.release("pool_lock")
                        break
                    yield ctx.store(s_cur, cursor, value=idx + 1)
                    yield ctx.release("pool_lock")
                    yield from tasks[idx](ctx)
                yield from barrier(ctx, "pool_done", wid, n_workers, 0)
            return body

        instance = ProgramInstance(self.name, cm,
                                   [worker(w) for w in range(n_workers)])
        return self.finalize(instance, **params)


@register_kernel
class TaskMapReduce(TaskPool):
    """Map-reduce over a task pool: N map tasks fill partial sums, one
    reduce task (queued last) combines them.

    Correct because the pool's FIFO cursor plus per-slot ready flags
    order the reduce after every map. The communication pattern --
    reduce-task loads reading map-task stores -- is inter- or
    intra-thread depending on which workers ran which tasks, exercising
    exactly the label nondeterminism that makes task parallelism hard
    for invariant schemes.
    """

    name = "taskmapreduce"

    def default_params(self):
        return {"n_workers": 2, "n_maps": 4, "items": 3}

    def make_tasks(self, cm, mem, n_maps=4, items=3):
        partial = mem.array("partials", n_maps)
        data = [mem.array(f"chunk{m}", items) for m in range(n_maps)]
        total = mem.var("total")

        s_data = cm.store("map_fill_item", function="map_task")
        l_data = cm.load("map_load_item", function="map_task")
        s_part = cm.store("map_store_partial", function="map_task")
        l_part = cm.load("reduce_load_partial", function="reduce_task")
        s_total = cm.store("reduce_store_total", function="reduce_task")
        l_total = cm.load("reduce_check_total", function="reduce_task")

        def map_task(m):
            def task(ctx):
                acc = 0
                for i in range(items):
                    yield ctx.store(s_data, data[m] + 4 * i, value=m + i)
                for i in range(items):
                    v = yield ctx.load(l_data, data[m] + 4 * i)
                    acc += v or 0
                yield ctx.store(s_part, partial + 4 * m, value=acc)
                yield ctx.set_flag(f"map{m}_done")
            return task

        def reduce_task(ctx):
            acc = 0
            for m in range(n_maps):
                yield ctx.wait(f"map{m}_done")
                v = yield ctx.load(l_part, partial + 4 * m)
                acc += v or 0
            yield ctx.store(s_total, total, value=acc)
            yield ctx.load(l_total, total)

        return [map_task(m) for m in range(n_maps)] + [reduce_task]


@register_kernel
class TaskGraphBug(TaskPool):
    """Cross-task order violation under the task-parallel model.

    A producer task writes a result buffer and *then* publishes its
    length; a consumer task (correctly) waits for the publication flag.
    The buggy build drops the wait: whichever worker runs the consumer
    can read the length before the producer's final store and walk into
    the unpublished region -- reading the pool's scratch word instead.
    The racing tasks land on different workers in some schedules and
    the same worker in others, so the invalid dependence appears with
    both thread labels across failure runs.
    """

    name = "taskgraphbug"

    def default_params(self):
        return {"n_workers": 2, "buggy": False, "rows": 5}

    def make_tasks(self, cm, mem, buggy=False, rows=5):
        buf = mem.array("result_buf", rows)
        scratch = mem.var("pool_scratch", packed=True)
        length = mem.var("result_len")

        s_scratch = cm.store("init_scratch", function="pool_setup")
        s_len0 = cm.store("init_len", function="pool_setup")
        s_row = cm.store("producer_store_row", function="produce_task")
        s_len = cm.store("producer_publish_len", function="produce_task")
        l_len = cm.load("consumer_load_len", function="consume_task")
        l_row = cm.load("consumer_load_row", function="consume_task")
        s_out = cm.store("consumer_store_out", function="consume_task")
        out = mem.array("consumer_out", rows + 2)

        self._root = {(s_scratch, l_row)}

        def setup_task(ctx):
            yield ctx.store(s_scratch, scratch, value=0xFEED)
            yield ctx.store(s_len0, length, value=0)
            yield ctx.set_flag("setup_done")

        def produce_task(ctx):
            yield ctx.wait("setup_done")
            for r in range(rows):
                yield ctx.store(s_row, buf + 4 * r, value=r)
                if buggy and r == 1:
                    # Publishes a speculative length mid-production.
                    yield ctx.store(s_len, length, value=rows + 1)
                    yield ctx.set_flag("len_visible")
                    yield ctx.wait("consumed")
            yield ctx.store(s_len, length, value=rows)
            yield ctx.set_flag("published")

        def consume_task(ctx):
            yield ctx.wait("setup_done")
            if buggy:
                yield ctx.wait("len_visible")
            else:
                yield ctx.wait("published")
            n = yield ctx.load(l_len, length)
            for r in range(n or 0):
                v = yield ctx.load(l_row, buf + 4 * r if r < rows
                                   else scratch)
                yield ctx.store(s_out, out + 4 * r, value=v)
                if r >= rows:
                    raise SimulatedFailure(
                        f"taskgraph: consumed unpublished row {r} "
                        f"(read {v:#x})", pc=l_row)
            yield ctx.set_flag("consumed")

        return [setup_task, produce_task, consume_task]

    def finalize(self, instance, **params):
        instance.root_cause = getattr(self, "_root", None)
        return instance
