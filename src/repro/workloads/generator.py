"""Seeded random concurrent-program generator with injected bugs.

The paper evaluates ACT on 11 hand-ported bugs (Table V) and 5 injected
ones (Table VI) -- a fixed benchmark. This module turns that benchmark
into an unbounded, *measurable* quality surface: from a single integer
seed it generates a complete concurrent program whose communication
structure mirrors the bundled kernels (regular owner-computes loops,
producer/consumer queues, pipelines, pointer chasing) and weaves in
exactly one bug from a catalogue of archetypes, tagging the
machine-readable ground-truth root-cause dependence the diagnosis must
surface.

Determinism is the contract everything above relies on: a
:class:`ProgramSpec` is a pure function of ``(seed, archetype, motif)``,
and :meth:`GeneratedProgram.build` derives every structural choice
(thread count, region shapes, payload values) from
:func:`repro.common.rng.make_rng` streams keyed by the spec -- never
from global RNG state -- so the same seed yields a byte-identical
program (and, downstream, byte-identical corpus metrics) in any
process, serial or parallel.

Bug archetypes (each forces its failing interleaving deterministically
with one-shot flags, exactly like the hand-written Table V bugs):

- ``atomicity``: a two-phase update (mark busy, write, mark ready)
  races a reader that observes the torn BUSY marker.
- ``order``: missing join -- the main thread frees a shared descriptor
  while a worker still reads it (the pbzip2 shape).
- ``buffer_index``: an unchecked resize publishes a too-large limit and
  the reader walks one word past its buffer into an adjacent object.
- ``use_after_reset``: a recycled slot is cleared for the next round
  while a straggling reader of the previous round still expects its
  value.
- ``off_by_one``: a sequential semantic bug -- the fill loop writes one
  element short and the checker reads the stale cleared word.

``buggy=False`` builds the properly synchronised variant used for
offline training and pruning; it passes its own oracle under every
scheduler seed. ``buggy=True`` ends in a
:class:`~repro.common.errors.SimulatedFailure` whose root-cause
dependence actually occurs in the failing interleaving.
"""

import zlib
from dataclasses import dataclass

from repro import telemetry
from repro.common.errors import ReproError, SimulatedFailure
from repro.common.rng import make_rng
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)

ARCHETYPES = ("atomicity", "order", "buffer_index", "use_after_reset",
              "off_by_one")
MOTIFS = ("regular", "producer_consumer", "pipeline", "pointer_chase")

_NAME_PREFIX = "gen"
_SECRET = 0xBAD
_BUSY, _READY = 0, 1


@dataclass(frozen=True)
class ProgramSpec:
    """Deterministic recipe for one generated program."""

    seed: int
    archetype: str
    motif: str
    n_workers: int
    rounds: int
    width: int

    @classmethod
    def from_seed(cls, seed, archetype=None, motif=None):
        """Derive a spec from ``seed``; unset choices are drawn from it."""
        rng = make_rng(seed, stream=zlib.crc32(b"genspec") & 0xFFFF)
        # Always consume the same draws so a spec rebuilt from its name
        # (explicit archetype/motif) has the same structure as one drawn
        # freely from the seed.
        drawn_archetype = rng.choice(ARCHETYPES)
        drawn_motif = rng.choice(MOTIFS)
        archetype = archetype or drawn_archetype
        motif = motif or drawn_motif
        if archetype not in ARCHETYPES:
            raise ReproError(f"unknown bug archetype {archetype!r}; "
                             f"known: {list(ARCHETYPES)}")
        if motif not in MOTIFS:
            raise ReproError(f"unknown motif {motif!r}; "
                             f"known: {list(MOTIFS)}")
        # Modest shapes keep each program's unique-window space small
        # enough for a handful of training traces to cover (the same
        # regime as the bundled kernels -- see EXPERIMENTS.md).
        return cls(seed=seed, archetype=archetype, motif=motif,
                   n_workers=rng.randint(2, 3),
                   rounds=rng.randint(3, 4),
                   width=rng.randint(3, 5))

    @property
    def name(self):
        return (f"{_NAME_PREFIX}-{self.archetype}-{self.motif}-"
                f"s{self.seed}")


def parse_generated_name(name):
    """Inverse of :attr:`ProgramSpec.name`; None if not a generated name.

    Grammar: ``gen-<archetype>-<motif>-s<seed>`` (archetypes and motifs
    contain ``_``, never ``-``, so the split is unambiguous).
    """
    parts = name.split("-")
    if (len(parts) != 4 or parts[0] != _NAME_PREFIX
            or not parts[3].startswith("s")):
        return None
    archetype, motif, seed_part = parts[1], parts[2], parts[3][1:]
    if archetype not in ARCHETYPES or motif not in MOTIFS:
        return None
    try:
        seed = int(seed_part)
    except ValueError:
        return None
    return ProgramSpec.from_seed(seed, archetype=archetype, motif=motif)


def generate_program(seed, archetype=None, motif=None):
    """Generate a bug program for ``seed`` (convenience wrapper)."""
    return GeneratedProgram(ProgramSpec.from_seed(seed, archetype=archetype,
                                                  motif=motif))


class GeneratedProgram(Program):
    """A generated workload: one motif of benign traffic + one bug."""

    def __init__(self, spec):
        self.spec = spec
        self.name = spec.name

    def default_params(self):
        return {"buggy": False}

    # -- motif scaffolds ----------------------------------------------
    #
    # Each motif builder returns (setup, round_fn):
    #   setup(ctx)          -- main-thread stores initialising the
    #                          shared region (before "ready").
    #   round_fn(ctx, t, r) -- one round of benign traffic on worker t.
    # Flag protocols only ever wait on flags set in the same or an
    # earlier round, so the correct variant is deadlock-free under any
    # scheduler seed.

    def _motif_regular(self, cm, mem, spec, rng):
        n, w = spec.n_workers, spec.width
        grid = mem.array("grid", n * w)
        s_init = cm.store("grid_init", function="main")
        s_cell = cm.store("update_cell", function="sweep")
        l_cell = cm.load("load_cell", function="sweep")
        l_bnd = cm.load("load_boundary", function="sweep")
        seeds = [rng.randrange(64) for _ in range(n * w)]

        def setup(ctx):
            for i in range(n * w):
                yield ctx.store(s_init, grid + 4 * i, value=seeds[i])

        def round_fn(ctx, t, r):
            base = grid + 4 * t * w
            if r > 0:
                # Boundary exchange: read the left neighbour's last
                # cell once it finished the previous round.
                left = (t - 1) % n
                yield ctx.wait(f"sweep.{left}.{r - 1}")
                yield ctx.load(l_bnd, grid + 4 * (left * w + w - 1))
            for i in range(w):
                v = yield ctx.load(l_cell, base + 4 * i)
                yield ctx.store(s_cell, base + 4 * i, value=(v or 0) + 1)
            yield ctx.set_flag(f"sweep.{t}.{r}")

        return setup, round_fn

    def _motif_producer_consumer(self, cm, mem, spec, rng):
        n, w = spec.n_workers, spec.width
        queue = mem.array("queue", w)
        s_put = cm.store("queue_put", function="producer")
        l_get = cm.load("queue_get", function="consumer")
        a_work = cm.alu("consume_item", function="consumer")
        payload = [rng.randrange(1, 100) for _ in range(spec.rounds * n)]

        def setup(ctx):
            # Main is the producer: one item per (round, worker).
            for i, v in enumerate(payload):
                yield ctx.store(s_put, queue + 4 * (i % w), value=v)
                yield ctx.set_flag(f"item.{i}")

        def round_fn(ctx, t, r):
            i = r * n + t
            yield ctx.wait(f"item.{i}")
            yield ctx.load(l_get, queue + 4 * (i % w))
            yield ctx.alu(a_work)

        return setup, round_fn

    def _motif_pipeline(self, cm, mem, spec, rng):
        n, w = spec.n_workers, spec.width
        stages = mem.array("stage_bufs", (n + 1) * w)
        s_src = cm.store("fill_source", function="main")
        l_in = cm.load("stage_load", function="stage")
        s_out = cm.store("stage_store", function="stage")
        values = [rng.randrange(1, 50) for _ in range(spec.rounds)]

        def setup(ctx):
            for r, v in enumerate(values):
                yield ctx.store(s_src, stages + 4 * (r % w), value=v)
                yield ctx.set_flag(f"st.0.{r}")

        def round_fn(ctx, t, r):
            # Worker t is pipeline stage t+1; item r flows stage to
            # stage, each stage reading its input buffer and writing
            # its output buffer.
            yield ctx.wait(f"st.{t}.{r}")
            slot = r % w
            v = yield ctx.load(l_in, stages + 4 * (t * w + slot))
            yield ctx.store(s_out, stages + 4 * ((t + 1) * w + slot),
                            value=(v or 0) + 1)
            yield ctx.set_flag(f"st.{t + 1}.{r}")

        return setup, round_fn

    def _motif_pointer_chase(self, cm, mem, spec, rng):
        n, w = spec.n_workers, spec.width
        nodes = n * w
        nxt = mem.array("next_ptrs", nodes)
        val = mem.array("node_vals", nodes)
        s_next = cm.store("link_node", function="main")
        s_val = cm.store("init_value", function="main")
        l_next = cm.load("chase_next", function="walk")
        l_val = cm.load("chase_value", function="walk")
        a_acc = cm.alu("accumulate", function="walk")
        # A shuffled permutation as the successor array: it may split
        # into several cycles, but every hop stays inside [0, nodes).
        perm = list(range(1, nodes)) + [0]
        rng.shuffle(perm)

        def setup(ctx):
            for i in range(nodes):
                yield ctx.store(s_next, nxt + 4 * i, value=perm[i])
                yield ctx.store(s_val, val + 4 * i, value=i * 3)

        def round_fn(ctx, t, r):
            node = (t * w + r) % nodes
            for _ in range(w):
                nx = yield ctx.load(l_next, nxt + 4 * node)
                yield ctx.load(l_val, val + 4 * node)
                yield ctx.alu(a_acc)
                node = nx if nx is not None else 0

        return setup, round_fn

    # -- bug archetypes -----------------------------------------------
    #
    # Each weaver allocates its own shared objects and pcs, then
    # returns (arch_setup, arch_round, arch_main, root_cause):
    #   arch_setup(ctx)        -- main-thread initialisation stores.
    #   arch_round(ctx, t, r)  -- injected per worker per round.
    #   arch_main(ctx)         -- main-thread teardown (after setup and
    #                             all producing is done).
    # The buggy interleaving is forced with one-shot flags; the run
    # ends in SimulatedFailure at the bad load, so the ground-truth
    # dependence is the newest Debug Buffer entry at failure time.

    def _arch_atomicity(self, cm, mem, spec, buggy):
        val = mem.var("shared_val")
        state = mem.var("val_state")
        s_val0 = cm.store("init_val", function="main")
        s_state0 = cm.store("init_state", function="main")
        s_begin = cm.store("update_begin", function="update")
        l_get = cm.load("update_load", function="update")
        s_put = cm.store("update_store", function="update")
        s_end = cm.store("update_end", function="update")
        l_state = cm.load("reader_load_state", function="reader")
        l_val = cm.load("reader_load_val", function="reader")
        last = spec.rounds - 1

        def arch_setup(ctx):
            yield ctx.store(s_val0, val, value=0)
            yield ctx.store(s_state0, state, value=_READY)

        def arch_round(ctx, t, r):
            race = buggy and r == last
            if t == 0:
                # The writer: a two-phase update that must be atomic.
                if not race:
                    yield ctx.acquire("val_lock")
                yield ctx.store(s_begin, state, value=_BUSY)
                if race:
                    yield ctx.set_flag("torn.begun")
                    yield ctx.wait("torn.observed")
                v = yield ctx.load(l_get, val)
                yield ctx.store(s_put, val, value=(v or 0) + 1)
                yield ctx.store(s_end, state, value=_READY)
                if not race:
                    yield ctx.release("val_lock")
            elif t == 1:
                # The reader: may only observe READY states.
                if race:
                    yield ctx.wait("torn.begun")
                else:
                    yield ctx.acquire("val_lock")
                st = yield ctx.load(l_state, state)
                if st == _BUSY:
                    raise SimulatedFailure(
                        f"{spec.name}: reader observed torn BUSY state",
                        pc=l_state)
                yield ctx.load(l_val, val)
                if not race:
                    yield ctx.release("val_lock")

        def arch_main(ctx):
            return
            yield  # pragma: no cover - generator-typed empty body

        return arch_setup, arch_round, arch_main, {(s_begin, l_state)}

    def _arch_order(self, cm, mem, spec, buggy):
        desc = mem.var("descriptor")
        s_dinit = cm.store("alloc_descriptor", function="main")
        s_dfree = cm.store("free_descriptor", function="main")
        l_desc = cm.load("use_descriptor", function="worker")
        victim = spec.n_workers - 1
        last = spec.rounds - 1

        def arch_setup(ctx):
            yield ctx.store(s_dinit, desc, value=1)

        def arch_round(ctx, t, r):
            if buggy and t == victim and r == last:
                # The worker announces its final use; main "joins" too
                # early and frees first.
                yield ctx.set_flag("draining")
                yield ctx.wait("freed")
            v = yield ctx.load(l_desc, desc)
            if not v:
                raise SimulatedFailure(
                    f"{spec.name}: use of freed descriptor", pc=l_desc)

        def arch_main(ctx):
            if buggy:
                yield ctx.wait("draining")
                yield ctx.store(s_dfree, desc, value=0)
                yield ctx.set_flag("freed")
            else:
                for t in range(spec.n_workers):
                    yield ctx.wait(f"worker_done.{t}")
                yield ctx.store(s_dfree, desc, value=0)

        return arch_setup, arch_round, arch_main, {(s_dfree, l_desc)}

    def _arch_buffer_index(self, cm, mem, spec, buggy):
        w = spec.width
        buf = mem.array("shared_buf", w)
        secret = mem.var("adjacent_obj", packed=True)
        limit = mem.var("buf_limit")
        s_binit = cm.store("init_buf", function="main")
        s_sec = cm.store("init_adjacent", function="main")
        s_lim = cm.store("init_limit", function="main")
        s_badlim = cm.store("unchecked_resize", function="resize")
        l_lim = cm.load("scan_load_limit", function="scan")
        l_buf = cm.load("scan_load_elem", function="scan")
        last = spec.rounds - 1

        def arch_setup(ctx):
            for i in range(w):
                yield ctx.store(s_binit, buf + 4 * i, value=100 + i)
            yield ctx.store(s_sec, secret, value=_SECRET)
            yield ctx.store(s_lim, limit, value=w)

        def arch_round(ctx, t, r):
            if t == 1 and buggy and r == last:
                # The corrupting thread publishes a limit one past the
                # buffer, unchecked, before the scanner reads it.
                yield ctx.store(s_badlim, limit, value=w + 1)
                yield ctx.set_flag("clobbered")
            if t == 0:
                if buggy and r == last:
                    yield ctx.wait("clobbered")
                n = yield ctx.load(l_lim, limit)
                for i in range(n or 0):
                    v = yield ctx.load(l_buf, buf + 4 * i)
                    if v == _SECRET:
                        raise SimulatedFailure(
                            f"{spec.name}: scan read past buffer into "
                            "adjacent object", pc=l_buf)

        def arch_main(ctx):
            return
            yield  # pragma: no cover - generator-typed empty body

        return arch_setup, arch_round, arch_main, {(s_badlim, l_lim),
                                                   (s_sec, l_buf)}

    def _arch_use_after_reset(self, cm, mem, spec, buggy):
        slot = mem.var("session_slot")
        s_set = cm.store("slot_set", function="owner")
        s_reset = cm.store("slot_reset", function="recycler")
        l_slot = cm.load("slot_use", function="reader")
        readers = list(range(1, spec.n_workers))
        victim = readers[-1]
        last = spec.rounds - 1

        def arch_setup(ctx):
            return
            yield  # pragma: no cover - generator-typed empty body

        def arch_round(ctx, t, r):
            if t == 0:
                # The owner publishes this round's session value.
                if r > 0:
                    yield ctx.wait(f"slot_clear.{r - 1}")
                yield ctx.store(s_set, slot, value=r + 1)
                yield ctx.set_flag(f"slot_ready.{r}")
            else:
                yield ctx.wait(f"slot_ready.{r}")
                if buggy and t == victim and r == last:
                    # The straggler: recycled before it reads.
                    yield ctx.wait(f"slot_clear.{r}")
                v = yield ctx.load(l_slot, slot)
                if not v:
                    raise SimulatedFailure(
                        f"{spec.name}: read of recycled session slot",
                        pc=l_slot)
                yield ctx.set_flag(f"slot_used.{r}.{t}")

        def arch_main(ctx):
            # Main recycles the slot between rounds; in the buggy run
            # it skips waiting for the victim's last-round use.
            for r in range(spec.rounds):
                yield ctx.wait(f"slot_ready.{r}")
                for t in readers:
                    if buggy and t == victim and r == last:
                        continue
                    yield ctx.wait(f"slot_used.{r}.{t}")
                yield ctx.store(s_reset, slot, value=0)
                yield ctx.set_flag(f"slot_clear.{r}")

        return arch_setup, arch_round, arch_main, {(s_reset, l_slot)}

    def _arch_off_by_one(self, cm, mem, spec, buggy):
        m = spec.width
        arr = mem.array("fill_arr", m)
        s_zero = cm.store("clear_elem", function="fill")
        s_fill = cm.store("fill_elem", function="fill")
        l_chk = cm.load("check_elem", function="check")
        fill_n = m - 1 if buggy else m

        def arch_setup(ctx):
            return
            yield  # pragma: no cover - generator-typed empty body

        def arch_round(ctx, t, r):
            return
            yield  # pragma: no cover - generator-typed empty body

        def arch_main(ctx):
            # A sequential semantic bug on the main thread, after the
            # motif work: clear, fill (one short when buggy), verify.
            for i in range(m):
                yield ctx.store(s_zero, arr + 4 * i, value=0)
            for i in range(fill_n):
                yield ctx.store(s_fill, arr + 4 * i, value=10 + i)
            for i in range(m):
                v = yield ctx.load(l_chk, arr + 4 * i)
                if not v:
                    raise SimulatedFailure(
                        f"{spec.name}: checker read unfilled element "
                        f"{i}", pc=l_chk)

        return arch_setup, arch_round, arch_main, {(s_zero, l_chk)}

    # -- assembly ------------------------------------------------------

    def build(self, buggy=False):
        spec = self.spec
        cm = CodeMap()
        mem = AddressSpace()
        rng = make_rng(spec.seed, stream=zlib.crc32(b"genbuild") & 0xFFFF)

        motif_builder = getattr(self, f"_motif_{spec.motif}")
        arch_builder = getattr(self, f"_arch_{spec.archetype}")
        setup, round_fn = motif_builder(cm, mem, spec, rng)
        arch_setup, arch_round, arch_main, root = arch_builder(
            cm, mem, spec, buggy)

        def main(ctx):
            yield from arch_setup(ctx)
            yield from setup(ctx)
            yield ctx.set_flag("ready")
            yield from arch_main(ctx)

        def worker_for(t):
            def worker(ctx):
                yield ctx.wait("ready")
                for r in range(spec.rounds):
                    yield from round_fn(ctx, t, r)
                    yield from arch_round(ctx, t, r)
                yield ctx.set_flag(f"worker_done.{t}")
            return worker

        bodies = [main] + [worker_for(t) for t in range(spec.n_workers)]
        inst = ProgramInstance(spec.name, cm, bodies,
                               params={"buggy": buggy,
                                       "archetype": spec.archetype,
                                       "motif": spec.motif,
                                       "seed": spec.seed})
        inst.root_cause = root
        tele = telemetry.get_registry()
        if tele.enabled:
            tele.inc("gen.programs_built")
        return inst
