"""Workloads: a mini concurrent-program framework plus kernels and bugs.

Programs are written as generator threads that yield typed operations
(loads, stores, branches, ALU ops, synchronisation). A seeded scheduler
interleaves them, producing :class:`~repro.trace.events.TraceRun` objects
-- the same artifact the paper collects with PIN, but with controllable,
reproducible interleaving so concurrency bugs can be injected and
triggered deterministically.
"""

from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
    Scheduler,
    ThreadCtx,
    run_program,
)
from repro.workloads.generator import (
    ARCHETYPES,
    MOTIFS,
    GeneratedProgram,
    ProgramSpec,
    generate_program,
)
from repro.workloads.registry import (
    all_bug_names,
    all_kernel_names,
    get_bug,
    get_kernel,
    get_workload,
)

__all__ = [
    "AddressSpace",
    "CodeMap",
    "Program",
    "ProgramInstance",
    "Scheduler",
    "ThreadCtx",
    "run_program",
    "ARCHETYPES",
    "MOTIFS",
    "GeneratedProgram",
    "ProgramSpec",
    "generate_program",
    "all_bug_names",
    "all_kernel_names",
    "get_bug",
    "get_kernel",
    "get_workload",
]
