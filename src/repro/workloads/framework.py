"""Mini concurrent-program framework.

This is the substrate the paper gets for free from real binaries + PIN:
multithreaded programs whose dynamic memory-instruction streams we can
record. Writing workloads as Python generators gives us something real
binaries cannot: *deterministic, seed-controlled interleaving*, which is
what lets the repo trigger the paper's concurrency bugs on demand.

A program thread is a generator function ``body(ctx)`` that yields
operations built by its :class:`ThreadCtx`:

- ``value = yield ctx.load(pc, addr)`` -- shared load; the scheduler
  commits the event and sends back the current memory value.
- ``yield ctx.store(pc, addr, value)`` -- shared store.
- ``yield ctx.branch(pc, taken)`` / ``yield ctx.alu(pc)``.
- ``yield ctx.wait(flag)`` / ``yield ctx.set_flag(flag)`` -- one-shot
  event synchronisation (used by bug programs to force interleavings).
- ``yield ctx.acquire(lock)`` / ``yield ctx.release(lock)`` -- mutual
  exclusion.

Memory values live in a scheduler-owned dict keyed by word address, so
value semantics are exactly sequential consistency in trace order.
"""

import enum
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import telemetry
from repro.common.errors import ReproError, SimulatedFailure, TraceError
from repro.common.rng import make_rng
from repro.trace.events import EventKind, TraceEvent, TraceRun

WORD_SIZE = 4

_PC_BASE = 0x1000
_STACK_BASE = 0x7FFF_0000
_STACK_STRIDE = 0x1_0000


@dataclass(frozen=True)
class CodeSite:
    """Static metadata for one instruction address."""

    pc: int
    function: str
    label: str
    kind: EventKind


class CodeMap:
    """Allocates static instruction addresses and remembers their metadata.

    Workload builders allocate one pc per source location, so RAW
    dependences are expressed in terms of stable instruction addresses
    across runs -- the property the paper's invariants rely on.
    """

    def __init__(self):
        self._sites: Dict[int, CodeSite] = {}
        self._by_label: Dict[str, int] = {}
        self._next_pc = _PC_BASE

    def alloc(self, function, label, kind):
        """Allocate a pc for instruction ``label`` in ``function``."""
        key = f"{function}:{label}"
        if key in self._by_label:
            raise ReproError(f"duplicate code label {key!r}")
        pc = self._next_pc
        self._next_pc += WORD_SIZE
        self._sites[pc] = CodeSite(pc, function, label, kind)
        self._by_label[key] = pc
        return pc

    def load(self, label, function="main"):
        return self.alloc(function, label, EventKind.LOAD)

    def store(self, label, function="main"):
        return self.alloc(function, label, EventKind.STORE)

    def branch(self, label, function="main"):
        return self.alloc(function, label, EventKind.BRANCH)

    def alu(self, label, function="main"):
        return self.alloc(function, label, EventKind.ALU)

    def site(self, pc):
        return self._sites[pc]

    def pc_of(self, label, function="main"):
        return self._by_label[f"{function}:{label}"]

    def function_of(self, pc):
        return self._sites[pc].function

    def describe(self, pc):
        s = self._sites.get(pc)
        if s is None:
            return f"pc={pc:#x}"
        return f"{s.function}:{s.label}"

    def pcs_in_function(self, function):
        return [pc for pc, s in self._sites.items() if s.function == function]

    def memory_pcs(self):
        """Sorted pcs of the memory (load/store) instructions.

        The public view consumers like :class:`~repro.core.encoding.
        DepEncoder` need: only memory instructions participate in RAW
        dependences.
        """
        return sorted(pc for pc, s in self._sites.items()
                      if s.kind.is_memory())

    def store_pcs(self):
        """Sorted pcs of the store instructions (the negative-example
        corruption universe of offline training)."""
        return sorted(pc for pc, s in self._sites.items()
                      if s.kind == EventKind.STORE)

    def __len__(self):
        return len(self._sites)


class AddressSpace:
    """Allocates data addresses for named variables/arrays.

    Distinct objects are aligned to ``alignment`` bytes by default
    (like a real allocator's size classes), so false sharing between
    *different* program objects only appears when the cache-line size
    exceeds the alignment; sharing within one array is preserved.
    Pass ``packed=True`` to allocate at the current cursor instead --
    bug models use it for deliberately adjacent objects (overflow
    targets).
    """

    def __init__(self, base=0x10_0000, alignment=64):
        self._next = base
        self._alignment = alignment
        self._vars: Dict[str, int] = {}

    def _alloc(self, name, n_bytes, packed):
        if name not in self._vars:
            if not packed and self._alignment > 1:
                rem = self._next % self._alignment
                if rem:
                    self._next += self._alignment - rem
            self._vars[name] = self._next
            self._next += n_bytes
        return self._vars[name]

    def var(self, name, packed=False):
        """Allocate (or look up) a single-word variable."""
        return self._alloc(name, WORD_SIZE, packed)

    def array(self, name, n_words, packed=False):
        """Allocate (or look up) an array of ``n_words`` words; return base."""
        return self._alloc(name, n_words * WORD_SIZE, packed)

    def align_to(self, boundary):
        """Round the allocation cursor up to ``boundary`` bytes."""
        rem = self._next % boundary
        if rem:
            self._next += boundary - rem

    def addr_of(self, name):
        return self._vars[name]


class _CtrlKind(enum.Enum):
    WAIT = "wait"
    SET = "set"
    ACQUIRE = "acquire"
    RELEASE = "release"
    YIELD = "yield"


@dataclass(frozen=True)
class _Ctrl:
    """A scheduler-directed (non-traced) operation yielded by a thread."""

    kind: _CtrlKind
    name: str = ""


class ThreadCtx:
    """Per-thread handle used by generator bodies to build operations."""

    def __init__(self, tid):
        self.tid = tid

    def load(self, pc, addr):
        return TraceEvent(self.tid, pc, EventKind.LOAD, addr=addr)

    def store(self, pc, addr, value=None):
        # Values ride along out-of-band (the scheduler reads _value).
        ev = TraceEvent(self.tid, pc, EventKind.STORE, addr=addr)
        object.__setattr__(ev, "_value", value)
        return ev

    def stack_load(self, pc, slot=0):
        addr = _STACK_BASE + self.tid * _STACK_STRIDE + slot * WORD_SIZE
        return TraceEvent(self.tid, pc, EventKind.LOAD, addr=addr, is_stack=True)

    def stack_store(self, pc, slot=0, value=None):
        addr = _STACK_BASE + self.tid * _STACK_STRIDE + slot * WORD_SIZE
        ev = TraceEvent(self.tid, pc, EventKind.STORE, addr=addr, is_stack=True)
        object.__setattr__(ev, "_value", value)
        return ev

    def branch(self, pc, taken):
        return TraceEvent(self.tid, pc, EventKind.BRANCH, taken=bool(taken))

    def alu(self, pc):
        return TraceEvent(self.tid, pc, EventKind.ALU)

    @staticmethod
    def wait(flag):
        """Block until another thread sets ``flag``."""
        return _Ctrl(_CtrlKind.WAIT, flag)

    @staticmethod
    def set_flag(flag):
        return _Ctrl(_CtrlKind.SET, flag)

    @staticmethod
    def acquire(lock):
        return _Ctrl(_CtrlKind.ACQUIRE, lock)

    @staticmethod
    def release(lock):
        return _Ctrl(_CtrlKind.RELEASE, lock)

    @staticmethod
    def sched_yield():
        """Hint the scheduler to switch threads (no trace event)."""
        return _Ctrl(_CtrlKind.YIELD)


@dataclass
class ProgramInstance:
    """A built program, ready to run: static code plus thread bodies."""

    name: str
    code_map: CodeMap
    bodies: List[Callable]  # body(ctx) -> generator
    params: dict = field(default_factory=dict)
    # Ground truth for bug programs: the invalid RAW dependence(s) a
    # correct diagnosis must surface, as (store_pc, load_pc) pairs.
    root_cause: Optional[set] = None

    @property
    def n_threads(self):
        return len(self.bodies)


class Program:
    """Base class for workloads. Subclasses override :meth:`build`."""

    name = "program"

    def build(self, **params) -> ProgramInstance:
        raise NotImplementedError

    def default_params(self):
        return {}

    def params_for_seed(self, seed):
        """Per-run parameter variation (e.g. input data derived from the
        run seed). Explicit caller params override these."""
        return {}


class Scheduler:
    """Seeded interleaving scheduler with quantum bursts.

    Each scheduling decision picks a runnable thread and runs it for a
    geometric-length burst of operations (mimicking OS quanta), which
    produces realistic interleavings that still vary run-to-run with the
    seed.
    """

    def __init__(self, seed=0, switch_prob=0.15, max_steps=2_000_000):
        self.seed = seed
        self.switch_prob = switch_prob
        self.max_steps = max_steps

    def run(self, instance):
        """Execute ``instance``; return a :class:`TraceRun`."""
        # crc32, not hash(): str hashes are salted per process and the
        # interleaving must be reproducible across runs.
        rng = make_rng(self.seed,
                       stream=zlib.crc32(instance.name.encode()) & 0xFFFF)
        gens = []
        for tid, body in enumerate(instance.bodies):
            gens.append(body(ThreadCtx(tid)))
        alive = set(range(len(gens)))
        blocked: Dict[int, _Ctrl] = {}
        flags = set()
        locks: Dict[str, int] = {}
        memory: Dict[int, object] = {}
        events = []
        failure = None
        send_values: Dict[int, object] = {tid: None for tid in alive}

        tele = telemetry.get_registry()
        # The registry clock (not perf_counter directly) keeps the
        # events/sec gauge deterministic under an injected TickClock.
        started = tele.clock() if tele.enabled else 0.0
        quanta = 0

        current = 0 if alive else None
        steps = 0
        while alive:
            steps += 1
            if steps > self.max_steps:
                raise TraceError(
                    f"{instance.name}: exceeded {self.max_steps} steps "
                    "(possible livelock)")
            runnable = [t for t in sorted(alive)
                        if self._is_runnable(t, blocked, flags, locks)]
            if not runnable:
                raise TraceError(f"{instance.name}: deadlock ({blocked})")
            if current not in runnable or rng.random() < self.switch_prob:
                current = rng.choice(runnable)
                quanta += 1
            tid = current

            pending = blocked.pop(tid, None)
            if pending is not None:
                self._apply_ctrl(tid, pending, flags, locks)
            try:
                item = gens[tid].send(send_values[tid])
            except StopIteration:
                alive.discard(tid)
                continue
            except SimulatedFailure as f:
                failure = f
                if failure.tid is None:
                    failure.tid = tid
                break
            send_values[tid] = None

            if isinstance(item, _Ctrl):
                if item.kind == _CtrlKind.YIELD:
                    current = None  # force a re-pick next step
                elif self._ctrl_blocks(item, flags, locks, tid):
                    blocked[tid] = item
                else:
                    self._apply_ctrl(tid, item, flags, locks)
                continue

            events.append(item)
            if item.kind == EventKind.LOAD:
                send_values[tid] = memory.get(item.addr, 0)
            elif item.kind == EventKind.STORE:
                memory[item.addr] = getattr(item, "_value", None)

        if tele.enabled:
            elapsed = tele.clock() - started
            tele.inc("sched.runs")
            tele.inc("sched.steps", steps)
            tele.inc("sched.quanta", quanta)
            tele.inc("sched.events", len(events))
            if failure is not None:
                tele.inc("sched.failed_runs")
            if elapsed > 0:
                tele.set_gauge("sched.events_per_sec", len(events) / elapsed)
            tele.observe("sched.events_per_run", len(events))

        return TraceRun(
            events=events,
            failed=failure is not None,
            failure=failure,
            code_map=instance.code_map,
            n_threads=instance.n_threads,
            seed=self.seed,
            meta={"program": instance.name, "steps": steps},
        )

    @staticmethod
    def _is_runnable(tid, blocked, flags, locks):
        ctrl = blocked.get(tid)
        if ctrl is None:
            return True
        if ctrl.kind == _CtrlKind.WAIT:
            return ctrl.name in flags
        if ctrl.kind == _CtrlKind.ACQUIRE:
            return locks.get(ctrl.name) is None
        return True

    @staticmethod
    def _ctrl_blocks(ctrl, flags, locks, tid):
        if ctrl.kind == _CtrlKind.WAIT:
            return ctrl.name not in flags
        if ctrl.kind == _CtrlKind.ACQUIRE:
            holder = locks.get(ctrl.name)
            return holder is not None and holder != tid
        return False

    @staticmethod
    def _apply_ctrl(tid, ctrl, flags, locks):
        if ctrl.kind == _CtrlKind.SET:
            flags.add(ctrl.name)
        elif ctrl.kind == _CtrlKind.ACQUIRE:
            locks[ctrl.name] = tid
        elif ctrl.kind == _CtrlKind.RELEASE:
            if locks.get(ctrl.name) != tid:
                raise TraceError(f"thread {tid} released lock "
                                 f"{ctrl.name!r} it does not hold")
            locks[ctrl.name] = None
        # WAIT needs no action once the flag is set.


def run_program(program, seed=0, scheduler=None, **params):
    """Build ``program`` with ``params`` and run it under a seeded scheduler."""
    if isinstance(program, Program):
        merged = dict(program.default_params())
        merged.update(program.params_for_seed(seed))
        merged.update(params)
        instance = program.build(**merged)
    elif isinstance(program, ProgramInstance):
        if params:
            raise ReproError("cannot re-parameterise a built instance")
        instance = program
    else:
        raise ReproError(f"not a Program: {program!r}")
    sched = scheduler or Scheduler(seed=seed)
    if scheduler is None:
        sched.seed = seed
    run = sched.run(instance)
    run.meta["root_cause"] = instance.root_cause
    return run
