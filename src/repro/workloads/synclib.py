"""Synchronisation helpers built on the framework's flag primitives.

Flags are one-shot, so reusable constructs (barriers) embed an epoch in
the flag name.
"""


def barrier(ctx, name, tid, n_threads, epoch):
    """Generator sub-sequence implementing an ``n_threads`` barrier.

    Use as ``yield from barrier(ctx, "phase", tid, n, k)`` with a fresh
    ``epoch`` value per crossing.
    """
    yield ctx.set_flag(f"{name}.{epoch}.{tid}")
    for other in range(n_threads):
        if other != tid:
            yield ctx.wait(f"{name}.{epoch}.{other}")


def signal_and_wait(ctx, my_flag, their_flag):
    """Two-party rendezvous."""
    yield ctx.set_flag(my_flag)
    yield ctx.wait(their_flag)
