"""Registry of benchmark kernels, bug programs, and generated programs.

Kernels model the communication structure of the paper's SPLASH2 /
PARSEC / SPEC / coreutils applications; bugs model the paper's 11 real
bugs and 5 injected bugs (Tables V and VI). Beyond the fixed sets, any
name matching the generated-program grammar
``gen-<archetype>-<motif>-s<seed>`` (see
:mod:`repro.workloads.generator`) resolves to a deterministic seeded
workload, so generated programs are first-class everywhere a bug name
is accepted -- ``repro diagnose``, ``repro trace``, and the corpus
harness.
"""

from repro.common.errors import ReproError

_KERNELS = {}
_BUGS = {}


def register_kernel(cls):
    """Class decorator: register a kernel Program by its ``name``."""
    _KERNELS[cls.name] = cls
    return cls


def register_bug(cls):
    """Class decorator: register a bug Program by its ``name``."""
    _BUGS[cls.name] = cls
    return cls


def _ensure_loaded():
    # Imported lazily to avoid import cycles with framework.py.
    from repro.workloads import kernels  # noqa: F401
    from repro.workloads import bugs  # noqa: F401
    from repro.workloads import taskpar  # noqa: F401


def get_kernel(name):
    """Instantiate the kernel registered under ``name``."""
    _ensure_loaded()
    try:
        return _KERNELS[name]()
    except KeyError:
        raise ReproError(f"unknown kernel {name!r}; known: "
                         f"{sorted(_KERNELS)}") from None


def _resolve_generated(name):
    """A GeneratedProgram for a ``gen-...`` name, else None."""
    from repro.workloads.generator import GeneratedProgram, parse_generated_name

    spec = parse_generated_name(name)
    if spec is None:
        return None
    return GeneratedProgram(spec)


def get_bug(name):
    """Instantiate the bug program registered under ``name``.

    Generated-program names (``gen-<archetype>-<motif>-s<seed>``) are
    resolved on the fly -- a generated bug behaves exactly like a
    bundled one (``buggy`` parameter, ground-truth root cause).
    """
    _ensure_loaded()
    try:
        return _BUGS[name]()
    except KeyError:
        generated = _resolve_generated(name)
        if generated is not None:
            return generated
        raise ReproError(
            f"unknown bug {name!r}; known: {sorted(_BUGS)} "
            "(or a generated name like 'gen-atomicity-pipeline-s7')"
        ) from None


def get_workload(name):
    """Resolve ``name`` as a kernel, a bug, or a generated program."""
    _ensure_loaded()
    if name in _KERNELS:
        return _KERNELS[name]()
    if name in _BUGS:
        return _BUGS[name]()
    generated = _resolve_generated(name)
    if generated is not None:
        return generated
    raise ReproError(
        f"unknown workload {name!r}; known kernels: {sorted(_KERNELS)}, "
        f"bugs: {sorted(_BUGS)} "
        "(or a generated name like 'gen-atomicity-pipeline-s7')")


def all_kernel_names():
    _ensure_loaded()
    return sorted(_KERNELS)


def all_bug_names():
    _ensure_loaded()
    return sorted(_BUGS)
