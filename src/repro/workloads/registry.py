"""Registry of benchmark kernels and bug programs.

Kernels model the communication structure of the paper's SPLASH2 /
PARSEC / SPEC / coreutils applications; bugs model the paper's 11 real
bugs and 5 injected bugs (Tables V and VI).
"""

from repro.common.errors import ReproError

_KERNELS = {}
_BUGS = {}


def register_kernel(cls):
    """Class decorator: register a kernel Program by its ``name``."""
    _KERNELS[cls.name] = cls
    return cls


def register_bug(cls):
    """Class decorator: register a bug Program by its ``name``."""
    _BUGS[cls.name] = cls
    return cls


def _ensure_loaded():
    # Imported lazily to avoid import cycles with framework.py.
    from repro.workloads import kernels  # noqa: F401
    from repro.workloads import bugs  # noqa: F401
    from repro.workloads import taskpar  # noqa: F401


def get_kernel(name):
    """Instantiate the kernel registered under ``name``."""
    _ensure_loaded()
    try:
        return _KERNELS[name]()
    except KeyError:
        raise ReproError(f"unknown kernel {name!r}; known: "
                         f"{sorted(_KERNELS)}") from None


def get_bug(name):
    """Instantiate the bug program registered under ``name``."""
    _ensure_loaded()
    try:
        return _BUGS[name]()
    except KeyError:
        raise ReproError(f"unknown bug {name!r}; known: "
                         f"{sorted(_BUGS)}") from None


def all_kernel_names():
    _ensure_loaded()
    return sorted(_KERNELS)


def all_bug_names():
    _ensure_loaded()
    return sorted(_BUGS)
