"""PARSEC-style kernels: canneal, fluidanimate, streamcluster, swaptions.

These stress ACT differently from the SPLASH2 set: canneal's sharing is
irregular (random element pairs), fluidanimate exchanges grid
boundaries, streamcluster broadcasts centers and reduces costs, and
swaptions is embarrassingly parallel (``worker`` supports Table VI's
injected bug).
"""

from repro.common.errors import SimulatedFailure
from repro.common.rng import make_rng
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_kernel
from repro.workloads.synclib import barrier


@register_kernel
class Canneal(Program):
    """Simulated-annealing netlist swaps under a lock.

    Every swap loads two random elements and stores them back swapped;
    which thread last wrote an element varies run to run, so both
    intra- and inter-thread dependences occur on the same instructions.
    """

    name = "canneal"

    def default_params(self):
        return {"n_threads": 2, "elements": 8, "swaps": 10}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, n_threads=2, elements=8, swaps=10, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        netlist = mem.array("netlist", elements)

        s_init = cm.store("init_elem", function="init")
        l_a = cm.load("swap_load_a", function="swap_cost")
        l_b = cm.load("swap_load_b", function="swap_cost")
        s_a = cm.store("swap_store_a", function="swap_cost")
        s_b = cm.store("swap_store_b", function="swap_cost")
        br = cm.branch("accept_swap", function="swap_cost")

        def body_for(tid):
            rng = make_rng(input_seed, stream=0xCA0 + tid)

            def body(ctx):
                if tid == 0:
                    for e in range(elements):
                        yield ctx.store(s_init, netlist + 4 * e, value=e)
                yield from barrier(ctx, "init", tid, n_threads, 0)
                for _ in range(swaps):
                    i = rng.randrange(elements)
                    j = rng.randrange(elements)
                    if i == j:
                        j = (j + 1) % elements
                    yield ctx.acquire("netlock")
                    va = yield ctx.load(l_a, netlist + 4 * i)
                    vb = yield ctx.load(l_b, netlist + 4 * j)
                    accept = rng.random() < 0.7
                    yield ctx.branch(br, accept)
                    if accept:
                        yield ctx.store(s_a, netlist + 4 * i, value=vb)
                        yield ctx.store(s_b, netlist + 4 * j, value=va)
                    yield ctx.release("netlock")
            return body

        return ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])


@register_kernel
class Fluidanimate(Program):
    """Grid-band particle phases with neighbour boundary exchange.

    ``ComputeDensitiesMT`` reads the neighbouring band's boundary cells
    (inter-thread) and hosts Table VI's injected bug.
    """

    name = "fluidanimate"

    def default_params(self):
        return {"n_threads": 2, "cells": 6, "steps": 2, "inject": False,
                "new_code": True}

    def build(self, n_threads=2, cells=6, steps=2, inject=False,
              new_code=True):
        cm = CodeMap()
        mem = AddressSpace()
        grid = [mem.array(f"g{t}", cells) for t in range(n_threads)]
        dens = [mem.array(f"d{t}", cells) for t in range(n_threads)]
        ctrl = mem.var("nparticles")

        s_ctrl = cm.store("store_nparticles", function="setup")
        s_clear = cm.store("clear_cell", function="ClearParticlesMT")
        s_rebuild = cm.store("rebuild_cell", function="RebuildGridMT")
        l_own_old = cm.load("dens_load_own", function="ComputeDensitiesMT_v0")
        l_nbr_old = cm.load("dens_load_neighbour",
                            function="ComputeDensitiesMT_v0")
        s_dens_old = cm.store("dens_store", function="ComputeDensitiesMT_v0")
        l_own_new = cm.load("dens_load_own", function="ComputeDensitiesMT")
        l_nbr_new = cm.load("dens_load_neighbour",
                            function="ComputeDensitiesMT")
        s_dens_new = cm.store("dens_store", function="ComputeDensitiesMT")
        l_bug = cm.load("dens_stray_load", function="ComputeDensitiesMT")
        l_own = l_own_new if new_code else l_own_old
        l_nbr = l_nbr_new if new_code else l_nbr_old
        s_dens = s_dens_new if new_code else s_dens_old
        l_dens = cm.load("force_load_dens", function="ComputeForcesMT")
        s_adv = cm.store("advance_store", function="AdvanceParticlesMT")

        root = {(s_ctrl, l_bug)}

        def body_for(tid):
            def body(ctx):
                if tid == 0:
                    yield ctx.store(s_ctrl, ctrl, value=cells * n_threads)
                yield from barrier(ctx, "setup", tid, n_threads, 0)
                for step in range(steps):
                    for c in range(cells):
                        yield ctx.store(s_clear, grid[tid] + 4 * c, value=0)
                    yield from barrier(ctx, "clear", tid, n_threads, step)
                    for c in range(cells):
                        yield ctx.store(s_rebuild, grid[tid] + 4 * c,
                                        value=step)
                    yield from barrier(ctx, "rebuild", tid, n_threads, step)
                    nbr = (tid + 1) % n_threads
                    for c in range(cells):
                        yield ctx.load(l_own, grid[tid] + 4 * c)
                        if c == 0 or c == cells - 1:
                            yield ctx.load(l_nbr, grid[nbr] + 4 * c)
                        yield ctx.store(s_dens, dens[tid] + 4 * c,
                                        value=step)
                    if inject and step == steps - 1 and tid == 0:
                        yield ctx.load(l_bug, ctrl)
                    yield from barrier(ctx, "dens", tid, n_threads, step)
                    for c in range(cells):
                        yield ctx.load(l_dens, dens[tid] + 4 * c)
                        yield ctx.store(s_adv, grid[tid] + 4 * c,
                                        value=step + 1)
                    yield from barrier(ctx, "adv", tid, n_threads, step)
                if inject and tid == 0:
                    raise SimulatedFailure("fluidanimate: density blow-up",
                                           tid=tid)
            return body

        inst = ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])
        inst.root_cause = root if inject else None
        return inst


@register_kernel
class Streamcluster(Program):
    """Centre broadcast + per-thread cost accumulation + reduction."""

    name = "streamcluster"

    def default_params(self):
        return {"n_threads": 2, "points": 6, "centers": 3}

    def build(self, n_threads=2, points=6, centers=3):
        cm = CodeMap()
        mem = AddressSpace()
        centerarr = mem.array("centers", centers)
        pts = [mem.array(f"p{t}", points) for t in range(n_threads)]
        costs = mem.array("costs", n_threads)

        s_center = cm.store("store_center", function="pgain")
        s_pt = cm.store("init_point", function="init")
        l_center = cm.load("dist_load_center", function="dist")
        l_pt = cm.load("dist_load_point", function="dist")
        s_cost = cm.store("store_local_cost", function="dist")
        l_cost = cm.load("reduce_load_cost", function="pgain")

        def body_for(tid):
            def body(ctx):
                if tid == 0:
                    for c in range(centers):
                        yield ctx.store(s_center, centerarr + 4 * c, value=c)
                for p in range(points):
                    yield ctx.store(s_pt, pts[tid] + 4 * p, value=p)
                yield from barrier(ctx, "open", tid, n_threads, 0)
                for p in range(points):
                    yield ctx.load(l_pt, pts[tid] + 4 * p)
                    for c in range(centers):
                        yield ctx.load(l_center, centerarr + 4 * c)
                yield ctx.store(s_cost, costs + 4 * tid, value=tid)
                yield from barrier(ctx, "cost", tid, n_threads, 0)
                if tid == 0:
                    for t in range(n_threads):
                        yield ctx.load(l_cost, costs + 4 * t)
            return body

        return ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])


@register_kernel
class Swaptions(Program):
    """Embarrassingly parallel Monte-Carlo pricing; ``worker`` is the
    Table VI injection site."""

    name = "swaptions"

    def default_params(self):
        return {"n_threads": 2, "per_thread": 2, "sims": 3, "inject": False,
                "new_code": True}

    def build(self, n_threads=2, per_thread=2, sims=3, inject=False,
              new_code=True):
        cm = CodeMap()
        mem = AddressSpace()
        params = mem.array("params", n_threads * per_thread)
        results = mem.array("results", n_threads * per_thread)
        scratch = [mem.array(f"scr{t}", sims) for t in range(n_threads)]
        ctrl = mem.var("nswaptions")

        s_ctrl = cm.store("store_count", function="setup")
        s_param = cm.store("store_param", function="setup")
        l_param_old = cm.load("worker_load_param", function="worker_v0")
        s_scr_old = cm.store("worker_store_path", function="worker_v0")
        l_scr_old = cm.load("worker_load_path", function="worker_v0")
        s_res_old = cm.store("worker_store_result", function="worker_v0")
        l_param_new = cm.load("worker_load_param", function="worker")
        s_scr_new = cm.store("worker_store_path", function="worker")
        l_scr_new = cm.load("worker_load_path", function="worker")
        s_res_new = cm.store("worker_store_result", function="worker")
        l_bug = cm.load("worker_stray_load", function="worker")
        l_param = l_param_new if new_code else l_param_old
        s_scr = s_scr_new if new_code else s_scr_old
        l_scr = l_scr_new if new_code else l_scr_old
        s_res = s_res_new if new_code else s_res_old
        l_res = cm.load("collect_load_result", function="collect")

        root = {(s_ctrl, l_bug)}

        def body_for(tid):
            def body(ctx):
                if tid == 0:
                    yield ctx.store(s_ctrl, ctrl, value=n_threads * per_thread)
                    for s in range(n_threads * per_thread):
                        yield ctx.store(s_param, params + 4 * s, value=s)
                    yield ctx.set_flag("params_ready")
                else:
                    yield ctx.wait("params_ready")
                for s in range(per_thread):
                    idx = tid * per_thread + s
                    yield ctx.load(l_param, params + 4 * idx)
                    for k in range(sims):
                        yield ctx.store(s_scr, scratch[tid] + 4 * k,
                                        value=k)
                        yield ctx.load(l_scr, scratch[tid] + 4 * k)
                    yield ctx.store(s_res, results + 4 * idx, value=idx)
                if inject and tid == n_threads - 1:
                    yield ctx.load(l_bug, ctrl)
                yield from barrier(ctx, "done", tid, n_threads, 0)
                if tid == 0:
                    for s in range(n_threads * per_thread):
                        yield ctx.load(l_res, results + 4 * s)
                if inject and tid == n_threads - 1:
                    raise SimulatedFailure("swaptions: price out of range",
                                           tid=tid)
            return body

        inst = ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])
        inst.root_cause = root if inject else None
        return inst
