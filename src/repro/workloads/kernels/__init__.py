"""Benchmark kernels.

Synthetic stand-ins for the paper's applications, preserving the
*communication structure* ACT observes: regular owner-computes loops
with boundary exchange (SPLASH2), irregular/pipelined sharing (PARSEC),
and input-dependent sequential patterns (SPEC INT / coreutils).

Importing this package registers every kernel with
:mod:`repro.workloads.registry`.
"""

from repro.workloads.kernels import parsec, spec, splash  # noqa: F401

from repro.workloads.kernels.splash import (  # noqa: F401
    Barnes,
    FFT,
    LU,
    Ocean,
    Radix,
)
from repro.workloads.kernels.parsec import (  # noqa: F401
    Canneal,
    Fluidanimate,
    Streamcluster,
    Swaptions,
)
from repro.workloads.kernels.spec import BC, Bzip2Like, McfLike  # noqa: F401
