"""Sequential SPEC-INT-style kernels: bzip2-like, mcf-like, bc.

Single-threaded, input-dependent control flow: their RAW patterns vary
with the input (derived from the run seed), which is what makes their
Table IV misprediction rates interesting -- ``bc``'s stack-machine
patterns are the hardest to learn, as in the paper.
"""

from repro.common.rng import make_rng
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_kernel


@register_kernel
class Bzip2Like(Program):
    """Run-length encoding pass over a random input buffer."""

    name = "bzip2"

    def default_params(self):
        return {"length": 40}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, length=40, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        inp = mem.array("input", length)
        out = mem.array("output", length)
        run_len = mem.var("run_len")

        s_in = cm.store("init_input", function="init")
        l_cur = cm.load("rle_load_cur", function="rle")
        l_run = cm.load("rle_load_runlen", function="rle")
        s_run = cm.store("rle_store_runlen", function="rle")
        s_out = cm.store("rle_store_out", function="rle")
        br = cm.branch("rle_same", function="rle")

        rng = make_rng(input_seed, stream=0xB21)
        data = [rng.randrange(3) for _ in range(length)]

        def body(ctx):
            for i in range(length):
                yield ctx.store(s_in, inp + 4 * i, value=data[i])
            yield ctx.store(s_run, run_len, value=0)
            prev = None
            oi = 0
            for i in range(length):
                cur = yield ctx.load(l_cur, inp + 4 * i)
                same = cur == prev
                yield ctx.branch(br, same)
                if same:
                    r = yield ctx.load(l_run, run_len)
                    yield ctx.store(s_run, run_len, value=(r or 0) + 1)
                else:
                    yield ctx.store(s_out, out + 4 * oi, value=cur)
                    oi += 1
                    yield ctx.store(s_run, run_len, value=1)
                prev = cur
            yield ctx.load(l_run, run_len)

        return ProgramInstance(self.name, cm, [body])


@register_kernel
class McfLike(Program):
    """Pointer chasing over a ring of arcs with cost/flow updates."""

    name = "mcf"

    def default_params(self):
        return {"nodes": 10, "hops": 25}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, nodes=10, hops=25, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        nxt = mem.array("next", nodes)
        cost = mem.array("cost", nodes)
        flow = mem.array("flow", nodes)

        s_next = cm.store("init_next", function="init")
        s_cost = cm.store("init_cost", function="init")
        s_flow0 = cm.store("init_flow", function="init")
        l_next = cm.load("chase_load_next", function="refresh")
        l_cost = cm.load("chase_load_cost", function="refresh")
        l_flow = cm.load("chase_load_flow", function="refresh")
        s_flow = cm.store("chase_store_flow", function="refresh")

        rng = make_rng(input_seed, stream=0x3CF)
        perm = list(range(1, nodes)) + [0]
        rng.shuffle(perm)

        def body(ctx):
            for n in range(nodes):
                yield ctx.store(s_next, nxt + 4 * n, value=perm[n])
                yield ctx.store(s_cost, cost + 4 * n, value=n)
                yield ctx.store(s_flow0, flow + 4 * n, value=0)
            node = 0
            for _ in range(hops):
                nx = yield ctx.load(l_next, nxt + 4 * node)
                yield ctx.load(l_cost, cost + 4 * node)
                f = yield ctx.load(l_flow, flow + 4 * node)
                yield ctx.store(s_flow, flow + 4 * node, value=(f or 0) + 1)
                node = nx if nx is not None else 0

        return ProgramInstance(self.name, cm, [body])


@register_kernel
class BC(Program):
    """Stack-machine expression evaluator (GNU bc style).

    Random postfix expressions drive push/pop patterns; the stack slot a
    pop reads from depends on expression shape, giving the large space
    of dependence sequences that made bc the hardest program in
    Table IV.
    """

    name = "bc"

    def default_params(self):
        return {"exprs": 6, "max_depth": 4}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, exprs=6, max_depth=4, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        stack = mem.array("stack", max_depth + 2)
        acc = mem.var("acc")

        s_push = cm.store("push", function="eval")
        l_pop_a = cm.load("pop_a", function="eval")
        l_pop_b = cm.load("pop_b", function="eval")
        s_result = cm.store("store_result", function="eval")
        l_result = cm.load("load_result", function="print")
        br = cm.branch("is_op", function="eval")

        rng = make_rng(input_seed, stream=0xBC0)
        programs = []
        for _ in range(exprs):
            # A random postfix expression: starts with two operands and
            # alternates push/op so the stack never under/overflows.
            n_ops = rng.randrange(1, max_depth)
            tokens = ["num", "num"]
            for _ in range(n_ops):
                if rng.random() < 0.5 and tokens.count("num") - tokens.count("op") >= 2:
                    tokens.append("op")
                else:
                    tokens.append("num")
                    tokens.append("op")
            while tokens.count("num") - tokens.count("op") > 1:
                tokens.append("op")
            programs.append(tokens)

        def body(ctx):
            for tokens in programs:
                sp = 0
                for tok in tokens:
                    is_op = tok == "op"
                    yield ctx.branch(br, is_op)
                    if is_op:
                        sp -= 1
                        yield ctx.load(l_pop_a, stack + 4 * sp)
                        sp -= 1
                        yield ctx.load(l_pop_b, stack + 4 * sp)
                        yield ctx.store(s_push, stack + 4 * sp, value=sp)
                        sp += 1
                    else:
                        yield ctx.store(s_push, stack + 4 * sp, value=sp)
                        sp += 1
                sp -= 1
                yield ctx.store(s_result, acc, value=sp)
                yield ctx.load(l_result, acc)

        return ProgramInstance(self.name, cm, [body])
