"""SPLASH2-style kernels: lu, fft, radix, barnes, ocean.

Each kernel reproduces the RAW-communication skeleton of its namesake:
owner-computes partitions, barrier-separated phases, and boundary /
broadcast sharing that yields stable inter-thread dependence patterns.

``lu``, ``fft`` and ``barnes`` support Table VI's injected bugs via the
``inject=True`` parameter: the named function (``TouchA``,
``TouchArray``, ``VListInteraction``) performs one stray read of a word
it does not own, and the program fails at the end of the run (a
completion-style failure). The stray read's dependence is the tagged
root cause.
"""

from repro.common.errors import SimulatedFailure
from repro.common.rng import make_rng
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_kernel
from repro.workloads.synclib import barrier


@register_kernel
class LU(Program):
    """Blocked LU factorisation skeleton.

    Threads own matrix blocks round-robin. Each step k: the diagonal
    owner factors its block (intra-thread deps in ``lu_factor``), then
    every thread updates its blocks against the pivot block
    (inter-thread loads in ``lu_update``).
    """

    name = "lu"

    def default_params(self):
        return {"n_threads": 2, "nb": 4, "block": 4, "inject": False,
                "new_code": True}

    def params_for_seed(self, seed):
        return {}

    def build(self, n_threads=2, nb=4, block=4, inject=False,
              new_code=True):
        cm = CodeMap()
        mem = AddressSpace()
        blocks = [mem.array(f"A{b}", block) for b in range(nb)]
        ctrl = mem.var("ctrl")

        s_ctrl = cm.store("init_ctrl", function="setup")
        # Two generations of TouchA: the legacy one (``new_code=False``)
        # and the rewritten one. Table VI trains on the legacy binary
        # and diagnoses a failure of the new one.
        s_touch_old = cm.store("touch_store", function="TouchA_v0")
        l_touch_old = cm.load("touch_load", function="TouchA_v0")
        s_touch_new = cm.store("touch_store", function="TouchA")
        l_touch_new = cm.load("touch_load", function="TouchA")
        l_bug = cm.load("touch_stray_load", function="TouchA")
        s_touch = s_touch_new if new_code else s_touch_old
        l_touch = l_touch_new if new_code else l_touch_old
        s_fact = cm.store("factor_store", function="lu_factor")
        l_fact = cm.load("factor_load", function="lu_factor")
        l_pivot = cm.load("update_load_pivot", function="lu_update")
        l_mine = cm.load("update_load_mine", function="lu_update")
        s_upd = cm.store("update_store", function="lu_update")
        br_k = cm.branch("kloop", function="lu_update")

        root = {(s_ctrl, l_bug)}

        def body_for(tid):
            def body(ctx):
                if tid == 0:
                    yield ctx.store(s_ctrl, ctrl, value=nb)
                    yield ctx.set_flag("ctrl_ready")
                else:
                    yield ctx.wait("ctrl_ready")
                # TouchA: initialise owned blocks, then verify them.
                for b in range(tid, nb, n_threads):
                    for w in range(block):
                        yield ctx.store(s_touch, blocks[b] + 4 * w, value=b)
                    for w in range(block):
                        yield ctx.load(l_touch, blocks[b] + 4 * w)
                if inject and tid == 0:
                    # Injected bug: stray read of the setup-owned word.
                    yield ctx.load(l_bug, ctrl)
                yield from barrier(ctx, "init", tid, n_threads, 0)
                for k in range(nb):
                    owner = k % n_threads
                    if tid == owner:
                        for w in range(block):
                            yield ctx.load(l_fact, blocks[k] + 4 * w)
                            yield ctx.store(s_fact, blocks[k] + 4 * w,
                                            value=k)
                    yield from barrier(ctx, "fact", tid, n_threads, k)
                    for b in range(tid, nb, n_threads):
                        if b <= k:
                            continue
                        yield ctx.branch(br_k, True)
                        for w in range(block):
                            yield ctx.load(l_pivot, blocks[k] + 4 * w)
                            yield ctx.load(l_mine, blocks[b] + 4 * w)
                            yield ctx.store(s_upd, blocks[b] + 4 * w,
                                            value=k * b)
                    yield from barrier(ctx, "upd", tid, n_threads, k)
                if inject and tid == 0:
                    raise SimulatedFailure("lu: corrupted matrix detected",
                                           tid=tid)
            return body

        inst = ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])
        inst.root_cause = root if inject else None
        return inst


@register_kernel
class FFT(Program):
    """Radix-2 FFT skeleton: TouchArray init, local FFT1D, transpose.

    The transpose phase reads every other thread's partition --- the
    all-to-all inter-thread pattern the real kernel has.
    """

    name = "fft"

    def default_params(self):
        return {"n_threads": 2, "points": 16, "inject": False,
                "new_code": True}

    def build(self, n_threads=2, points=16, inject=False, new_code=True):
        cm = CodeMap()
        mem = AddressSpace()
        parts = [mem.array(f"x{t}", points) for t in range(n_threads)]
        scratch = [mem.array(f"s{t}", points) for t in range(n_threads)]
        twiddle = mem.var("twiddle")

        s_tw = cm.store("init_twiddle", function="setup")
        s_touch_old = cm.store("toucharray_store", function="TouchArray_v0")
        l_touch_old = cm.load("toucharray_load", function="TouchArray_v0")
        s_touch_new = cm.store("toucharray_store", function="TouchArray")
        l_touch_new = cm.load("toucharray_load", function="TouchArray")
        l_bug = cm.load("toucharray_stray_load", function="TouchArray")
        s_touch = s_touch_new if new_code else s_touch_old
        l_touch = l_touch_new if new_code else l_touch_old
        l_bfly_a = cm.load("bfly_load_a", function="FFT1D")
        l_bfly_b = cm.load("bfly_load_b", function="FFT1D")
        s_bfly = cm.store("bfly_store", function="FFT1D")
        l_tw = cm.load("load_twiddle", function="FFT1D")
        l_remote = cm.load("transpose_load_remote", function="Transpose")
        s_scr = cm.store("transpose_store", function="Transpose")

        root = {(s_tw, l_bug)}

        def body_for(tid):
            def body(ctx):
                if tid == 0:
                    yield ctx.store(s_tw, twiddle, value=1)
                    yield ctx.set_flag("tw_ready")
                else:
                    yield ctx.wait("tw_ready")
                for w in range(points):
                    yield ctx.store(s_touch, parts[tid] + 4 * w, value=w)
                for w in range(points):
                    yield ctx.load(l_touch, parts[tid] + 4 * w)
                if inject and tid == n_threads - 1:
                    yield ctx.load(l_bug, twiddle)
                yield from barrier(ctx, "touch", tid, n_threads, 0)
                # FFT1D: log2(points) butterfly stages over the partition.
                span = 1
                stage = 0
                while span < points:
                    for w in range(0, points, 2 * span):
                        yield ctx.load(l_bfly_a, parts[tid] + 4 * w)
                        yield ctx.load(l_bfly_b,
                                       parts[tid] + 4 * (w + span))
                        yield ctx.load(l_tw, twiddle)
                        yield ctx.store(s_bfly, parts[tid] + 4 * w,
                                        value=stage)
                    span *= 2
                    stage += 1
                yield from barrier(ctx, "fft1d", tid, n_threads, 0)
                # Transpose: gather one word from every partition.
                for src in range(n_threads):
                    for w in range(tid, points, n_threads):
                        yield ctx.load(l_remote, parts[src] + 4 * w)
                        yield ctx.store(s_scr, scratch[tid] + 4 * (w % points),
                                        value=src)
                yield from barrier(ctx, "transpose", tid, n_threads, 0)
                if inject and tid == n_threads - 1:
                    raise SimulatedFailure("fft: checksum mismatch", tid=tid)
            return body

        inst = ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])
        inst.root_cause = root if inject else None
        return inst


@register_kernel
class Radix(Program):
    """Radix-sort skeleton: local histogram, global prefix, permute."""

    name = "radix"

    def default_params(self):
        return {"n_threads": 2, "keys": 12, "buckets": 4}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, n_threads=2, keys=12, buckets=4, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        keyarr = [mem.array(f"k{t}", keys) for t in range(n_threads)]
        hist = [mem.array(f"h{t}", buckets) for t in range(n_threads)]
        out = mem.array("out", keys * n_threads)

        s_key = cm.store("init_keys", function="init")
        l_key = cm.load("hist_load_key", function="histogram")
        l_h = cm.load("hist_load_bin", function="histogram")
        s_h = cm.store("hist_store_bin", function="histogram")
        l_other = cm.load("prefix_load_remote", function="prefix")
        l_key2 = cm.load("permute_load_key", function="permute")
        s_out = cm.store("permute_store", function="permute")

        rng = make_rng(input_seed, stream=0xAD1)
        key_vals = [[rng.randrange(buckets) for _ in range(keys)]
                    for _ in range(n_threads)]

        def body_for(tid):
            def body(ctx):
                for i in range(keys):
                    yield ctx.store(s_key, keyarr[tid] + 4 * i,
                                    value=key_vals[tid][i])
                for b in range(buckets):
                    yield ctx.store(s_h, hist[tid] + 4 * b, value=0)
                for i in range(keys):
                    k = yield ctx.load(l_key, keyarr[tid] + 4 * i)
                    c = yield ctx.load(l_h, hist[tid] + 4 * k)
                    yield ctx.store(s_h, hist[tid] + 4 * k, value=c + 1)
                yield from barrier(ctx, "hist", tid, n_threads, 0)
                offset = 0
                for t in range(n_threads):
                    for b in range(buckets):
                        v = yield ctx.load(l_other, hist[t] + 4 * b)
                        offset += v if v else 0
                yield from barrier(ctx, "prefix", tid, n_threads, 0)
                for i in range(keys):
                    k = yield ctx.load(l_key2, keyarr[tid] + 4 * i)
                    slot = (tid * keys + i) % (keys * n_threads)
                    yield ctx.store(s_out, out + 4 * slot, value=k)
            return body

        return ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])


@register_kernel
class Barnes(Program):
    """Barnes-Hut skeleton: main builds the tree, workers walk it.

    ``VListInteraction`` (the force walk) reads tree cells written by
    the builder -- broadcast-style inter-thread dependences.
    """

    name = "barnes"

    def default_params(self):
        return {"n_threads": 2, "bodies": 6, "cells": 8, "inject": False,
                "new_code": True}

    def build(self, n_threads=2, bodies=6, cells=8, inject=False,
              new_code=True):
        cm = CodeMap()
        mem = AddressSpace()
        tree = mem.array("tree", cells)
        bodyarr = [mem.array(f"b{t}", bodies) for t in range(n_threads)]
        force = [mem.array(f"f{t}", bodies) for t in range(n_threads)]
        ctrl = mem.var("root_cell")

        s_root = cm.store("store_root", function="maketree")
        s_cell = cm.store("store_cell", function="maketree")
        l_cell_old = cm.load("vlist_load_cell", function="VListInteraction_v0")
        l_body_old = cm.load("vlist_load_body", function="VListInteraction_v0")
        s_force_old = cm.store("vlist_store_force",
                               function="VListInteraction_v0")
        l_cell_new = cm.load("vlist_load_cell", function="VListInteraction")
        l_body_new = cm.load("vlist_load_body", function="VListInteraction")
        s_force_new = cm.store("vlist_store_force",
                               function="VListInteraction")
        l_bug = cm.load("vlist_stray_load", function="VListInteraction")
        l_cell = l_cell_new if new_code else l_cell_old
        l_body = l_body_new if new_code else l_body_old
        s_force = s_force_new if new_code else s_force_old
        l_force = cm.load("update_load_force", function="update")
        s_body = cm.store("update_store_body", function="update")

        root = {(s_root, l_bug)}

        def body_for(tid):
            def body(ctx):
                if tid == 0:
                    yield ctx.store(s_root, ctrl, value=cells)
                    for c in range(cells):
                        yield ctx.store(s_cell, tree + 4 * c, value=c)
                yield from barrier(ctx, "tree", tid, n_threads, 0)
                for i in range(bodies):
                    for c in range(0, cells, 2):
                        yield ctx.load(l_cell, tree + 4 * c)
                    yield ctx.load(l_body, bodyarr[tid] + 4 * i)
                    yield ctx.store(s_force, force[tid] + 4 * i, value=i)
                if inject and tid == n_threads - 1:
                    yield ctx.load(l_bug, ctrl)
                yield from barrier(ctx, "force", tid, n_threads, 0)
                for i in range(bodies):
                    yield ctx.load(l_force, force[tid] + 4 * i)
                    yield ctx.store(s_body, bodyarr[tid] + 4 * i, value=i)
                if inject and tid == n_threads - 1:
                    raise SimulatedFailure("barnes: NaN position", tid=tid)
            return body

        inst = ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])
        inst.root_cause = root if inject else None
        return inst


@register_kernel
class Ocean(Program):
    """Red-black stencil over row bands with neighbour boundary reads."""

    name = "ocean"

    def default_params(self):
        return {"n_threads": 2, "cols": 6, "iters": 3}

    def build(self, n_threads=2, cols=6, iters=3):
        cm = CodeMap()
        mem = AddressSpace()
        rows = [mem.array(f"row{t}", cols) for t in range(n_threads)]

        s_init = cm.store("init_row", function="init")
        l_self = cm.load("stencil_load_self", function="relax")
        l_nbr = cm.load("stencil_load_neighbour", function="relax")
        s_row = cm.store("stencil_store", function="relax")

        def body_for(tid):
            def body(ctx):
                for c in range(cols):
                    yield ctx.store(s_init, rows[tid] + 4 * c, value=c)
                yield from barrier(ctx, "init", tid, n_threads, 0)
                for it in range(iters):
                    nbr = (tid + 1) % n_threads
                    for c in range(cols):
                        yield ctx.load(l_self, rows[tid] + 4 * c)
                        yield ctx.load(l_nbr, rows[nbr] + 4 * c)
                        yield ctx.store(s_row, rows[tid] + 4 * c,
                                        value=it)
                    yield from barrier(ctx, "iter", tid, n_threads, it + 1)
            return body

        return ProgramInstance(self.name, cm,
                               [body_for(t) for t in range(n_threads)])
