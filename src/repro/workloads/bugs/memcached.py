"""Memcached: atomicity violation on item data (silent corruption).

An updater thread rewrites an item's two fields; a getter reads both.
Correctly the pair of stores (and the pair of loads) is atomic under
the cache lock. In the buggy interleaving the getter runs between the
two stores of the *first* update, so its second load still reads the
item's initialisation store while its first load already sees the
update -- a torn read. The run completes; a final consistency check
raises the (completion-style) failure.
"""

from repro.common.errors import SimulatedFailure
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class MemcachedBug(Program):
    name = "memcached"

    def default_params(self):
        return {"buggy": False, "gets": 8}

    def build(self, buggy=False, gets=8):
        cm = CodeMap()
        mem = AddressSpace()
        f1 = mem.var("item_flags")
        f2 = mem.var("item_data")
        sink = mem.var("response")

        s_init1 = cm.store("init_flags", function="item_alloc")
        s_init2 = cm.store("init_data", function="item_alloc")
        s_upd1 = cm.store("update_flags", function="process_update")
        s_upd2 = cm.store("update_data", function="process_update")
        l_get1 = cm.load("get_load_flags", function="process_get")
        l_get2 = cm.load("get_load_data", function="process_get")
        s_resp = cm.store("store_response", function="process_get")
        l_resp = cm.load("verify_response", function="main")
        s_conn = cm.store("conn_write_state", function="conn_new")
        l_conn = cm.load("conn_read_state", function="conn_new")
        conn = mem.array("conn_state", 6)

        root = {(s_init2, l_get2)}

        def updater(ctx):
            yield ctx.store(s_init1, f1, value=0)
            yield ctx.store(s_init2, f2, value=0)
            yield ctx.set_flag("item_ready")
            if buggy:
                yield ctx.wait("warm_gets_done")
            for v in range(1, 4):
                race = buggy and v == 1
                if not race:
                    yield ctx.acquire("cache_lock")
                yield ctx.store(s_upd1, f1, value=v)
                if race:
                    # The getter sneaks in between the two stores.
                    yield ctx.set_flag("torn")
                    yield ctx.wait("got")
                yield ctx.store(s_upd2, f2, value=v)
                if not race:
                    yield ctx.release("cache_lock")
            yield ctx.set_flag("updates_done")

        def getter(ctx):
            yield ctx.wait("item_ready")
            # Connection setup: the getter's own state machine touches
            # its connection object before serving gets.
            for k in range(6):
                yield ctx.store(s_conn, conn + 4 * k, value=k)
                yield ctx.load(l_conn, conn + 4 * k)
            torn_value = None
            torn_at = 2
            for g in range(gets):
                race = buggy and g == torn_at
                if buggy and g == torn_at:
                    yield ctx.wait("torn")
                elif buggy and g == torn_at + 1:
                    yield ctx.wait("updates_done")
                if not race:
                    yield ctx.acquire("cache_lock")
                a = yield ctx.load(l_get1, f1)
                b = yield ctx.load(l_get2, f2)
                if not race:
                    yield ctx.release("cache_lock")
                yield ctx.store(s_resp, sink, value=(a, b))
                if race:
                    torn_value = (a, b)
                    yield ctx.set_flag("got")
                if buggy and g == torn_at - 1:
                    yield ctx.set_flag("warm_gets_done")
            v = yield ctx.load(l_resp, sink)
            if torn_value is not None and torn_value[0] != torn_value[1]:
                raise SimulatedFailure(
                    f"memcached: torn item read {torn_value}", pc=l_resp)

        inst = ProgramInstance(self.name, cm, [updater, getter])
        inst.root_cause = root
        return inst
