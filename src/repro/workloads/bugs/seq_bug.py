"""GNU seq: semantic bug -- wrong terminator in ``print_numbers``
(completion failure).

``print_numbers`` emits a generated number per iteration. With a
malformed (buggy) step the termination comparison is off by one, so the
loop runs one extra iteration and its number load reads the word after
the generated buffer -- a scratch word written by the formatter, never
a legal source for that load.
"""

from repro.common.errors import SimulatedFailure
from repro.common.rng import make_rng
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class SeqBug(Program):
    name = "seq"

    def default_params(self):
        return {"buggy": False, "count": 6, "input_seed": 0}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, buggy=False, count=6, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        numbuf = mem.array("numbers", count)
        scratch = mem.var("fmt_scratch", packed=True)  # the word after the buffer
        sep = mem.var("separator")
        out = mem.array("stdout", count + 2)

        s_fmt = cm.store("fmt_init_scratch", function="main")
        s_sep = cm.store("init_separator", function="main")
        s_gen = cm.store("generate_number", function="print_numbers")
        l_num = cm.load("load_number", function="print_numbers")
        l_sep = cm.load("load_separator", function="print_numbers")
        s_out = cm.store("write_stdout", function="print_numbers")
        br = cm.branch("loop_terminator", function="print_numbers")
        l_chk = cm.load("verify_output", function="main")

        root = {(s_fmt, l_num)}

        rng = make_rng(input_seed, stream=0x5E9)
        n = count if buggy else max(2, count - rng.randrange(3))

        def body(ctx):
            yield ctx.store(s_fmt, scratch, value=0xF00D)
            yield ctx.store(s_sep, sep, value=ord("\n"))
            for i in range(n):
                yield ctx.store(s_gen, numbuf + 4 * i, value=i)
            overran = False
            iters = n + 1 if buggy else n  # off-by-one terminator
            for i in range(iters):
                yield ctx.branch(br, True)
                v = yield ctx.load(l_num, numbuf + 4 * i)
                if i >= n:
                    overran = True
                yield ctx.load(l_sep, sep)
                yield ctx.store(s_out, out + 4 * i, value=v)
            yield ctx.branch(br, False)
            yield ctx.load(l_chk, out)
            if overran:
                raise SimulatedFailure(
                    "seq: printed garbage past the last number", pc=l_num)

        inst = ProgramInstance(self.name, cm, [body])
        inst.root_cause = root
        return inst
