"""Gzip: semantic bug on the stdin file descriptor (Figure 2(d)).

``ifd`` is initialised to 0 (S1). For each input name, ``-`` means
"process stdin" and calls ``get_method(ifd)`` (its load is L2); a
normal name opens the file (S3 stores the descriptor) and calls
``get_method(ifd)`` (L4). When ``-`` appears *after* a normal file,
L2 reads the descriptor stored by S3 instead of S1's zero -- the
invalid dependence (S3 -> L2) -- and stdin is silently not processed.
The program completes; the failure is the wrong output.
"""

from repro.common.errors import SimulatedFailure
from repro.common.rng import make_rng
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class GzipBug(Program):
    name = "gzip"

    def default_params(self):
        return {"buggy": False, "n_files": 5, "input_seed": 0}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, buggy=False, n_files=5, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        ifd = mem.var("ifd")
        window = mem.array("window", 4)
        errvar = mem.var("exit_code")

        s1 = cm.store("S1_init_ifd", function="main")
        br_dash = cm.branch("is_dash", function="main")
        l2 = cm.load("S2_get_method_stdin", function="get_method")
        s3 = cm.store("S3_open_input_file", function="main")
        l4 = cm.load("S4_get_method_file", function="get_method")
        s_win = cm.store("deflate_store_window", function="deflate")
        l_win = cm.load("deflate_load_window", function="deflate")
        s_err = cm.store("set_exit_code", function="main")
        l_err = cm.load("check_exit_code", function="main")
        s_opt = cm.store("parse_option_store", function="main")
        l_opt = cm.load("parse_option_load", function="main")
        optbuf = mem.array("options", 5)

        root = {(s3, l2)}

        # Input layout: training inputs either start with '-' or contain
        # no '-'; the failure input has '-' in the middle.
        if buggy:
            dash_pos = n_files // 2
        else:
            rng = make_rng(input_seed, stream=0x621)
            dash_pos = 0 if rng.random() < 0.5 else None
        names = ["-" if i == dash_pos else f"f{i}" for i in range(n_files)]

        def body(ctx):
            yield ctx.store(s1, ifd, value=0)
            # Option parsing: builds the per-run dependence history the
            # real main() has before its file loop.
            for k in range(5):
                yield ctx.store(s_opt, optbuf + 4 * k, value=k)
                yield ctx.load(l_opt, optbuf + 4 * k)
            stdin_broken = False
            fd = 2
            for name in names:
                is_dash = name == "-"
                yield ctx.branch(br_dash, is_dash)
                if is_dash:
                    v = yield ctx.load(l2, ifd)
                    if v != 0:
                        stdin_broken = True
                else:
                    fd += 1
                    yield ctx.store(s3, ifd, value=fd)
                    yield ctx.load(l4, ifd)
                # deflate body: a little window activity per input.
                for w in range(2):
                    yield ctx.store(s_win, window + 4 * w, value=fd)
                    yield ctx.load(l_win, window + 4 * w)
            yield ctx.store(s_err, errvar, value=1 if stdin_broken else 0)
            rc = yield ctx.load(l_err, errvar)
            if rc:
                raise SimulatedFailure(
                    "gzip: stdin processed with wrong descriptor", pc=l2)

        inst = ProgramInstance(self.name, cm, [body])
        inst.root_cause = root
        return inst
