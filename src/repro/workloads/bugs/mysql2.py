"""MySQL#2: atomicity violation on ``thd->proc_info`` (crash).

One thread publishes a status string pointer and later clears it to
NULL; a monitor thread checks the pointer and then dereferences it.
Without the lock the clear can land between check and use, so the use
loads the NULL store -- the invalid dependence -- and the server
crashes. (This is the same shape as the paper's Figure 2(c).)
"""

from repro.common.errors import SimulatedFailure
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class MySQL2Bug(Program):
    name = "mysql2"

    def default_params(self):
        return {"buggy": False, "queries": 8}

    def build(self, buggy=False, queries=8):
        cm = CodeMap()
        mem = AddressSpace()
        proc_info = mem.var("proc_info")
        strbuf = mem.var("status_string")

        s_str = cm.store("write_status_string", function="worker")
        s_set = cm.store("set_proc_info", function="worker")
        s_null = cm.store("clear_proc_info", function="worker")
        l_chk = cm.load("monitor_check", function="monitor")
        br_chk = cm.branch("monitor_branch", function="monitor")
        l_use = cm.load("monitor_deref", function="monitor")
        a_fmt = cm.alu("format_row", function="monitor")
        s_work = cm.store("query_write_row", function="worker")
        l_work = cm.load("query_read_row", function="worker")
        rowbuf = mem.array("sort_buffer", 4)

        root = {(s_null, l_use)}

        def worker(ctx):
            for q in range(queries):
                race = buggy and q == queries - 1
                # The buggy build omits the lock only on the racing
                # query; earlier iterations happen to interleave safely
                # (the failure execution is one specific unlucky run).
                if not race:
                    yield ctx.acquire("thd_lock")
                yield ctx.store(s_str, strbuf, value=q)
                yield ctx.store(s_set, proc_info, value=strbuf)
                if not race:
                    yield ctx.release("thd_lock")
                # The query body: proc_info stays published while the
                # worker sorts, so monitors routinely take the deref
                # path during correct executions.
                for w in range(4):
                    yield ctx.store(s_work, rowbuf + 4 * w, value=q)
                    yield ctx.load(l_work, rowbuf + 4 * w)
                if race:
                    yield ctx.set_flag("query_running")
                    yield ctx.wait("monitor_checked")
                if not race:
                    yield ctx.acquire("thd_lock")
                yield ctx.store(s_null, proc_info, value=0)
                if not race:
                    yield ctx.release("thd_lock")
                if race:
                    yield ctx.set_flag("cleared")
            yield ctx.set_flag("worker_done")

        def monitor(ctx):
            polls = queries
            for p in range(polls):
                race = buggy and p == polls - 1
                if race:
                    yield ctx.wait("query_running")
                if not race:
                    yield ctx.acquire("thd_lock")
                v = yield ctx.load(l_chk, proc_info)
                yield ctx.branch(br_chk, bool(v))
                if v:
                    if race:
                        yield ctx.set_flag("monitor_checked")
                        yield ctx.wait("cleared")
                    pv = yield ctx.load(l_use, proc_info)
                    if not pv:
                        raise SimulatedFailure(
                            "mysql2: NULL proc_info dereference", pc=l_use)
                    yield ctx.alu(a_fmt)
                elif race:
                    yield ctx.set_flag("monitor_checked")
                if not race:
                    yield ctx.release("thd_lock")

        inst = ProgramInstance(self.name, cm, [worker, monitor])
        inst.root_cause = root
        return inst
