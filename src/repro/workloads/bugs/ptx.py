"""GNU ptx: buffer overflow of ``string`` in ``get_method``-style copy
(Figure 2(e), completion failure).

S2 initialises the string buffer; the copy loop S3 reads ``*string++``.
A backslash escape consumes *two* characters, so an odd-length run of
trailing backslashes jumps the cursor over the NUL terminator and the
next read lands on the word after the buffer -- last written by an
unrelated setup store S1. The copy produces garbage but the program
completes.
"""

from repro.common.errors import SimulatedFailure
from repro.common.rng import make_rng
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug

_BS = 92  # backslash
_CHAR = 97


@register_bug
class PtxBug(Program):
    name = "ptx"

    def default_params(self):
        return {"buggy": False, "length": 8, "input_seed": 0}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, buggy=False, length=8, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        string = mem.array("string", length)
        gap = mem.var("next_heap_word", packed=True)  # sits right after string
        out = mem.array("copy_out", length + 2)
        errvar = mem.var("overflow_flag")

        s1 = cm.store("S1_setup_next_alloc", function="setup")
        s2 = cm.store("S2_init_string", function="inputString")
        l3 = cm.load("S3_load_char", function="get_method")
        l3e = cm.load("S3_load_escaped", function="get_method")
        s_x = cm.store("S3_store_out", function="get_method")
        br = cm.branch("is_backslash", function="get_method")
        l_err = cm.load("check_overflow", function="main")
        s_err = cm.store("set_overflow", function="get_method")

        root = {(s1, l3)}

        # Build the input: characters with backslash runs. Benign inputs
        # use even-length runs; the failure input ends with an odd run.
        rng = make_rng(input_seed, stream=0x97C)
        chars = [_CHAR] * (length - 1)
        if buggy:
            run = 3
            chars[length - 1 - run:length - 1] = [_BS] * run
        else:
            if rng.random() < 0.5:
                pos = rng.randrange(max(1, length - 4))
                chars[pos:pos + 2] = [_BS, _BS]
        chars.append(0)  # NUL terminator

        def body(ctx):
            yield ctx.store(s1, gap, value=0xBEEF)
            for i, c in enumerate(chars):
                yield ctx.store(s2, string + 4 * i, value=c)
            i = 0
            j = 0
            overflow = False
            while True:
                if i >= length:
                    # Out-of-bounds read: the word after the buffer.
                    v = yield ctx.load(l3, gap)
                    yield ctx.store(s_err, errvar, value=1)
                    overflow = True
                    break
                c = yield ctx.load(l3, string + 4 * i)
                if c == 0:
                    break
                is_bs = c == _BS
                yield ctx.branch(br, is_bs)
                if is_bs:
                    # Escape: also consume the next character.
                    yield ctx.load(l3e, string + 4 * (i + 1))
                    i += 2
                else:
                    i += 1
                yield ctx.store(s_x, out + 4 * j, value=c)
                j += 1
            if not overflow:
                yield ctx.store(s_err, errvar, value=0)
            rc = yield ctx.load(l_err, errvar)
            if rc:
                raise SimulatedFailure("ptx: string ran out of bounds",
                                       pc=l3)

        inst = ProgramInstance(self.name, cm, [body])
        inst.root_cause = root
        return inst
