"""The paper's bug suite (Table V real bugs; Table VI uses kernel
``inject`` parameters).

Every bug Program takes ``buggy: bool``:

- ``buggy=False``: the *correct* program (proper synchronisation /
  benign input). Used for offline training and pruning runs.
- ``buggy=True``: the failure execution -- the buggy interleaving is
  forced deterministically (concurrency bugs) or the failure-triggering
  input is supplied (sequential bugs), and the run ends in a
  :class:`~repro.common.errors.SimulatedFailure`.

Each built instance tags its ground-truth ``root_cause`` dependence
keys so the evaluation can score diagnosis ranks.
"""

from repro.workloads.bugs import (  # noqa: F401
    aget,
    apache,
    gzip_bug,
    memcached,
    mysql1,
    mysql2,
    mysql3,
    paste,
    pbzip2,
    ptx,
    seq_bug,
)

from repro.workloads.bugs.aget import AgetBug  # noqa: F401
from repro.workloads.bugs.apache import ApacheBug  # noqa: F401
from repro.workloads.bugs.gzip_bug import GzipBug  # noqa: F401
from repro.workloads.bugs.memcached import MemcachedBug  # noqa: F401
from repro.workloads.bugs.mysql1 import MySQL1Bug  # noqa: F401
from repro.workloads.bugs.mysql2 import MySQL2Bug  # noqa: F401
from repro.workloads.bugs.mysql3 import MySQL3Bug  # noqa: F401
from repro.workloads.bugs.paste import PasteBug  # noqa: F401
from repro.workloads.bugs.pbzip2 import PBzip2Bug  # noqa: F401
from repro.workloads.bugs.ptx import PtxBug  # noqa: F401
from repro.workloads.bugs.seq_bug import SeqBug  # noqa: F401
