"""GNU paste: ``collapse_escapes`` reads past the delimiter buffer
(crash).

The delimiter list is copied while collapsing ``\\x`` escapes; a
delimiter string that *ends* in a backslash makes the collapse loop
read one element past the buffer -- the adjacent word written by an
unrelated store -- and the program crashes there.
"""

from repro.common.errors import SimulatedFailure
from repro.common.rng import make_rng
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug

_BS = 92
_TAB = 9


@register_bug
class PasteBug(Program):
    name = "paste"

    def default_params(self):
        return {"buggy": False, "ndelims": 4, "input_seed": 0}

    def params_for_seed(self, seed):
        return {"input_seed": seed}

    def build(self, buggy=False, ndelims=4, input_seed=0):
        cm = CodeMap()
        mem = AddressSpace()
        delims = mem.array("delims", ndelims)
        after = mem.var("line_buffer_ptr", packed=True)  # word right after delims
        collapsed = mem.array("collapsed", ndelims)
        lines = mem.array("lines", 4)

        s_after = cm.store("init_line_buffer", function="main")
        s_delim = cm.store("store_delim", function="main")
        l_delim = cm.load("collapse_load_delim", function="collapse_escapes")
        l_esc = cm.load("collapse_load_escaped", function="collapse_escapes")
        s_col = cm.store("collapse_store", function="collapse_escapes")
        br = cm.branch("collapse_is_escape", function="collapse_escapes")
        l_line = cm.load("paste_load_line", function="main")
        s_line = cm.store("paste_store_line", function="main")

        root = {(s_after, l_esc)}

        rng = make_rng(input_seed, stream=0x9A5)
        ds = [_TAB] * ndelims
        if buggy:
            ds[ndelims - 1] = _BS  # trailing backslash
        elif rng.random() < 0.7:
            # Interior escape (benign): anywhere but the last slot.
            pos = rng.randrange(ndelims - 1)
            ds[pos] = _BS

        def body(ctx):
            yield ctx.store(s_after, after, value=0xCAFE)
            # Read the input lines before collapsing the delimiters (the
            # real paste slurps its file arguments first).
            for k in range(4):
                yield ctx.store(s_line, lines + 4 * k, value=k)
                yield ctx.load(l_line, lines + 4 * k)
            for i, d in enumerate(ds):
                yield ctx.store(s_delim, delims + 4 * i, value=d)
            i = 0
            j = 0
            while i < ndelims:
                c = yield ctx.load(l_delim, delims + 4 * i)
                is_esc = c == _BS
                yield ctx.branch(br, is_esc)
                if is_esc:
                    if i + 1 >= ndelims:
                        # Reads the word after the buffer and crashes.
                        v = yield ctx.load(l_esc, after)
                        raise SimulatedFailure(
                            f"paste: collapse_escapes read {v:#x} past "
                            "the delimiter buffer", pc=l_esc)
                    yield ctx.load(l_esc, delims + 4 * (i + 1))
                    i += 2
                else:
                    i += 1
                yield ctx.store(s_col, collapsed + 4 * j, value=c)
                j += 1

        inst = ProgramInstance(self.name, cm, [body])
        inst.root_cause = root
        return inst
