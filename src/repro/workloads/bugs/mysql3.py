"""MySQL#3: atomicity violation in ``join_init_cache`` (out-of-bound
loop, crash).

A producer fills a join cache and bumps ``cache->used``; a consumer
reads ``used`` and walks the cache. In the buggy interleaving the
consumer reads a *reserved* (too large) ``used`` that the producer
stored before actually filling the slots, so the walk runs past the
filled region and its load hits the word after the cache -- last
written by an unrelated instruction. That wild dependence is the root
cause, and the dereference crashes.
"""

from repro.common.errors import SimulatedFailure
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class MySQL3Bug(Program):
    name = "mysql3"

    def default_params(self):
        return {"buggy": False, "rows": 6}

    def build(self, buggy=False, rows=6):
        cm = CodeMap()
        mem = AddressSpace()
        used = mem.var("cache_used")
        cache = mem.array("join_cache", rows)
        guard = mem.var("next_alloc", packed=True)  # the word right after the cache

        s_guard = cm.store("init_next_alloc", function="main")
        s_used0 = cm.store("init_used", function="join_init_cache")
        s_row = cm.store("producer_store_row", function="join_init_cache")
        s_used = cm.store("producer_store_used", function="join_init_cache")
        s_resv = cm.store("producer_reserve_used", function="join_init_cache")
        l_used = cm.load("consumer_load_used", function="join_read_cache")
        l_row = cm.load("consumer_load_row", function="join_read_cache")
        br_row = cm.branch("consumer_row_loop", function="join_read_cache")
        s_tab = cm.store("init_join_tab", function="join_read_cache")
        l_tab = cm.load("load_join_tab", function="join_read_cache")
        jtab = mem.array("join_tab", 6)

        # Both the reserved-count read and the resulting wild row read
        # are acceptable root-cause reports for this bug.
        root = {(s_guard, l_row), (s_resv, l_used)}

        def producer(ctx):
            yield ctx.store(s_guard, guard, value=0xDEAD)
            yield ctx.store(s_used0, used, value=0)
            yield ctx.set_flag("cache_ready")
            if not buggy:
                yield ctx.acquire("cache_lock")
            for r in range(rows):
                yield ctx.store(s_row, cache + 4 * r, value=r)
                yield ctx.store(s_used, used, value=r + 1)
            if not buggy:
                yield ctx.release("cache_lock")
            else:
                # The buggy path reserves space for a batch it has not
                # produced yet, then lets the consumer run.
                yield ctx.store(s_resv, used, value=rows + 1)
                yield ctx.set_flag("reserved")
                yield ctx.wait("consumed")
            yield ctx.set_flag("produced")

        def consumer(ctx):
            yield ctx.wait("cache_ready")
            # Set up the join tab descriptor (consumer-local state).
            for k in range(6):
                yield ctx.store(s_tab, jtab + 4 * k, value=k)
                yield ctx.load(l_tab, jtab + 4 * k)
            if buggy:
                yield ctx.wait("reserved")
            else:
                yield ctx.wait("produced")
                yield ctx.acquire("cache_lock")
            n = yield ctx.load(l_used, used)
            for i in range(n or 0):
                yield ctx.branch(br_row, True)
                v = yield ctx.load(l_row, cache + 4 * i)
                if i >= rows:
                    raise SimulatedFailure(
                        f"mysql3: read past join cache (slot {i}, "
                        f"value {v:#x})", pc=l_row)
            yield ctx.branch(br_row, False)
            if not buggy:
                yield ctx.release("cache_lock")
            yield ctx.set_flag("consumed")

        inst = ProgramInstance(self.name, cm, [producer, consumer])
        inst.root_cause = root
        return inst
