"""Apache: atomicity violation on a reference counter (crash).

Two request-handler threads decrement a shared reference count and the
thread that drops it to zero frees the object. Correctly the
load-decrement-store (and the conditional free) is atomic under a
mutex. In the buggy interleaving both threads load the same count, both
believe they are the last user, and both free: the second freer's
pre-free load of the object header reads the *other thread's free
store* -- the invalid inter-thread dependence -- and the run crashes.
"""

from repro.common.errors import SimulatedFailure
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class ApacheBug(Program):
    name = "apache"

    def default_params(self):
        return {"buggy": False, "requests": 6}

    def build(self, buggy=False, requests=6):
        cm = CodeMap()
        mem = AddressSpace()
        refcnt = mem.var("refcnt")
        obj = mem.var("obj_header")
        payload = mem.array("payload", 4)

        s_alloc = cm.store("alloc_obj", function="main")
        s_ref0 = cm.store("init_refcnt", function="main")
        s_pay = cm.store("fill_payload", function="main")
        l_pay = cm.load("handler_read_payload", function="handler")
        l_ref = cm.load("dec_load_refcnt", function="handler")
        s_ref = cm.store("dec_store_refcnt", function="handler")
        br_last = cm.branch("is_last_user", function="handler")
        l_obj = cm.load("free_load_header", function="handler")
        s_free = cm.store("free_store_header", function="handler")

        root = {(s_free, l_obj)}

        def main(ctx):
            for r in range(requests):
                yield ctx.store(s_alloc, obj, value=1)
                for w in range(4):
                    yield ctx.store(s_pay, payload + 4 * w, value=r)
                yield ctx.store(s_ref0, refcnt, value=2)
                yield ctx.set_flag(f"req{r}")
                yield ctx.wait(f"done{r}.0")
                yield ctx.wait(f"done{r}.1")

        def handler_for(hid):
            def handler(ctx):
                for r in range(requests):
                    yield ctx.wait(f"req{r}")
                    yield ctx.load(l_pay, payload + 4 * hid)
                    force_race = buggy and r == requests - 1
                    if not buggy:
                        yield ctx.acquire("refmutex")
                    if force_race:
                        # Both handlers load the count before either
                        # stores: the classic atomicity violation.
                        if hid == 0:
                            v = yield ctx.load(l_ref, refcnt)
                            yield ctx.set_flag(f"loaded{r}")
                            yield ctx.wait(f"peer_loaded{r}")
                        else:
                            yield ctx.wait(f"loaded{r}")
                            v = yield ctx.load(l_ref, refcnt)
                            yield ctx.set_flag(f"peer_loaded{r}")
                    else:
                        v = yield ctx.load(l_ref, refcnt)
                    # Both see v == 2 in the race, so both store 1 and
                    # both take the "last user" free path below once the
                    # *other* decrement lands.
                    yield ctx.store(s_ref, refcnt, value=v - 1)
                    if not buggy:
                        yield ctx.release("refmutex")
                    last = (v - 1 == 0) or force_race
                    yield ctx.branch(br_last, last)
                    if last:
                        if force_race and hid == 1:
                            yield ctx.wait(f"freed{r}")
                        hv = yield ctx.load(l_obj, obj)
                        if hv == 0:
                            raise SimulatedFailure(
                                "apache: double free of request object",
                                pc=l_obj)
                        yield ctx.store(s_free, obj, value=0)
                        if force_race and hid == 0:
                            yield ctx.set_flag(f"freed{r}")
                    yield ctx.set_flag(f"done{r}.{hid}")
            return handler

        inst = ProgramInstance(self.name, cm,
                               [main, handler_for(0), handler_for(1)])
        inst.root_cause = root
        return inst
