"""MySQL#1: atomicity violation causing loss of logged data (completion).

A binlog writer reserves a buffer position and then writes the entry;
a rotator thread may reset the buffer in between, so the writer's
position load observes the rotator's reset store and the entry is lost.
The server keeps running: after the race a long recovery scan executes
code the network never saw, flooding the Debug Buffer with
predicted-invalid (but benign) dependences. By the time the data loss
is detected, the root-cause entry has been overwritten -- this is the
paper's case where the default 60-entry buffer is insufficient and
diagnosis needs a larger one.
"""

from repro.common.errors import SimulatedFailure
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class MySQL1Bug(Program):
    name = "mysql1"

    def default_params(self):
        # scan_len=60 recovery records -> ~65 predicted-invalid entries,
        # just enough to overwrite the root cause in the default
        # 60-entry Debug Buffer (the paper's MySQL#1 observation).
        return {"buggy": False, "entries": 8, "scan_len": 60}

    def build(self, buggy=False, entries=8, scan_len=60):
        cm = CodeMap()
        mem = AddressSpace()
        pos = mem.var("binlog_pos")
        logbuf = mem.array("binlog", entries + 2)
        scanbuf = mem.array("recovery_area", 8)
        lost = mem.var("lost_counter")

        s_pos0 = cm.store("init_pos", function="binlog_init")
        l_pos = cm.load("writer_load_pos", function="binlog_write")
        s_entry = cm.store("writer_store_entry", function="binlog_write")
        s_adv = cm.store("writer_advance_pos", function="binlog_write")
        s_reset = cm.store("rotator_reset_pos", function="binlog_rotate")
        s_fill = cm.store("recovery_fill", function="binlog_init")
        l_scan = cm.load("recovery_scan_load", function="recovery_scan")
        s_scan = cm.store("recovery_scan_store", function="recovery_scan")
        l_lost = cm.load("verify_load_lost", function="main")
        s_lost = cm.store("verify_store_lost", function="recovery_scan")

        root = {(s_reset, l_pos)}

        def writer(ctx):
            yield ctx.store(s_pos0, pos, value=0)
            # Recovery area is written once at startup; its scan loop
            # only ever runs after the race, so its dependences are
            # never in the training traces.
            for w in range(8):
                yield ctx.store(s_fill, scanbuf + 4 * w, value=w)
            yield ctx.set_flag("log_ready")
            for e in range(entries):
                race = buggy and e == entries // 2
                if not buggy:
                    yield ctx.acquire("log_lock")
                if race:
                    yield ctx.set_flag("mid_write")
                    yield ctx.wait("rotated")
                p = yield ctx.load(l_pos, pos)
                yield ctx.store(s_entry, logbuf + 4 * (p % (entries + 2)),
                                value=e)
                yield ctx.store(s_adv, pos, value=(p or 0) + 1)
                if not buggy:
                    yield ctx.release("log_lock")
            yield ctx.set_flag("writes_done")
            if buggy:
                # Post-race recovery: replays the write path, but each
                # replayed record first checkpoints the cursor with the
                # recovery store -- so the position accessor keeps
                # observing a writer it was never trained with. The
                # replay's other dependences are ordinary trained ones,
                # which keeps every window's prefix familiar and the
                # final dependence anomalous: a steady stream of
                # predicted-invalid (but benign) entries that floods
                # the Debug Buffer long before the loss is detected.
                for k in range(scan_len):
                    for step in range(4):
                        yield ctx.store(s_adv, pos, value=k + step)
                        yield ctx.load(l_pos, pos)
                    yield ctx.store(s_scan, pos, value=k)
                    yield ctx.load(l_pos, pos)
                yield ctx.store(s_lost, lost, value=1)
            v = yield ctx.load(l_lost, lost)
            if v:
                raise SimulatedFailure("mysql1: binlog entries lost",
                                       pc=l_lost)

        def rotator(ctx):
            yield ctx.wait("log_ready")
            if buggy:
                yield ctx.wait("mid_write")
                yield ctx.store(s_reset, pos, value=0)
                yield ctx.set_flag("rotated")
            else:
                yield ctx.wait("writes_done")
                yield ctx.acquire("log_lock")
                yield ctx.store(s_reset, pos, value=0)
                yield ctx.release("log_lock")

        inst = ProgramInstance(self.name, cm, [writer, rotator])
        inst.root_cause = root
        return inst
