"""PBZip2: order violation between main and consumer threads (crash).

The real bug: main frees the shared ``fifo`` queue after its own loop
finishes but *before* the consumer threads are done draining it; a
consumer then dereferences ``fifo->mutex`` inside the freed object.
Correct runs join the consumers first. The invalid dependence is the
consumer's queue load reading main's free store.
"""

from repro.common.errors import SimulatedFailure
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class PBzip2Bug(Program):
    name = "pbzip2"

    def default_params(self):
        return {"buggy": False, "blocks": 6}

    def build(self, buggy=False, blocks=6):
        cm = CodeMap()
        mem = AddressSpace()
        fifo = mem.var("fifo_header")
        queue = mem.array("fifo_slots", blocks)

        s_fifo = cm.store("alloc_fifo", function="main")
        s_put = cm.store("queue_put", function="producer")
        l_hdr = cm.load("consumer_load_fifo", function="consumer")
        l_get = cm.load("queue_get", function="consumer")
        a_dec = cm.alu("decompress_block", function="consumer")
        s_free = cm.store("free_fifo", function="main")

        root = {(s_free, l_hdr)}

        def main(ctx):
            yield ctx.store(s_fifo, fifo, value=1)
            yield ctx.set_flag("fifo_ready")
            for b in range(blocks):
                yield ctx.store(s_put, queue + 4 * b, value=b + 1)
                yield ctx.set_flag(f"block{b}")
            if buggy:
                # Forgets the join: frees while the last block is still
                # being drained.
                yield ctx.wait("consumer_draining")
                yield ctx.store(s_free, fifo, value=0)
                yield ctx.set_flag("freed")
            else:
                yield ctx.wait("consumer_done")
                yield ctx.store(s_free, fifo, value=0)

        def consumer(ctx):
            yield ctx.wait("fifo_ready")
            for b in range(blocks):
                yield ctx.wait(f"block{b}")
                if buggy and b == blocks - 1:
                    yield ctx.set_flag("consumer_draining")
                    yield ctx.wait("freed")
                h = yield ctx.load(l_hdr, fifo)
                if not h:
                    raise SimulatedFailure(
                        "pbzip2: use of freed fifo", pc=l_hdr)
                yield ctx.load(l_get, queue + 4 * b)
                yield ctx.alu(a_dec)
            yield ctx.set_flag("consumer_done")

        inst = ProgramInstance(self.name, cm, [main, consumer])
        inst.root_cause = root
        return inst
