"""Aget: order violation on ``bwritten`` (completion-style failure).

The real bug: Aget's SIGINT handler saves download state, reading the
shared byte counter ``bwritten`` *before* the downloader thread has
written its final value -- an order violation. The saved state is stale,
so a resumed download is corrupt; the program otherwise completes.

Correct runs: the saver waits for the downloader's completion signal.
Buggy run: the save is forced between a mid-loop counter update and the
final one, so the saver's load reads the mid-loop store.
"""

from repro.common.errors import SimulatedFailure
from repro.workloads.framework import (
    AddressSpace,
    CodeMap,
    Program,
    ProgramInstance,
)
from repro.workloads.registry import register_bug


@register_bug
class AgetBug(Program):
    name = "aget"

    def default_params(self):
        return {"buggy": False, "chunks": 12, "save_at": 7}

    def build(self, buggy=False, chunks=12, save_at=7):
        cm = CodeMap()
        mem = AddressSpace()
        bwritten = mem.var("bwritten")
        saved = mem.var("saved_state")
        buf = mem.array("recvbuf", 4)

        s_init = cm.store("init_bwritten", function="main")
        s_buf = cm.store("recv_chunk", function="http_get")
        l_buf = cm.load("read_chunk", function="http_get")
        s_upd = cm.store("update_bwritten", function="http_get")
        s_fin = cm.store("final_bwritten", function="http_get")
        l_save = cm.load("save_load_bwritten", function="save_log")
        s_save = cm.store("save_store_state", function="save_log")
        l_chk = cm.load("verify_load_state", function="main")
        s_hdr = cm.store("save_write_header", function="save_log")
        l_hdr = cm.load("save_read_header", function="save_log")
        hdr = mem.array("log_header", 6)

        root = {(s_upd, l_save)}

        def downloader(ctx):
            yield ctx.store(s_init, bwritten, value=0)
            yield ctx.set_flag("started")
            for i in range(chunks):
                yield ctx.store(s_buf, buf + 4 * (i % 4), value=i)
                yield ctx.load(l_buf, buf + 4 * (i % 4))
                yield ctx.store(s_upd, bwritten, value=i + 1)
                if buggy and i == save_at:
                    # The signal arrives here: let the saver run before
                    # the final counter update.
                    yield ctx.set_flag("sigint")
                    yield ctx.wait("saved")
            yield ctx.store(s_fin, bwritten, value=chunks)
            yield ctx.set_flag("download_done")
            yield ctx.wait("save_done")
            v = yield ctx.load(l_chk, saved)
            if v != chunks:
                raise SimulatedFailure("aget: saved state is stale "
                                       f"({v} != {chunks})", pc=l_chk)

        def saver(ctx):
            if buggy:
                yield ctx.wait("sigint")
            else:
                yield ctx.wait("download_done")
            # Write and re-read the log header before sampling the
            # counter (gives the saver thread its own dependence
            # history, as the real save_log routine has).
            for k in range(6):
                yield ctx.store(s_hdr, hdr + 4 * k, value=k)
                yield ctx.load(l_hdr, hdr + 4 * k)
            v = yield ctx.load(l_save, bwritten)
            yield ctx.store(s_save, saved, value=v)
            if buggy:
                yield ctx.set_flag("saved")
            yield ctx.set_flag("save_done")

        inst = ProgramInstance(self.name, cm, [downloader, saver])
        inst.root_cause = root
        return inst
