"""Columnar binary trace format: packed, checksummed, memory-mappable.

JSON-lines traces pay a per-record parse on every read -- fine for
debugging, hostile to throughput. This module stores one run as five
packed numpy columns so a reader attaches the whole trace with one
``mmap`` and never touches a parser:

.. code-block:: text

    offset 0    magic          b"RPRCOL01" (8 bytes)
    offset 8    header length  u32 little-endian
    offset 12   header JSON    run metadata + column spec + checksum
    ...         zero padding   to the next 64-byte boundary
    aligned     columns        tid <i4 | pc <i8 | kind u1 | addr <i8
                               | flags u1  (each column starts on its
                               own 64-byte boundary, n_events entries)

``kind`` holds one code per :class:`~repro.trace.events.EventKind`
(LOAD=0, STORE=1, BRANCH=2, ALU=3); 255 marks a record poisoned by
fault injection. ``flags`` packs ``is_stack`` (bit 0) and the branch
``taken`` outcome (bit 1). ``addr`` is 0 for non-memory events.

Compatibility rules:

- the format is versioned in the header; a reader refuses versions it
  does not know (same policy as the JSON-lines header);
- the header's ``columns`` entry records each column's name, dtype and
  payload offset, so a future version can append columns without
  breaking old readers (unknown columns are ignorable by position);
- the ``checksum`` (blake2b of the column payload) is computed *after*
  fault application -- it protects against storage damage, not against
  the deliberately-injected faults it faithfully records. A checksum
  mismatch is file-level damage of unknown extent and is never
  recoverable, like a damaged JSON-lines header.

Round-tripping is lossless with respect to :func:`read_trace` on a
JSON-lines file: both decode to identical :class:`TraceRun` events
(including the quirk that an unset branch ``taken`` comes back as
``False``). Fault injection reuses the format-agnostic
:func:`repro.trace.trace_io.fault_decisions`, so the PR 3 differential
suite holds under either format: the same plan drops/corrupts/reorders
the same records; corruption here poisons the kind byte (always
detectable, modelling a torn write).

:func:`pack_run`/:func:`unpack_run` use the same columns as an
in-memory wire format: pool workers ship collected runs to the parent
as packed arrays (one buffer per column) instead of pickling a list of
per-event dataclasses, which is where most of the old transfer cost
went.
"""

import hashlib
import json

import numpy as np

from repro import faults as _faults
from repro import telemetry
from repro.common.errors import TraceError
from repro.trace.events import EventKind, TraceEvent, TraceRun
from repro.trace.trace_io import fault_decisions

MAGIC = b"RPRCOL01"
FORMAT_VERSION = 1
ALIGNMENT = 64

#: Column name -> little-endian dtype, in payload order.
COLUMNS = (("tid", "<i4"), ("pc", "<i8"), ("kind", "u1"),
           ("addr", "<i8"), ("flags", "u1"))

KIND_CODES = {EventKind.LOAD: 0, EventKind.STORE: 1,
              EventKind.BRANCH: 2, EventKind.ALU: 3}
CODE_KINDS = {code: kind for kind, code in KIND_CODES.items()}
#: Kind code written over records corrupted by fault injection. Never a
#: valid code, so the damage is always *detectable* (torn write, not a
#: bit flip that happens to decode).
POISONED_KIND = 255
FLAG_STACK = 0x1
FLAG_TAKEN = 0x2
#: Set on records an active sampling policy would trace (see
#: :mod:`repro.core.policy`). Readers that predate the bit ignore it
#: (decoding masks only the bits it knows), so a sampled trace stays
#: readable everywhere; with no policy the bit is never written and the
#: output is byte-identical to the pre-policy format.
FLAG_SAMPLED = 0x4


def is_columnar(path):
    """Sniff whether ``path`` starts with the columnar magic string."""
    try:
        with open(path, "rb") as f:
            return f.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def pack_events(events):
    """Pack events into the five column arrays (fault-free)."""
    n = len(events)
    tid = np.empty(n, dtype="<i4")
    pc = np.empty(n, dtype="<i8")
    kind = np.empty(n, dtype="u1")
    addr = np.zeros(n, dtype="<i8")
    flags = np.zeros(n, dtype="u1")
    for i, e in enumerate(events):
        tid[i] = e.tid
        pc[i] = e.pc
        kind[i] = KIND_CODES[e.kind]
        if e.kind.is_memory():
            addr[i] = e.addr
            if e.is_stack:
                flags[i] = FLAG_STACK
        elif e.taken:
            flags[i] = FLAG_TAKEN
    return {"tid": tid, "pc": pc, "kind": kind, "addr": addr, "flags": flags}


def _decode_events(cols, n, path="<memory>", recover=False, tele=None):
    """Column arrays -> event list; returns ``(events, n_skipped)``.

    Decoding matches the JSON-lines reader record for record: memory
    events carry ``addr``/``is_stack``, branches carry ``taken``, and a
    record whose kind code is unknown (poisoned or damaged) raises --
    or, under ``recover``, is skipped and counted.
    """
    tids = cols["tid"].tolist()
    pcs = cols["pc"].tolist()
    codes = cols["kind"].tolist()
    addrs = cols["addr"].tolist()
    flags = cols["flags"].tolist()
    events = []
    skipped = 0
    for i in range(n):
        kind = CODE_KINDS.get(codes[i])
        if kind is None:
            if not recover:
                raise TraceError(f"{path}: record {i}: bad trace record "
                                 f"(kind code {codes[i]})")
            skipped += 1
            if tele is not None and tele.enabled:
                tele.inc("faults.trace_records_skipped")
            continue
        fl = flags[i]
        if kind.is_memory():
            events.append(TraceEvent(tids[i], pcs[i], kind, addr=addrs[i],
                                     is_stack=bool(fl & FLAG_STACK)))
        elif kind is EventKind.BRANCH:
            events.append(TraceEvent(tids[i], pcs[i], kind,
                                     taken=bool(fl & FLAG_TAKEN)))
        else:
            events.append(TraceEvent(tids[i], pcs[i], kind))
    return events, skipped


def _sampled_mask(events, policy):
    """Per-event sampling decisions, aligned with ``events``.

    The hash key is ``(tid, per-tid record ordinal)`` over the original
    stream, so the mask is a pure function of the run and the policy --
    independent of fault reordering, worker count, or write order.
    """
    counters = {}
    mask = np.zeros(len(events), dtype=bool)
    for i, e in enumerate(events):
        ordinal = counters.get(e.tid, 0) + 1
        counters[e.tid] = ordinal
        if policy.samples_record(e.tid, ordinal, pc=e.pc):
            mask[i] = True
    return mask


def _faulted_columns(events, plan, tele, sampled=None):
    """Column arrays with the plan's trace faults applied.

    Decisions come from the shared :func:`fault_decisions`, so the
    damaged record set is identical to the JSON-lines writer's;
    corruption poisons the kind byte instead of truncating a line.
    ``sampled`` (a boolean mask over the *original* events) marks the
    surviving records' FLAG_SAMPLED bits before reordering.
    """
    kept, corrupt, order = fault_decisions(len(events), plan, tele)
    cols = pack_events([events[i] for i in kept])
    if sampled is not None:
        for pos, index in enumerate(kept):
            if sampled[index]:
                cols["flags"][pos] |= FLAG_SAMPLED
    if corrupt:
        position = {index: pos for pos, index in enumerate(kept)}
        for index in corrupt:
            cols["kind"][position[index]] = POISONED_KIND
    if order != list(range(len(kept))):
        perm = np.asarray(order, dtype=np.intp)
        cols = {name: arr[perm] for name, arr in cols.items()}
    return cols


def write_trace_columnar(run, path, faults=None, policy=None):
    """Write a :class:`TraceRun` to ``path`` in the columnar format.

    Honours the active :class:`~repro.faults.FaultPlan` exactly like
    the JSON-lines writer (same decisions, format-native damage); with
    a zero plan the output is byte-identical across reruns. An enabled
    :class:`~repro.core.policy.PolicySpec` (``policy`` argument,
    falling back to the ambient policy) stamps FLAG_SAMPLED on the
    records its rate/suspicion decision would trace -- backoff is a
    runtime signal and does not apply at write time. A disabled policy
    writes byte-identical output to the pre-policy format.
    """
    from repro.core import policy as _policy
    plan = faults if faults is not None else _faults.get_plan()
    pol = policy if policy is not None else _policy.get_policy()
    sampled = _sampled_mask(run.events, pol) if pol.enabled else None
    if plan.enabled:
        cols = _faulted_columns(run.events, plan, telemetry.get_registry(),
                                sampled=sampled)
    else:
        cols = pack_events(run.events)
        if sampled is not None:
            cols["flags"][sampled] |= FLAG_SAMPLED
    n_events = int(cols["tid"].size)
    chunks = []
    column_spec = []
    pos = 0
    for name, dtype in COLUMNS:
        pad = (-pos) % ALIGNMENT
        if pad:
            chunks.append(b"\0" * pad)
            pos += pad
        column_spec.append([name, dtype, pos])
        raw = cols[name].tobytes()
        chunks.append(raw)
        pos += len(raw)
    payload = b"".join(chunks)
    header = {
        "version": FORMAT_VERSION,
        "failed": run.failed,
        "n_threads": run.n_threads,
        "seed": run.seed,
        "failure": str(run.failure) if run.failure else None,
        "n_events": n_events,
        "columns": column_spec,
        "checksum": hashlib.blake2b(payload, digest_size=16).hexdigest(),
    }
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    pad = (-(len(MAGIC) + 4 + len(head))) % ALIGNMENT
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(len(head).to_bytes(4, "little"))
        f.write(head)
        f.write(b"\0" * pad)
        f.write(payload)


def read_columns(path, verify_checksum=True):
    """Attach a columnar trace: ``(header, columns)`` with zero copies.

    The column arrays are read-only numpy views over one memory map of
    the file -- no parsing, no allocation proportional to the trace.
    Header damage (bad magic, truncation, unknown version, checksum
    mismatch) always raises :class:`TraceError`.
    """
    with open(path, "rb") as f:
        magic = f.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceError(f"{path}: not a columnar trace")
        raw_len = f.read(4)
        if len(raw_len) < 4:
            raise TraceError(f"{path}: truncated columnar header")
        hlen = int.from_bytes(raw_len, "little")
        head = f.read(hlen)
        if len(head) < hlen:
            raise TraceError(f"{path}: truncated columnar header")
        try:
            header = json.loads(head.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as e:
            raise TraceError(f"{path}: corrupt trace header ({e})")
        if not isinstance(header, dict):
            raise TraceError(f"{path}: corrupt trace header")
        if header.get("version") != FORMAT_VERSION:
            raise TraceError(f"{path}: unsupported trace version")
    payload_start = -(-(len(MAGIC) + 4 + hlen) // ALIGNMENT) * ALIGNMENT
    n = int(header["n_events"])
    try:
        spec = [(str(name), str(dtype), int(offset))
                for name, dtype, offset in header["columns"]]
        payload_len = max((off + n * np.dtype(dt).itemsize
                           for _nm, dt, off in spec), default=0)
    except (KeyError, TypeError, ValueError) as e:
        raise TraceError(f"{path}: corrupt trace header ({e})")
    data = np.memmap(path, dtype="u1", mode="r")
    if data.size < payload_start + payload_len:
        raise TraceError(f"{path}: truncated columnar payload")
    if verify_checksum:
        payload = data[payload_start:payload_start + payload_len]
        digest = hashlib.blake2b(payload.tobytes(),
                                 digest_size=16).hexdigest()
        if digest != header.get("checksum"):
            raise TraceError(f"{path}: columnar payload checksum mismatch")
    cols = {}
    for name, dtype, offset in spec:
        cols[name] = np.frombuffer(data, dtype=dtype, count=n,
                                   offset=payload_start + offset)
    return header, cols


def read_trace_columnar(path, recover=False, quarantine=None):
    """Read a columnar trace into a :class:`TraceRun`.

    Same recovery contract as the JSON-lines reader: per-record damage
    (a poisoned kind byte) raises unless ``recover``/``quarantine`` is
    given, in which case damaged records are skipped, counted in
    telemetry (``faults.trace_records_skipped``) and reported via
    ``run.meta["skipped_records"]`` plus one quarantine record per
    damaged file. Header/checksum damage always raises.
    """
    recover = recover or quarantine is not None
    tele = telemetry.get_registry()
    header, cols = read_columns(path)
    events, skipped = _decode_events(cols, int(header["n_events"]),
                                     path=str(path), recover=recover,
                                     tele=tele)
    run = TraceRun(events=events, failed=header["failed"],
                   n_threads=header["n_threads"], seed=header["seed"])
    if skipped:
        run.meta["skipped_records"] = skipped
        if quarantine is not None:
            quarantine.admit(
                "trace.read", str(path),
                TraceError(f"{skipped} corrupt record(s) skipped"),
                attempts=1)
    return run


def pack_run(run):
    """Picklable columnar payload of a run, for cross-process transfer.

    The event list (the bulk of a run) becomes five flat numpy buffers;
    everything else (code map, failure, meta) is small and passes
    through untouched. :func:`unpack_run` reconstructs an *exactly*
    equal :class:`TraceRun`.
    """
    return {
        "columns": pack_events(run.events),
        "failed": run.failed,
        "failure": run.failure,
        "code_map": run.code_map,
        "n_threads": run.n_threads,
        "seed": run.seed,
        "meta": run.meta,
    }


def unpack_run(payload):
    """Inverse of :func:`pack_run` (exact round trip)."""
    cols = payload["columns"]
    events, _ = _decode_events(cols, int(cols["tid"].size))
    return TraceRun(events=events, failed=payload["failed"],
                    failure=payload["failure"],
                    code_map=payload["code_map"],
                    n_threads=payload["n_threads"], seed=payload["seed"],
                    meta=payload["meta"])
