"""Execution traces and RAW-dependence extraction.

This subsystem plays the role of the paper's PIN-based tracing tool plus
the *Input Generator* front half: it records per-thread memory-access
instruction streams and turns them into labelled RAW dependences and
dependence sequences.
"""

from repro.trace.events import EventKind, TraceEvent, TraceRun
from repro.trace.raw import (
    RawDep,
    RawDepExtractor,
    extract_raw_deps,
    extract_raw_deps_with_negatives,
)
from repro.trace.trace_io import TRACE_FORMATS, read_trace, write_trace

__all__ = [
    "EventKind",
    "TraceEvent",
    "TraceRun",
    "RawDep",
    "RawDepExtractor",
    "extract_raw_deps",
    "extract_raw_deps_with_negatives",
    "read_trace",
    "write_trace",
    "TRACE_FORMATS",
]
