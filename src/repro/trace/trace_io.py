"""Trace serialisation: JSON-lines plus the columnar binary format.

The historical format is JSON-lines -- one event per line so very long
runs can be streamed; the first line is a header record with run-level
metadata. :mod:`repro.trace.columnar` adds a packed, memory-mappable
binary format; :func:`write_trace` selects between them via
``trace_format`` and :func:`read_trace` auto-detects on read (columnar
files start with a magic string no JSON header can produce).

This layer is a fault boundary: :func:`write_trace` honours the active
:class:`~repro.faults.FaultPlan` (records can be dropped, mangled or
reordered on the way to disk -- modelling lossy production tracing),
and :func:`read_trace` can *recover* from such damage by skipping
malformed records instead of aborting, reporting what it skipped via
telemetry, ``run.meta`` and an optional quarantine. The fault
*decisions* (:func:`fault_decisions`) are format-agnostic: the same
plan drops, corrupts and reorders the same records whether the trace is
written as JSON-lines or columnar -- only the representation of the
damage differs (a truncated line vs a poisoned kind byte).
"""

import json

from repro import faults as _faults
from repro import telemetry
from repro.common.errors import TraceError
from repro.trace.events import EventKind, TraceEvent, TraceRun

_FORMAT_VERSION = 1

TRACE_FORMATS = ("jsonl", "columnar")


def _event_record(e):
    """The JSON-lines record (a list) for one event."""
    rec = [e.tid, e.pc, e.kind.value]
    if e.kind.is_memory():
        rec.append(e.addr)
        if e.is_stack:
            rec.append(1)
    elif e.kind == EventKind.BRANCH:
        rec.append(1 if e.taken else 0)
    return rec


def _mangle(line, plan, index):
    """Deterministically corrupt one serialised record."""
    cut = max(1, int(plan.uniform("trace_corrupt_cut", index) * len(line)))
    # A truncated JSON array/object is never valid JSON, so the damage
    # is always *detectable* -- modelling torn writes, not bit flips
    # that happen to decode.
    return line[:cut]


def fault_decisions(n_events, plan, tele):
    """Format-agnostic trace-fault decisions for one written trace.

    Every decision is a pure hash of ``(plan.seed, site, index)``, so
    the JSON-lines and columnar writers damage exactly the same
    records. Returns ``(kept, corrupt, order)``:

    - ``kept``: original indices that survive the drop site, in order;
    - ``corrupt``: the subset of ``kept`` whose record is corrupted
      (each format applies its own always-detectable damage);
    - ``order``: the permutation of ``kept`` *positions* after the
      adjacent-swap reorder site (keyed, per position, by the original
      index sitting there before any swap).
    """
    kept = []
    corrupt = set()
    for index in range(n_events):
        if plan.fires("trace_drop", index):
            if tele.enabled:
                tele.inc("faults.trace_drops")
            continue
        if plan.fires("trace_corrupt", index):
            corrupt.add(index)
            if tele.enabled:
                tele.inc("faults.trace_corruptions")
        kept.append(index)
    order = list(range(len(kept)))
    for pos in range(len(kept) - 1):
        if plan.fires("trace_reorder", kept[pos]):
            order[pos], order[pos + 1] = order[pos + 1], order[pos]
            if tele.enabled:
                tele.inc("faults.trace_reorders")
    return kept, corrupt, order


def _faulted_lines(events, plan, tele):
    """Apply the plan's trace faults to the serialised event records."""
    kept, corrupt, order = fault_decisions(len(events), plan, tele)
    lines = []
    for index in kept:
        line = json.dumps(_event_record(events[index]))
        if index in corrupt:
            line = _mangle(line, plan, index)
        lines.append(line)
    return [lines[pos] for pos in order]


def write_trace(run, path, faults=None, trace_format=None, policy=None):
    """Write a :class:`TraceRun` to ``path``.

    ``trace_format`` selects the on-disk representation: ``"jsonl"``
    (the default) or ``"columnar"`` (see
    :mod:`repro.trace.columnar`). Both decode back to identical
    :class:`TraceRun`\\ s via :func:`read_trace`, which auto-detects
    the format.

    ``faults`` (or the process-wide active plan) may drop, corrupt or
    reorder event records on the way out; the header is always written
    intact. With a zero plan the output is byte-identical to the
    fault-free writer.

    ``policy`` (an enabled :class:`~repro.core.policy.PolicySpec`) is
    honoured by the columnar format only, which has a per-record flags
    byte to stamp the FLAG_SAMPLED bit into; the JSON-lines format has
    no record flags and ignores it.
    """
    if trace_format not in (None, "jsonl"):
        if trace_format != "columnar":
            raise TraceError(f"unknown trace format {trace_format!r} "
                             f"(expected one of {TRACE_FORMATS})")
        from repro.trace import columnar

        columnar.write_trace_columnar(run, path, faults=faults,
                                      policy=policy)
        return
    plan = faults if faults is not None else _faults.get_plan()
    with open(path, "w", encoding="utf-8") as f:
        header = {
            "version": _FORMAT_VERSION,
            "failed": run.failed,
            "n_threads": run.n_threads,
            "seed": run.seed,
            "failure": str(run.failure) if run.failure else None,
        }
        f.write(json.dumps(header) + "\n")
        if plan.enabled:
            for line in _faulted_lines(run.events, plan,
                                       telemetry.get_registry()):
                f.write(line + "\n")
            return
        for e in run.events:
            f.write(json.dumps(_event_record(e)) + "\n")


def _parse_record(rec):
    tid, pc, kind_str = rec[0], rec[1], rec[2]
    kind = EventKind(kind_str)
    if kind.is_memory():
        addr = rec[3]
        is_stack = len(rec) > 4 and bool(rec[4])
        return TraceEvent(tid, pc, kind, addr=addr, is_stack=is_stack)
    if kind == EventKind.BRANCH:
        return TraceEvent(tid, pc, kind, taken=bool(rec[3]))
    return TraceEvent(tid, pc, kind)


def read_trace(path, recover=False, quarantine=None):
    """Read a trace written by :func:`write_trace` (either format).

    The format is auto-detected: columnar files start with the
    :data:`repro.trace.columnar.MAGIC` byte string, which is never a
    valid first byte sequence of a JSON-lines header, so sniffing the
    first 8 bytes is unambiguous.

    Args:
        path: trace file.
        recover: skip malformed event records instead of raising.
            Skipped records are counted in telemetry
            (``faults.trace_records_skipped``) and in
            ``run.meta["skipped_records"]``.
        quarantine: optional :class:`~repro.faults.Quarantine`; implies
            ``recover`` and receives one record per damaged file.

    A missing or malformed *header* is never recoverable (there is no
    run to attach events to) and always raises :class:`TraceError`.
    """
    from repro.trace import columnar

    if columnar.is_columnar(path):
        return columnar.read_trace_columnar(path, recover=recover,
                                            quarantine=quarantine)
    recover = recover or quarantine is not None
    tele = telemetry.get_registry()
    skipped = 0
    with open(path, "r", encoding="utf-8") as f:
        header_line = f.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        try:
            header = json.loads(header_line)
        except ValueError as e:
            raise TraceError(f"{path}: corrupt trace header ({e})")
        if not isinstance(header, dict):
            raise TraceError(f"{path}: corrupt trace header")
        if header.get("version") != _FORMAT_VERSION:
            raise TraceError(f"{path}: unsupported trace version")
        events = []
        for lineno, line in enumerate(f, start=2):
            try:
                events.append(_parse_record(json.loads(line)))
            except (ValueError, IndexError, KeyError, TypeError) as e:
                if not recover:
                    raise TraceError(f"{path}:{lineno}: bad trace "
                                     f"record ({e})")
                skipped += 1
                if tele.enabled:
                    tele.inc("faults.trace_records_skipped")
    run = TraceRun(events=events, failed=header["failed"],
                   n_threads=header["n_threads"], seed=header["seed"])
    if skipped:
        run.meta["skipped_records"] = skipped
        if quarantine is not None:
            quarantine.admit(
                "trace.read", str(path),
                TraceError(f"{skipped} corrupt record(s) skipped"),
                attempts=1)
    return run
