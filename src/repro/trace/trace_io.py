"""Trace serialisation (JSON-lines).

Traces are written one event per line so very long runs can be streamed.
The first line is a header record with run-level metadata.
"""

import json

from repro.common.errors import TraceError
from repro.trace.events import EventKind, TraceEvent, TraceRun

_FORMAT_VERSION = 1


def write_trace(run, path):
    """Write a :class:`TraceRun` to ``path`` as JSON-lines."""
    with open(path, "w", encoding="utf-8") as f:
        header = {
            "version": _FORMAT_VERSION,
            "failed": run.failed,
            "n_threads": run.n_threads,
            "seed": run.seed,
            "failure": str(run.failure) if run.failure else None,
        }
        f.write(json.dumps(header) + "\n")
        for e in run.events:
            rec = [e.tid, e.pc, e.kind.value]
            if e.kind.is_memory():
                rec.append(e.addr)
                if e.is_stack:
                    rec.append(1)
            elif e.kind == EventKind.BRANCH:
                rec.append(1 if e.taken else 0)
            f.write(json.dumps(rec) + "\n")


def read_trace(path):
    """Read a trace written by :func:`write_trace`."""
    with open(path, "r", encoding="utf-8") as f:
        header_line = f.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("version") != _FORMAT_VERSION:
            raise TraceError(f"{path}: unsupported trace version")
        events = []
        for line in f:
            rec = json.loads(line)
            tid, pc, kind_str = rec[0], rec[1], rec[2]
            kind = EventKind(kind_str)
            if kind.is_memory():
                addr = rec[3]
                is_stack = len(rec) > 4 and bool(rec[4])
                events.append(TraceEvent(tid, pc, kind, addr=addr,
                                         is_stack=is_stack))
            elif kind == EventKind.BRANCH:
                events.append(TraceEvent(tid, pc, kind, taken=bool(rec[3])))
            else:
                events.append(TraceEvent(tid, pc, kind))
    return TraceRun(events=events, failed=header["failed"],
                    n_threads=header["n_threads"], seed=header["seed"])
