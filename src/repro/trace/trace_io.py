"""Trace serialisation (JSON-lines).

Traces are written one event per line so very long runs can be streamed.
The first line is a header record with run-level metadata.

This layer is a fault boundary: :func:`write_trace` honours the active
:class:`~repro.faults.FaultPlan` (records can be dropped, mangled or
reordered on the way to disk -- modelling lossy production tracing),
and :func:`read_trace` can *recover* from such damage by skipping
malformed records instead of aborting, reporting what it skipped via
telemetry, ``run.meta`` and an optional quarantine.
"""

import json

from repro import faults as _faults
from repro import telemetry
from repro.common.errors import TraceError
from repro.trace.events import EventKind, TraceEvent, TraceRun

_FORMAT_VERSION = 1


def _event_record(e):
    """The JSON-lines record (a list) for one event."""
    rec = [e.tid, e.pc, e.kind.value]
    if e.kind.is_memory():
        rec.append(e.addr)
        if e.is_stack:
            rec.append(1)
    elif e.kind == EventKind.BRANCH:
        rec.append(1 if e.taken else 0)
    return rec


def _mangle(line, plan, index):
    """Deterministically corrupt one serialised record."""
    cut = max(1, int(plan.uniform("trace_corrupt_cut", index) * len(line)))
    # A truncated JSON array/object is never valid JSON, so the damage
    # is always *detectable* -- modelling torn writes, not bit flips
    # that happen to decode.
    return line[:cut]


def _faulted_lines(events, plan, tele):
    """Apply the plan's trace faults to the serialised event records."""
    lines = []
    for index, e in enumerate(events):
        if plan.fires("trace_drop", index):
            if tele.enabled:
                tele.inc("faults.trace_drops")
            continue
        line = json.dumps(_event_record(e))
        if plan.fires("trace_corrupt", index):
            line = _mangle(line, plan, index)
            if tele.enabled:
                tele.inc("faults.trace_corruptions")
        lines.append((index, line))
    out = [line for _i, line in lines]
    for pos in range(len(lines) - 1):
        if plan.fires("trace_reorder", lines[pos][0]):
            out[pos], out[pos + 1] = out[pos + 1], out[pos]
            if tele.enabled:
                tele.inc("faults.trace_reorders")
    return out


def write_trace(run, path, faults=None):
    """Write a :class:`TraceRun` to ``path`` as JSON-lines.

    ``faults`` (or the process-wide active plan) may drop, corrupt or
    reorder event records on the way out; the header is always written
    intact. With a zero plan the output is byte-identical to the
    fault-free writer.
    """
    plan = faults if faults is not None else _faults.get_plan()
    with open(path, "w", encoding="utf-8") as f:
        header = {
            "version": _FORMAT_VERSION,
            "failed": run.failed,
            "n_threads": run.n_threads,
            "seed": run.seed,
            "failure": str(run.failure) if run.failure else None,
        }
        f.write(json.dumps(header) + "\n")
        if plan.enabled:
            for line in _faulted_lines(run.events, plan,
                                       telemetry.get_registry()):
                f.write(line + "\n")
            return
        for e in run.events:
            f.write(json.dumps(_event_record(e)) + "\n")


def _parse_record(rec):
    tid, pc, kind_str = rec[0], rec[1], rec[2]
    kind = EventKind(kind_str)
    if kind.is_memory():
        addr = rec[3]
        is_stack = len(rec) > 4 and bool(rec[4])
        return TraceEvent(tid, pc, kind, addr=addr, is_stack=is_stack)
    if kind == EventKind.BRANCH:
        return TraceEvent(tid, pc, kind, taken=bool(rec[3]))
    return TraceEvent(tid, pc, kind)


def read_trace(path, recover=False, quarantine=None):
    """Read a trace written by :func:`write_trace`.

    Args:
        path: trace file.
        recover: skip malformed event records instead of raising.
            Skipped records are counted in telemetry
            (``faults.trace_records_skipped``) and in
            ``run.meta["skipped_records"]``.
        quarantine: optional :class:`~repro.faults.Quarantine`; implies
            ``recover`` and receives one record per damaged file.

    A missing or malformed *header* is never recoverable (there is no
    run to attach events to) and always raises :class:`TraceError`.
    """
    recover = recover or quarantine is not None
    tele = telemetry.get_registry()
    skipped = 0
    with open(path, "r", encoding="utf-8") as f:
        header_line = f.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        try:
            header = json.loads(header_line)
        except ValueError as e:
            raise TraceError(f"{path}: corrupt trace header ({e})")
        if not isinstance(header, dict):
            raise TraceError(f"{path}: corrupt trace header")
        if header.get("version") != _FORMAT_VERSION:
            raise TraceError(f"{path}: unsupported trace version")
        events = []
        for lineno, line in enumerate(f, start=2):
            try:
                events.append(_parse_record(json.loads(line)))
            except (ValueError, IndexError, KeyError, TypeError) as e:
                if not recover:
                    raise TraceError(f"{path}:{lineno}: bad trace "
                                     f"record ({e})")
                skipped += 1
                if tele.enabled:
                    tele.inc("faults.trace_records_skipped")
    run = TraceRun(events=events, failed=header["failed"],
                   n_threads=header["n_threads"], seed=header["seed"])
    if skipped:
        run.meta["skipped_records"] = skipped
        if quarantine is not None:
            quarantine.admit(
                "trace.read", str(path),
                TraceError(f"{skipped} corrupt record(s) skipped"),
                attempts=1)
    return run
