"""RAW-dependence extraction from traces.

Implements the paper's *Input Generator* (Section III.B): a RAW
dependence ``S -> L`` pairs the instruction address ``S`` of the store
that last wrote a memory word with the instruction address ``L`` of the
load that reads it. A dependence belongs to the thread executing the
load and is labelled *inter-thread* or *intra-thread*.

For offline training, the extractor also synthesises **negative
examples**: for every valid ``S -> L`` it emits ``S' -> L`` where ``S'``
is the store before the last store to the same address (if one exists).
"""

from dataclasses import dataclass
from typing import Optional

from repro.trace.events import EventKind


@dataclass(frozen=True, order=True)
class RawDep:
    """A RAW dependence ``store_pc -> load_pc`` with its thread label."""

    store_pc: int
    load_pc: int
    inter_thread: bool = False

    def __str__(self):
        arrow = "=>" if self.inter_thread else "->"
        return f"{self.store_pc}{arrow}{self.load_pc}"


@dataclass
class DepRecord:
    """A dynamic occurrence of a RAW dependence in one thread's stream."""

    dep: RawDep
    tid: int
    addr: int
    index: int  # position in the global event order
    negative: Optional[RawDep] = None  # synthesized invalid counterpart


class RawDepExtractor:
    """Streaming last-writer tracker that turns trace events into deps.

    The extractor keeps, per word address, the last writer and the writer
    before it (the latter only to synthesise negatives offline; the
    paper's hardware keeps a single writer per word, Section III.C).

    Args:
        filter_stack: drop loads flagged as stack accesses (Section V).
        track_previous_writer: keep two writers per word so negatives can
            be synthesised. Offline only.
    """

    def __init__(self, filter_stack=True, track_previous_writer=False,
                 granularity=4):
        """``granularity`` is the tracking unit in bytes: 4 models the
        perfect per-word table; a cache-line size models the hardware's
        line-granularity metadata (Section V)."""
        self.filter_stack = filter_stack
        self.track_previous_writer = track_previous_writer
        self.granularity = granularity
        self._last_writer = {}  # tracking-unit key -> (store_pc, tid)
        self._prev_writer = {}

    def _key(self, addr):
        return addr - (addr % self.granularity)

    def feed(self, event, index=0):
        """Process one trace event; return a :class:`DepRecord` or None."""
        if event.kind == EventKind.STORE:
            key = self._key(event.addr)
            if self.track_previous_writer and key in self._last_writer:
                self._prev_writer[key] = self._last_writer[key]
            self._last_writer[key] = (event.pc, event.tid)
            return None
        if event.kind != EventKind.LOAD:
            return None
        if self.filter_stack and event.is_stack:
            return None
        writer = self._last_writer.get(self._key(event.addr))
        if writer is None:
            # No known writer: the paper simply fails to form a dependence.
            return None
        store_pc, store_tid = writer
        dep = RawDep(store_pc, event.pc, inter_thread=store_tid != event.tid)
        negative = None
        prev = self._prev_writer.get(self._key(event.addr))
        if prev is not None and prev[0] != store_pc:
            negative = RawDep(prev[0], event.pc, inter_thread=prev[1] != event.tid)
        return DepRecord(dep=dep, tid=event.tid, addr=event.addr, index=index,
                         negative=negative)


def extract_raw_deps(run, filter_stack=True):
    """Extract per-thread RAW dependence streams from a :class:`TraceRun`.

    Returns:
        dict mapping tid -> list of :class:`DepRecord` in that thread's
        program order (which equals global order restricted to the thread).
    """
    extractor = RawDepExtractor(filter_stack=filter_stack)
    return _collect(run, extractor)


def extract_raw_deps_with_negatives(run, filter_stack=True, granularity=4):
    """Like :func:`extract_raw_deps` but with synthesised negatives."""
    extractor = RawDepExtractor(filter_stack=filter_stack,
                                track_previous_writer=True,
                                granularity=granularity)
    return _collect(run, extractor)


def _collect(run, extractor):
    streams = {tid: [] for tid in range(run.n_threads)}
    for index, event in enumerate(run.events):
        rec = extractor.feed(event, index=index)
        if rec is not None:
            streams.setdefault(rec.tid, []).append(rec)
    return streams


def dep_sequences(stream, n):
    """Group a thread's dep stream into overlapping sequences of length ``n``.

    Each new dependence is associated with the previous ``n - 1``
    dependences from the same thread (Section III.B). The first ``n - 1``
    dependences do not yet form a full sequence and are skipped.

    Returns:
        list of tuples of :class:`RawDep`, oldest dependence first.
    """
    deps = [rec.dep for rec in stream]
    return [tuple(deps[i - n + 1:i + 1]) for i in range(n - 1, len(deps))]


def line_level_pairs(runs, line_size=64, filter_stack=True):
    """(store_pc, load_pc) pairs the hardware's *line-granularity*
    last-writer metadata would legitimately produce on these runs.

    Loads can observe any same-line store as their "last writer" once
    metadata is kept per line (Section V); offline training must not
    label those pairs invalid, or every read-modify-write loop would be
    flagged at deployment.
    """
    pairs = set()
    for run in runs:
        extractor = RawDepExtractor(filter_stack=filter_stack,
                                    granularity=line_size)
        for index, event in enumerate(run.events):
            rec = extractor.feed(event, index=index)
            if rec is not None:
                pairs.add((rec.dep.store_pc, rec.dep.load_pc))
    return pairs


def negative_sequences(stream, n):
    """Synthesize invalid sequences: last dep replaced by its negative.

    For every position where a negative counterpart exists, the sequence
    of the previous ``n - 1`` *valid* dependences followed by the invalid
    dependence forms a negative example (Section III.B).
    """
    deps = [rec.dep for rec in stream]
    out = []
    for i in range(n - 1, len(stream)):
        neg = stream[i].negative
        if neg is not None:
            out.append(tuple(deps[i - n + 1:i]) + (neg,))
    return out
