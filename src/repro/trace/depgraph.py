"""Dependence-graph views of a program's communication behaviour.

Builds networkx graphs from RAW-dependence streams:

- the **communication graph**: nodes are static memory instructions,
  edges are observed RAW dependences (weighted by dynamic count) --
  Figure 3(a)'s picture of a program, useful for understanding what the
  network must learn;
- the **sequence graph**: nodes are dependences, edges connect
  consecutive dependences in a thread's stream -- the paper's
  "sequence of past communications" as a first-order transition
  structure. Valid windows are paths in this graph, so its path counts
  bound the invariant space a topology must memorise.
"""

import networkx as nx

from repro.trace.raw import extract_raw_deps


def communication_graph(runs, filter_stack=True):
    """Static-instruction communication graph over one or more runs.

    Returns a :class:`networkx.DiGraph` with ``store_pc -> load_pc``
    edges annotated with ``count`` (dynamic occurrences), ``inter``
    and ``intra`` (occurrences per thread label).
    """
    g = nx.DiGraph()
    for run in runs:
        for stream in extract_raw_deps(run, filter_stack=filter_stack).values():
            for rec in stream:
                d = rec.dep
                if g.has_edge(d.store_pc, d.load_pc):
                    data = g[d.store_pc][d.load_pc]
                else:
                    g.add_edge(d.store_pc, d.load_pc, count=0, inter=0,
                               intra=0)
                    data = g[d.store_pc][d.load_pc]
                data["count"] += 1
                data["inter" if d.inter_thread else "intra"] += 1
    return g


def sequence_graph(runs, filter_stack=True):
    """First-order transition graph between dependences.

    Nodes are :class:`~repro.trace.raw.RawDep`; an edge ``a -> b`` with
    weight ``count`` means ``b`` immediately followed ``a`` in some
    thread's stream ``count`` times.
    """
    g = nx.DiGraph()
    for run in runs:
        for stream in extract_raw_deps(run, filter_stack=filter_stack).values():
            deps = [rec.dep for rec in stream]
            for a, b in zip(deps, deps[1:]):
                if g.has_edge(a, b):
                    g[a][b]["count"] += 1
                else:
                    g.add_edge(a, b, count=1)
    return g


def window_space_size(runs, seq_len, filter_stack=True):
    """Number of distinct length-``seq_len`` windows the runs contain.

    This is what the network actually has to memorise; compare it with
    :func:`path_budget` to see how much the transition structure prunes
    the combinatorial space.
    """
    from repro.trace.raw import dep_sequences

    windows = set()
    for run in runs:
        for stream in extract_raw_deps(run, filter_stack=filter_stack).values():
            windows.update(dep_sequences(stream, seq_len))
    return len(windows)


def path_budget(g, seq_len):
    """Upper bound on distinct windows implied by the sequence graph:
    the number of walks of length ``seq_len - 1``.

    Computed by dynamic programming over edge counts (walks, so cycles
    count repeatedly). A small ratio of actual windows to this budget
    means the program's communication is strongly history-dependent --
    long sequences carry real information for the classifier.
    """
    if seq_len <= 1:
        return g.number_of_nodes()
    walks = {node: 1 for node in g.nodes}
    for _ in range(seq_len - 1):
        nxt = {}
        for node in g.nodes:
            nxt[node] = sum(walks[succ] for succ in g.successors(node))
        walks = nxt
    return sum(walks.values())


def hot_dependences(g, k=5):
    """The ``k`` highest-traffic communication edges, with counts."""
    edges = sorted(g.edges(data=True), key=lambda e: -e[2]["count"])
    return [((s, l), data["count"]) for s, l, data in edges[:k]]
