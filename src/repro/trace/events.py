"""Trace record types.

A trace is what the paper collects with PIN: "a sequence of memory access
instructions along with the memory addresses" (Section III.B), here
extended with branch/ALU events so the timing simulator and the PBI
baseline can replay the same runs.
"""

import enum
from dataclasses import dataclass, field
from typing import Optional


class EventKind(enum.Enum):
    """Dynamic instruction classes recorded in a trace."""

    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    ALU = "alu"

    def is_memory(self):
        return self in (EventKind.LOAD, EventKind.STORE)


@dataclass(frozen=True)
class TraceEvent:
    """One dynamic instruction.

    Attributes:
        tid: id of the thread that executed the instruction. Thread ids
            are assigned by spawn order (parent id, spawn index), which the
            paper relies on for stable per-thread weights (Section IV.C).
        pc: static instruction address.
        kind: dynamic instruction class.
        addr: effective word address for memory events, else ``None``.
        is_stack: True for stack accesses; ACT filters these loads
            (Section V, "Filtering of Loads").
        taken: branch outcome for BRANCH events, else ``None``.
    """

    tid: int
    pc: int
    kind: EventKind
    addr: Optional[int] = None
    is_stack: bool = False
    taken: Optional[bool] = None

    def __post_init__(self):
        if self.kind.is_memory() and self.addr is None:
            raise ValueError(f"memory event at pc={self.pc} needs an address")


@dataclass
class TraceRun:
    """A full recorded execution: events in global (interleaved) order.

    Attributes:
        events: dynamic instructions in the global order the scheduler
            committed them.
        failed: whether the run ended in a modelled software failure.
        failure: the :class:`~repro.common.errors.SimulatedFailure`, if any.
        code_map: the program's static code map (pc -> metadata); carried
            along so downstream stages can report function names.
        n_threads: number of threads that executed.
        seed: scheduler seed that produced this interleaving.
    """

    events: list
    failed: bool = False
    failure: Optional[object] = None
    code_map: Optional[object] = None
    n_threads: int = 1
    seed: int = 0
    meta: dict = field(default_factory=dict)

    def thread_events(self, tid):
        """Events of one thread, in that thread's program order."""
        return [e for e in self.events if e.tid == tid]

    def memory_events(self):
        return [e for e in self.events if e.kind.is_memory()]

    def __len__(self):
        return len(self.events)
