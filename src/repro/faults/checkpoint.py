"""Checksummed JSON checkpoints for long diagnosis runs.

A :class:`Checkpoint` is a phase-keyed store persisted as a single JSON
document with a SHA-256 checksum over its canonical serialisation.
Writes are atomic (tmp file + ``os.replace``), so a run killed mid-save
leaves either the previous complete snapshot or the new one -- never a
torn file. Loads verify the checksum and refuse corrupt or truncated
files with :class:`~repro.common.errors.CheckpointError`.

A checkpoint also carries a *fingerprint*: the JSON-normalised identity
of the computation it belongs to (program, config, seeds, run counts).
``Checkpoint.open`` refuses to resume a checkpoint whose fingerprint
differs from the caller's -- resuming a 20-run diagnosis from a 10-run
checkpoint would silently change the verdicts.
"""

import hashlib
import json
import os

from repro import telemetry
from repro.common.errors import CheckpointError

FORMAT_VERSION = 1


def canonical_json(payload):
    """Canonical serialisation: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload):
    """SHA-256 hex digest of the canonical serialisation."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def normalize(payload):
    """JSON round-trip a payload (tuples -> lists, int keys -> str).

    Fingerprints are compared between in-memory values and values read
    back from disk; normalising both sides first makes the comparison
    representation-independent.
    """
    return json.loads(canonical_json(payload))


class Checkpoint:
    """Phase-keyed, checksummed JSON snapshot of a long run."""

    def __init__(self, path, kind, fingerprint, phases=None):
        self.path = path
        self.kind = kind
        self.fingerprint = normalize(fingerprint)
        self.phases = dict(phases or {})
        self.resumed = False

    # -- persistence ---------------------------------------------------

    def _body(self):
        return {"kind": self.kind, "fingerprint": self.fingerprint,
                "phases": self.phases}

    def save(self):
        """Atomically persist the snapshot (tmp file + rename)."""
        body = {"format": FORMAT_VERSION}
        body.update(self._body())
        body["checksum"] = payload_checksum(self._body())
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(body, f, sort_keys=True)
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.path)
        telemetry.get_registry().inc("checkpoint.saves")

    @classmethod
    def load(cls, path):
        """Load and verify a checkpoint; raises CheckpointError when bad."""
        try:
            with open(path, "r", encoding="utf-8") as f:
                body = json.load(f)
        except OSError as e:
            raise CheckpointError(f"{path}: cannot read checkpoint ({e})",
                                  path=path)
        except ValueError as e:  # json.JSONDecodeError subclasses ValueError
            raise CheckpointError(
                f"{path}: corrupt checkpoint (not valid JSON: {e})",
                path=path)
        if not isinstance(body, dict) or body.get("format") != FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: unsupported checkpoint format "
                f"{body.get('format') if isinstance(body, dict) else body!r}",
                path=path)
        for field in ("kind", "fingerprint", "phases", "checksum"):
            if field not in body:
                raise CheckpointError(
                    f"{path}: corrupt checkpoint (missing {field!r})",
                    path=path)
        expected = payload_checksum({"kind": body["kind"],
                                     "fingerprint": body["fingerprint"],
                                     "phases": body["phases"]})
        if body["checksum"] != expected:
            raise CheckpointError(
                f"{path}: checkpoint checksum mismatch "
                "(file is corrupt or was edited)", path=path)
        return cls(path, body["kind"], body["fingerprint"], body["phases"])

    @classmethod
    def open(cls, path, kind, fingerprint):
        """Resume ``path`` if it exists (and matches), else start fresh.

        An existing checkpoint must carry the same kind and fingerprint;
        anything else raises CheckpointError rather than silently mixing
        two different computations.
        """
        if os.path.exists(path):
            cp = cls.load(path)
            if cp.kind != kind:
                raise CheckpointError(
                    f"{path}: checkpoint is a {cp.kind!r} snapshot, "
                    f"not {kind!r}", path=path)
            if cp.fingerprint != normalize(fingerprint):
                raise CheckpointError(
                    f"{path}: checkpoint fingerprint does not match this "
                    "run (different program, config, seeds or run counts)",
                    path=path)
            cp.resumed = True
            telemetry.get_registry().inc("checkpoint.resumes")
            return cp
        return cls(path, kind, fingerprint)

    # -- phase store ---------------------------------------------------

    def get(self, phase):
        """Payload stored for ``phase``, or None."""
        payload = self.phases.get(phase)
        if payload is not None:
            telemetry.get_registry().inc("checkpoint.phases_reused")
        return payload

    def put(self, phase, payload, save=True):
        """Store a phase payload; persists immediately unless ``save=False``."""
        self.phases[phase] = normalize(payload)
        if save:
            self.save()

    def __contains__(self, phase):
        return phase in self.phases
