"""Deterministic fault plans.

A :class:`FaultPlan` is a *seeded description* of runtime faults to
inject across the pipeline's boundaries: trace records corrupted,
dropped or reordered at the :mod:`repro.trace.trace_io` layer, NN
weights flipped to NaN/Inf at deployment, AM input-FIFO overruns in
:mod:`repro.core.buffers`, worker deaths in :mod:`repro.parallel`, and
whole collected runs declared corrupt.

Every decision is a pure function of ``(plan.seed, site, key)`` -- a
blake2b hash mapped to ``[0, 1)`` and compared against the site's rate.
Nothing is sampled statefully, so the same plan fires the same faults
no matter how work is ordered, batched across processes, retried, or
resumed from a checkpoint. A zero plan (:data:`ZERO_PLAN`) never fires
and is free to leave active, which is what the differential regression
suite pins down: the faulted path with a zero plan is byte-identical to
the plain path.
"""

import hashlib
from dataclasses import dataclass, fields

from repro.common.errors import ConfigError

#: Injection-site names, mapped to the FaultPlan field holding the rate.
RATE_SITES = {
    "trace_drop": "trace_drop",          # per written trace record
    "trace_corrupt": "trace_corrupt",    # per written trace record
    "trace_reorder": "trace_reorder",    # per adjacent record pair
    "weight_flip": "weight_flip",        # per deployed weight set (tid)
    "fifo_overflow": "fifo_overflow",    # per input-FIFO push
    "worker_kill": "worker_kill",        # per (task key, attempt)
    "run_corrupt": "run_corrupt",        # per collected run (seed)
}


def _hash01(seed, site, key):
    """Deterministic uniform value in ``[0, 1)`` for one decision."""
    data = repr((seed, site, key)).encode("utf-8")
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic description of faults to inject.

    Rates are probabilities per decision point (see :data:`RATE_SITES`).
    ``corrupt_run_seeds`` and ``kill_tasks`` name explicit targets on
    top of the rates: a seed listed in ``corrupt_run_seeds`` always
    corrupts that collected run, and a ``(task key, attempt)`` pair in
    ``kill_tasks`` always kills that attempt of that task (the key is
    the unit's quarantine identity -- the run seed for collection
    batches, the item index otherwise) -- the knobs the regression
    tests use to stage exact failure scenarios.

    ``max_retries``/``retry_backoff`` parameterise the recovery side:
    how often :func:`repro.parallel.run_tasks` re-runs a killed task and
    the base of its exponential backoff sleep (seconds).
    """

    seed: int = 0
    trace_drop: float = 0.0
    trace_corrupt: float = 0.0
    trace_reorder: float = 0.0
    weight_flip: float = 0.0
    fifo_overflow: float = 0.0
    worker_kill: float = 0.0
    run_corrupt: float = 0.0
    corrupt_run_seeds: tuple = ()
    kill_tasks: tuple = ()
    max_retries: int = 2
    retry_backoff: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "corrupt_run_seeds",
                           tuple(self.corrupt_run_seeds))
        object.__setattr__(self, "kill_tasks",
                           tuple(tuple(t) for t in self.kill_tasks))
        for name in RATE_SITES.values():
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"fault rate {name}={rate} not in [0, 1]")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ConfigError("retry_backoff must be >= 0")
        # Precomputed so hot paths (one check per FIFO push) pay a
        # single attribute read when no fault can ever fire.
        enabled = (any(getattr(self, n) > 0.0 for n in RATE_SITES.values())
                   or bool(self.corrupt_run_seeds) or bool(self.kill_tasks))
        object.__setattr__(self, "enabled", enabled)

    # ------------------------------------------------------------------

    def uniform(self, site, *key):
        """The deterministic ``[0, 1)`` draw for one decision point."""
        return _hash01(self.seed, site, key)

    def fires(self, site, *key):
        """Does the planned fault at ``site`` fire for ``key``?"""
        if site == "run_corrupt" and key and key[0] in self.corrupt_run_seeds:
            return True
        if site == "worker_kill" and tuple(key) in self.kill_tasks:
            return True
        rate = getattr(self, RATE_SITES[site])
        return rate > 0.0 and self.uniform(site, *key) < rate

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec):
        """Parse a CLI spec like ``"seed=3,worker_kill=0.1,trace_drop=0.05"``.

        Keys are FaultPlan field names; list fields take ``;``-separated
        values (``corrupt_run_seeds=104;105``).
        """
        kwargs = {}
        known = {f.name: f for f in fields(cls)}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ConfigError(f"bad fault spec entry {part!r} "
                                  "(expected key=value)")
            key, value = (s.strip() for s in part.split("=", 1))
            if key not in known:
                raise ConfigError(
                    f"unknown fault spec key {key!r} "
                    f"(known: {', '.join(sorted(known))})")
            if key == "corrupt_run_seeds":
                kwargs[key] = tuple(int(v) for v in value.split(";") if v)
            elif key == "kill_tasks":
                kwargs[key] = tuple(
                    tuple(int(x) for x in v.split(":"))
                    for v in value.split(";") if v)
            elif key in ("seed", "max_retries"):
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    def describe(self):
        """Compact one-line description of the non-default knobs."""
        parts = [f"seed={self.seed}"]
        for name in RATE_SITES.values():
            rate = getattr(self, name)
            if rate > 0.0:
                parts.append(f"{name}={rate:g}")
        if self.corrupt_run_seeds:
            parts.append("corrupt_run_seeds="
                         + ";".join(str(s) for s in self.corrupt_run_seeds))
        if self.kill_tasks:
            parts.append("kill_tasks="
                         + ";".join(f"{i}:{a}" for i, a in self.kill_tasks))
        return ",".join(parts)


#: The plan that never fires; safe (and free) to leave active.
ZERO_PLAN = FaultPlan()


def flip_weights(flat, plan, tid):
    """Return a copy of ``flat`` with one entry flipped to NaN or +/-Inf.

    The victim index and replacement value are deterministic functions
    of the plan seed and ``tid``, so a resumed or retried deployment
    sees the exact same corruption.
    """
    import numpy as np

    flat = np.array(flat, dtype=float, copy=True)
    idx = min(int(plan.uniform("weight_flip_idx", tid) * flat.size),
              flat.size - 1)
    draw = plan.uniform("weight_flip_val", tid)
    flat[idx] = (np.nan if draw < 1 / 3
                 else np.inf if draw < 2 / 3 else -np.inf)
    return flat
