"""Quarantine: skip-and-report instead of abort.

A production diagnosis over dozens of runs must not die because one
run, trace file or worker is corrupt. A :class:`Quarantine` collects
the units of work that failed -- with the phase, the unit's key and the
error -- so the pipeline can continue on the clean subset and report
exactly what was dropped. The differential regression suite pins the
core guarantee: diagnosing with ``k`` quarantined runs equals
diagnosing on the clean subset directly.
"""

import json
from dataclasses import asdict, dataclass

from repro import telemetry


@dataclass
class QuarantineRecord:
    """One unit of work that was dropped instead of aborting the run."""

    phase: str        # pipeline phase, e.g. "offline.collect"
    key: object       # unit identity: run seed, task index, file path
    error_type: str   # exception class name
    message: str
    attempts: int = 1  # executions tried before giving up


class Quarantine:
    """Collects dropped work units across one pipeline invocation."""

    def __init__(self):
        self.records = []

    def admit(self, phase, key, error, attempts=1):
        """Record a failed unit; returns the new record."""
        record = QuarantineRecord(phase=phase, key=key,
                                  error_type=type(error).__name__,
                                  message=str(error), attempts=attempts)
        self.records.append(record)
        tele = telemetry.get_registry()
        tele.inc("faults.quarantined")
        tele.event("quarantine", phase=phase, key=key,
                   error_type=record.error_type, attempts=attempts)
        return record

    def keys(self, phase=None):
        """Keys of quarantined units, optionally for one phase only."""
        return [r.key for r in self.records
                if phase is None or r.phase == phase]

    def __len__(self):
        return len(self.records)

    def __bool__(self):
        # An empty quarantine is still a real (truthy) boundary; callers
        # test emptiness with len().
        return True

    def report_dict(self):
        """JSON-serialisable quarantine report."""
        return {
            "n_quarantined": len(self.records),
            "records": [asdict(r) for r in self.records],
        }

    def write_report(self, path):
        """Write the quarantine report as JSON."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.report_dict(), f, indent=2, sort_keys=True)
            f.write("\n")

    def summary(self):
        """One line per record, for CLI output."""
        lines = []
        for r in self.records:
            lines.append(f"quarantined [{r.phase}] {r.key!r}: "
                         f"{r.error_type}: {r.message} "
                         f"(after {r.attempts} attempt(s))")
        return "\n".join(lines)
