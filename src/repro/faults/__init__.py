"""Fault injection and resilience for the ACT pipeline.

ACT is a *production-run* diagnosis system, so this reproduction must
keep diagnosing when the runtime misbehaves: corrupt trace records,
NaN-poisoned weights, overrun hardware FIFOs, dead ``--jobs`` workers,
interrupted multi-hour runs. This package provides both halves:

- **Injection** (:mod:`repro.faults.plan`): a seeded, deterministic
  :class:`FaultPlan` activated process-wide via :func:`use_plan`.
  Instrumented boundaries (``trace_io``, ``core.buffers``,
  ``core.offline``, ``repro.parallel``) consult the active plan through
  :func:`get_plan`; the default :data:`ZERO_PLAN` never fires and costs
  one attribute check.
- **Recovery**:
  :class:`~repro.faults.quarantine.Quarantine` turns per-unit failures
  into skip-and-report records instead of aborted runs;
  :func:`repro.parallel.run_tasks` retries killed workers with bounded
  exponential backoff; and
  :class:`~repro.faults.checkpoint.Checkpoint` persists checksummed
  JSON snapshots of trained weights and per-run verdicts so
  ``diagnose --resume PATH`` continues a killed run and lands on the
  same final verdicts as an uninterrupted one.

The regression contract (``tests/test_faults_differential.py``): with a
zero plan every output is byte-identical to the unfaulted path; with
any plan, diagnosis completes with a quarantine report instead of an
unhandled exception.
"""

from contextlib import contextmanager

from repro.faults.checkpoint import (
    Checkpoint,
    canonical_json,
    normalize,
    payload_checksum,
)
from repro.faults.plan import RATE_SITES, ZERO_PLAN, FaultPlan, flip_weights
from repro.faults.quarantine import Quarantine, QuarantineRecord

__all__ = [
    "Checkpoint", "FaultPlan", "Quarantine", "QuarantineRecord",
    "RATE_SITES", "ZERO_PLAN", "canonical_json", "flip_weights",
    "get_plan", "normalize", "payload_checksum", "set_plan", "use_plan",
]

_active = ZERO_PLAN


def get_plan():
    """The process-wide active fault plan (ZERO_PLAN when none is set)."""
    return _active


def set_plan(plan):
    """Install ``plan`` (None resets to ZERO_PLAN); returns the previous."""
    global _active
    previous = _active
    _active = ZERO_PLAN if plan is None else plan
    return previous


@contextmanager
def use_plan(plan):
    """Activate ``plan`` for the duration of a ``with`` block."""
    previous = set_plan(plan)
    try:
        yield _active
    finally:
        set_plan(previous)
