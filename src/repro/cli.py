"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro list
    python -m repro.cli diagnose gzip
    python -m repro.cli diagnose mysql1 --debug-buffer 120
    python -m repro.cli diagnose gzip --telemetry profile.json
    python -m repro.cli diagnose gzip --checkpoint ck.json    # resumable
    python -m repro.cli diagnose gzip --resume ck.json
    python -m repro.cli diagnose gzip --faults seed=3,run_corrupt=0.3 \
        --quarantine-report quarantine.json
    python -m repro.cli diagnose gen-atomicity-pipeline-s7   # generated bug
    python -m repro.cli trace lu --seed 3 --out lu.jsonl
    python -m repro.cli experiment table5 --preset fast
    python -m repro.cli profile gzip          # telemetry phase/counter table
    python -m repro.cli profile lu mcf        # workload communication profile
    python -m repro.cli corpus --seed 7 --size 20 --jobs 4 \
        --out metrics.json                    # accuracy on generated corpus

``diagnose`` runs the full ACT pipeline against a bundled bug program
or a generated one (``gen-<archetype>-<motif>-s<seed>``); ``trace``
records a workload execution to a JSON-lines trace file; ``experiment``
regenerates one of the paper's tables/figures; ``corpus`` runs the
diagnosis-accuracy harness over a seeded generated corpus and prints
precision/recall/rank tables (see ``docs/accuracy.md``).
``diagnose``/``trace``/``corpus``/``experiment`` accept ``--telemetry
PATH`` to export a run profile (counters + nested phase spans, see
:mod:`repro.telemetry`), ``--events PATH`` to attach the bounded
flight recorder and flush its JSONL event stream, and ``--tick-clock``
to drive all telemetry timestamps from a deterministic tick clock
(byte-identical exports across reruns, including ``--jobs N`` runs).
``profile`` renders profiles for humans -- given a bug name it runs a
telemetry-enabled diagnosis and prints the phase/counter tables, given
kernel names it prints the communication profile, and ``--load``
re-renders a saved profile JSON *or* a flight recording; ``--flame``
emits folded stacks for flamegraph tooling, ``--critical-path`` the
heaviest root-to-leaf span chain, and ``--openmetrics`` the OpenMetrics
text exposition of the metrics.
"""

import argparse
import os
import sys

from repro import __version__, telemetry
from repro.analysis.experiments import experiment_names, run_experiment
from repro.common.errors import CheckpointError, ReproError
from repro.core.config import ACTConfig
from repro.core.diagnosis import diagnose_failure
from repro.faults import FaultPlan, Quarantine
from repro.telemetry import (
    FlightRecorder,
    TickClock,
    format_critical_path,
    format_flame,
    format_profile,
    is_event_stream,
    profile_dict,
    read_events_profile,
    read_profile,
    render_openmetrics,
)
from repro.telemetry import selfcost
from repro.trace.trace_io import write_trace
from repro.workloads.framework import run_program
from repro.workloads.registry import (
    all_bug_names,
    all_kernel_names,
    get_bug,
    get_kernel,
    get_workload,
)


def _cmd_list(_args):
    print("kernels:", ", ".join(all_kernel_names()))
    print("bugs:   ", ", ".join(all_bug_names()))
    print("generated: gen-<archetype>-<motif>-s<seed>, e.g. "
          "gen-atomicity-pipeline-s7")
    print("experiments:", ", ".join(experiment_names()))
    return 0


def _cmd_diagnose(args):
    try:
        program = get_bug(args.bug)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    config = ACTConfig(seq_len=args.seq_len,
                       debug_buffer=args.debug_buffer,
                       mispred_threshold=args.threshold)
    checkpoint = args.checkpoint
    if args.resume:
        if not os.path.isfile(args.resume):
            print(f"error: checkpoint {args.resume!r} does not exist",
                  file=sys.stderr)
            return 2
        checkpoint = args.resume
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.from_spec(args.faults)
        except ReproError as e:
            print(f"error: bad --faults spec: {e}", file=sys.stderr)
            return 2
    quarantine = None
    if plan is not None or args.quarantine_report:
        quarantine = Quarantine()
    try:
        report = diagnose_failure(program, config=config,
                                  n_train_runs=args.train_runs,
                                  n_pruning_runs=args.pruning_runs,
                                  failure_seed=args.seed,
                                  fast=args.fast, jobs=args.jobs,
                                  faults=plan, quarantine=quarantine,
                                  checkpoint=checkpoint)
    except CheckpointError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(f"program          : {report.program}")
    print(f"failure          : {report.failure_description}")
    print(f"deps observed    : {report.n_deps} "
          f"({report.n_invalid} flagged invalid)")
    print(f"debug buffer     : {report.n_debug_entries} entries"
          f"{' (overflowed)' if report.debug_overflowed else ''}")
    print(f"filtered         : {report.filter_pct:.0f}%")
    print(f"root cause found : {report.found}"
          + (f" at rank {report.rank}" if report.found else ""))
    for note in report.notes:
        print(f"note: {note}")
    for i, f in enumerate(report.top(args.top), start=1):
        dep = f.mismatch_dep or f.seq[-1]
        print(f"  #{i}: store {dep.store_pc:#x} -> load {dep.load_pc:#x} "
              f"({'inter' if dep.inter_thread else 'intra'}-thread, "
              f"matched {f.matched}, output {f.output:.3f})")
    if quarantine is not None:
        if len(quarantine):
            print(quarantine.summary())
        if args.quarantine_report:
            quarantine.write_report(args.quarantine_report)
            print(f"quarantine report written to {args.quarantine_report}")
    return 0 if report.found else 1


def _bug_run_profile(name, args):
    """Diagnose ``name`` under a fresh registry; return the profile dict."""
    program = get_bug(name)
    tick = getattr(args, "tick_clock", False)
    registry = telemetry.Registry(clock=TickClock() if tick else None)
    with telemetry.use_registry(registry):
        report = diagnose_failure(program,
                                  n_train_runs=args.train_runs,
                                  n_pruning_runs=args.pruning_runs)
    meta = {"program": name, "found": report.found}
    if report.rank is not None:
        meta["rank"] = report.rank
    return profile_dict(
        registry, meta=meta, self_overhead=True,
        calibration=selfcost.PINNED_CALIBRATION if tick else None)


def _render_profile(profile, args, title=None):
    """Print the requested views of ``profile`` (tables by default)."""
    rendered = False
    if getattr(args, "flame", False):
        print(format_flame(profile.get("spans") or []))
        rendered = True
    if getattr(args, "critical_path", False):
        print(format_critical_path(profile.get("spans") or []))
        rendered = True
    if getattr(args, "openmetrics", False):
        print(render_openmetrics(profile))
        rendered = True
    if not rendered:
        print(format_profile(profile, title=title))


def _cmd_profile(args):
    if args.load:
        if not os.path.isfile(args.load):
            print(f"error: profile {args.load!r} does not exist",
                  file=sys.stderr)
            return 2
        profile = (read_events_profile(args.load)
                   if is_event_stream(args.load) else read_profile(args.load))
        _render_profile(profile, args)
        return 0
    from repro.workloads.generator import parse_generated_name

    bug_names = set(all_bug_names())
    names = args.programs or all_kernel_names()
    comm_profiles = []
    first = True
    for name in names:
        if name in bug_names or parse_generated_name(name) is not None:
            profile = _bug_run_profile(name, args)
            if not first:
                print()
            _render_profile(profile, args, title=f"run profile: {name}")
            first = False
        else:
            from repro.sim.trace_stats import profile_run

            program = get_kernel(name)
            run = run_program(program, seed=args.seed)
            comm_profiles.append(profile_run(run, name=name))
    if comm_profiles:
        from repro.sim.trace_stats import profile_table

        if not first:
            print()
        print(profile_table(comm_profiles))
    return 0


def _trace_convert(args):
    """``repro trace convert IN OUT``: re-encode a trace file.

    The output format is the *other* one by default (columnar input ->
    JSON-lines output and vice versa); ``--trace-format`` forces it.
    ``--verify`` reads both files back and diffs the decoded events.
    """
    from repro.trace import columnar, read_trace

    if len(args.paths) != 2:
        print("error: trace convert needs exactly IN and OUT paths",
              file=sys.stderr)
        return 2
    src, dst = args.paths
    if not os.path.isfile(src):
        print(f"error: trace {src!r} does not exist", file=sys.stderr)
        return 2
    out_dir = os.path.dirname(dst)
    if out_dir and not os.path.isdir(out_dir):
        print(f"error: output directory {out_dir!r} does not exist",
              file=sys.stderr)
        return 2
    try:
        run = read_trace(src)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    fmt = args.trace_format
    if fmt is None:
        fmt = "jsonl" if columnar.is_columnar(src) else "columnar"
    write_trace(run, dst, trace_format=fmt)
    print(f"converted {src} -> {dst} ({fmt}, {len(run.events)} events)")
    if args.verify:
        a = read_trace(src)
        b = read_trace(dst)
        same = (a.events == b.events and a.failed == b.failed
                and a.n_threads == b.n_threads and a.seed == b.seed)
        if not same:
            print("error: verify failed: decoded traces differ",
                  file=sys.stderr)
            return 1
        print(f"verified: both files decode to {len(a.events)} "
              "identical events")
    return 0


def _cmd_trace(args):
    if args.program == "convert":
        return _trace_convert(args)
    if args.paths:
        print("error: unexpected extra arguments "
              f"{' '.join(args.paths)!r} (paths are only for "
              "'trace convert')", file=sys.stderr)
        return 2
    out_dir = os.path.dirname(args.out)
    if out_dir and not os.path.isdir(out_dir):
        print(f"error: output directory {out_dir!r} does not exist",
              file=sys.stderr)
        return 2
    try:
        program = get_workload(args.program)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    run = run_program(program, seed=args.seed)
    write_trace(run, args.out, trace_format=args.trace_format)
    print(f"wrote {len(run.events)} events "
          f"({run.n_threads} threads, failed={run.failed}) to {args.out}")
    return 0


def _cmd_corpus(args):
    from repro.analysis.accuracy import (
        CorpusSpec,
        format_corpus,
        metrics_json,
        run_corpus,
    )

    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir and not os.path.isdir(out_dir):
            print(f"error: output directory {out_dir!r} does not exist",
                  file=sys.stderr)
            return 2
    checkpoint = args.checkpoint
    if args.resume:
        if not os.path.isfile(args.resume):
            print(f"error: checkpoint {args.resume!r} does not exist",
                  file=sys.stderr)
            return 2
        checkpoint = args.resume
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.from_spec(args.faults)
        except ReproError as e:
            print(f"error: bad --faults spec: {e}", file=sys.stderr)
            return 2
    quarantine = None
    if plan is not None or args.quarantine_report:
        quarantine = Quarantine()
    spec = CorpusSpec(seed=args.seed, size=args.size, top_k=args.top,
                      n_train_runs=args.train_runs,
                      n_pruning_runs=args.pruning_runs,
                      config=ACTConfig(seq_len=args.seq_len))
    try:
        result = run_corpus(spec, jobs=args.jobs, faults=plan,
                            quarantine=quarantine, checkpoint=checkpoint)
    except CheckpointError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(format_corpus(result))
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir and not os.path.isdir(out_dir):
            print(f"error: output directory {out_dir!r} does not exist",
                  file=sys.stderr)
            return 2
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(metrics_json(result))
        print(f"metrics written to {args.out}")
    if args.trace_dir:
        from repro.analysis.accuracy import write_corpus_traces

        os.makedirs(args.trace_dir, exist_ok=True)
        paths = write_corpus_traces(spec, args.trace_dir,
                                    trace_format=args.trace_format)
        print(f"wrote {len(paths)} {args.trace_format} failure traces "
              f"to {args.trace_dir}")
    if quarantine is not None:
        if len(quarantine):
            print(quarantine.summary())
        if args.quarantine_report:
            quarantine.write_report(args.quarantine_report)
            print(f"quarantine report written to {args.quarantine_report}")
    return 0


def _cmd_experiment(args):
    from dataclasses import replace

    from repro.analysis import presets

    preset = {"fast": presets.FAST, "bench": presets.BENCH,
              "full": presets.FULL}[args.preset]
    if args.jobs is not None:
        preset = replace(preset, jobs=args.jobs)
    print(run_experiment(args.name, preset))
    return 0


def _add_telemetry_args(cmd):
    """The telemetry trio shared by every pipeline-running command."""
    cmd.add_argument("--telemetry", metavar="PATH",
                     help="export a telemetry run profile (json/jsonl)")
    cmd.add_argument("--events", metavar="PATH",
                     help="attach the bounded flight recorder and flush "
                          "its JSONL event stream (span open/close, "
                          "counter deltas, fault/quarantine events, "
                          "simulator samples) to PATH")
    cmd.add_argument("--events-capacity", type=int, default=None,
                     metavar="N",
                     help="flight-recorder ring size (default 65536; "
                          "oldest non-span events drop first)")
    cmd.add_argument("--tick-clock", action="store_true",
                     help="drive telemetry timestamps from a deterministic "
                          "tick clock: exports and event streams become "
                          "byte-identical across reruns (self-overhead is "
                          "then modelled from pinned unit costs)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="ACT failure-diagnosis reproduction")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled workloads and experiments")

    d = sub.add_parser("diagnose",
                       help="diagnose a bundled or generated bug with ACT")
    d.add_argument("bug", metavar="BUG",
                   help="a bundled bug name (see 'repro list') or a "
                        "generated name like gen-atomicity-pipeline-s7")
    d.add_argument("--seed", type=int, default=12345)
    d.add_argument("--train-runs", type=int, default=10)
    d.add_argument("--pruning-runs", type=int, default=20)
    d.add_argument("--seq-len", type=int, default=5)
    d.add_argument("--debug-buffer", type=int, default=60)
    d.add_argument("--threshold", type=float, default=0.05)
    d.add_argument("--top", type=int, default=5)
    d.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for independent runs "
                        "(results identical to serial; 0 = all CPUs)")
    d.add_argument("--no-fast", dest="fast", action="store_false",
                   help="replay the failure run through the scalar "
                        "reference path instead of the batched fast path")
    _add_telemetry_args(d)
    d.add_argument("--checkpoint", metavar="PATH",
                   help="save checksummed phase snapshots to PATH "
                        "(created if missing, resumed if present)")
    d.add_argument("--resume", metavar="PATH",
                   help="resume a diagnosis from an existing checkpoint "
                        "(like --checkpoint, but PATH must exist)")
    d.add_argument("--faults", metavar="SPEC",
                   help="inject faults from a deterministic plan spec, "
                        "e.g. 'seed=3,run_corrupt=0.2,worker_kill=0.1' "
                        "(failed units are quarantined, not fatal)")
    d.add_argument("--quarantine-report", metavar="PATH",
                   help="write the quarantine report (skipped units and "
                        "why) as JSON")

    t = sub.add_parser(
        "trace",
        help="record a workload trace, or convert one between formats")
    t.add_argument("program",
                   help="workload name, or 'convert' to re-encode an "
                        "existing trace file")
    t.add_argument("paths", nargs="*", metavar="PATH",
                   help="for 'convert': the input and output trace files")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--out", default="trace.jsonl")
    t.add_argument("--trace-format", choices=("jsonl", "columnar"),
                   default=None,
                   help="on-disk trace format (default jsonl when "
                        "recording; for 'convert' the default is the "
                        "opposite of the input's format). Reads always "
                        "auto-detect.")
    t.add_argument("--verify", action="store_true",
                   help="after 'convert', read both files back and "
                        "check they decode to identical events")
    _add_telemetry_args(t)

    p = sub.add_parser(
        "profile",
        help="telemetry run profile of a bug diagnosis, or the "
             "communication profile of workloads")
    p.add_argument("programs", nargs="*")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--train-runs", type=int, default=6)
    p.add_argument("--pruning-runs", type=int, default=8)
    p.add_argument("--load", metavar="PATH",
                   help="render a previously saved telemetry profile or "
                        "flight recording")
    p.add_argument("--flame", action="store_true",
                   help="print folded stacks (flamegraph.pl/speedscope "
                        "input) instead of tables")
    p.add_argument("--critical-path", action="store_true",
                   help="print the heaviest root-to-leaf span chain")
    p.add_argument("--openmetrics", action="store_true",
                   help="print the metrics in OpenMetrics text format")
    p.add_argument("--tick-clock", action="store_true",
                   help="use the deterministic tick clock for fresh "
                        "profile runs")

    c = sub.add_parser(
        "corpus",
        help="diagnosis accuracy over a generated ground-truth corpus")
    c.add_argument("--seed", type=int, default=7,
                   help="corpus seed (same seed + size => byte-identical "
                        "metrics JSON)")
    c.add_argument("--size", type=int, default=20,
                   help="number of generated programs")
    c.add_argument("--train-runs", type=int, default=6)
    c.add_argument("--pruning-runs", type=int, default=8)
    c.add_argument("--seq-len", type=int, default=3,
                   help="dependences per NN input (generated programs "
                        "are sized for the default of 3)")
    c.add_argument("--top", type=int, default=5, metavar="K",
                   help="k for the top-k and precision@k metrics")
    c.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for independent programs "
                        "(results identical to serial; 0 = all CPUs)")
    c.add_argument("--out", metavar="PATH",
                   help="write the canonical metrics JSON to PATH")
    c.add_argument("--trace-dir", metavar="DIR",
                   help="also record each program's failure run as a "
                        "trace file under DIR (created if missing)")
    c.add_argument("--trace-format", choices=("jsonl", "columnar"),
                   default="columnar",
                   help="format for --trace-dir trace files "
                        "(default columnar)")
    _add_telemetry_args(c)
    c.add_argument("--checkpoint", metavar="PATH",
                   help="save per-program snapshots to PATH "
                        "(created if missing, resumed if present)")
    c.add_argument("--resume", metavar="PATH",
                   help="resume a corpus run from an existing checkpoint "
                        "(like --checkpoint, but PATH must exist)")
    c.add_argument("--faults", metavar="SPEC",
                   help="inject faults from a deterministic plan spec; "
                        "programs lost to faults are quarantined and "
                        "scored as misses")
    c.add_argument("--quarantine-report", metavar="PATH",
                   help="write the quarantine report (skipped programs "
                        "and why) as JSON")

    e = sub.add_parser("experiment", help="regenerate a table/figure")
    e.add_argument("name", choices=experiment_names())
    e.add_argument("--preset", choices=("fast", "bench", "full"),
                   default="fast")
    e.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for independent runs "
                        "(results identical to serial; 0 = all CPUs)")
    _add_telemetry_args(e)
    return parser


def _check_out_dir(path, what):
    out_dir = os.path.dirname(path)
    if out_dir and not os.path.isdir(out_dir):
        print(f"error: {what} directory {out_dir!r} does not exist",
              file=sys.stderr)
        return False
    return True


def main(argv=None):
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "diagnose": _cmd_diagnose,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "corpus": _cmd_corpus,
        "experiment": _cmd_experiment,
    }[args.command]
    telemetry_out = getattr(args, "telemetry", None)
    events_out = getattr(args, "events", None)
    tick = getattr(args, "tick_clock", False) and args.command != "profile"
    if not (telemetry_out or events_out or tick):
        return handler(args)

    if telemetry_out and not _check_out_dir(telemetry_out, "telemetry"):
        return 2
    if events_out and not _check_out_dir(events_out, "events"):
        return 2
    registry = telemetry.Registry(clock=TickClock() if tick else None)
    recorder = None
    if events_out:
        capacity = getattr(args, "events_capacity", None)
        recorder = registry.attach_recorder(
            FlightRecorder(capacity=capacity)
            if capacity else FlightRecorder())
    with telemetry.use_registry(registry):
        rc = handler(args)
    meta = {"command": args.command, "version": __version__}
    if tick:
        meta["clock"] = "tick"
    calibration = selfcost.PINNED_CALIBRATION if tick else None
    if telemetry_out:
        telemetry.write_profile(registry, telemetry_out, meta=meta,
                                self_overhead=True, calibration=calibration)
        print(f"telemetry profile written to {telemetry_out}")
    if recorder is not None:
        profile = profile_dict(registry, meta=meta, self_overhead=True,
                               calibration=calibration)
        recorder.flush(events_out, meta=profile["meta"])
        print(f"flight recording written to {events_out}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
