"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro list
    python -m repro.cli diagnose gzip
    python -m repro.cli diagnose mysql1 --debug-buffer 120
    python -m repro.cli diagnose gzip --telemetry profile.json
    python -m repro.cli diagnose gzip --checkpoint ck.json    # resumable
    python -m repro.cli diagnose gzip --resume ck.json
    python -m repro.cli diagnose gzip --faults seed=3,run_corrupt=0.3 \
        --quarantine-report quarantine.json
    python -m repro.cli diagnose gen-atomicity-pipeline-s7   # generated bug
    python -m repro.cli trace lu --seed 3 --out lu.jsonl
    python -m repro.cli experiment table5 --preset fast
    python -m repro.cli profile gzip          # telemetry phase/counter table
    python -m repro.cli profile lu mcf        # workload communication profile
    python -m repro.cli corpus --seed 7 --size 20 --jobs 4 \
        --out metrics.json                    # accuracy on generated corpus
    python -m repro.cli diagnose gzip --engine pset   # baseline engine
    python -m repro.cli shootout --seed 7 --size 20 \
        --out shootout.json                   # race all engines (Table I)
    python -m repro.cli diagnose gzip --policy rate=0.5,seed=3,backoff=1
    python -m repro.cli frontier --seed 7 --size 20 \
        --out frontier.json     # sampling-rate x FIFO Pareto frontier
    python -m repro.cli serve --state jobs.json --jobs 2 &   # daemon
    python -m repro.cli submit --wait diagnose gzip          # via daemon
    python -m repro.cli status --out status.json
    python -m repro.cli shutdown

``diagnose`` runs the full ACT pipeline against a bundled bug program
or a generated one (``gen-<archetype>-<motif>-s<seed>``); ``trace``
records a workload execution to a JSON-lines trace file; ``experiment``
regenerates one of the paper's tables/figures; ``corpus`` runs the
diagnosis-accuracy harness over a seeded generated corpus and prints
precision/recall/rank tables (see ``docs/accuracy.md``); ``frontier``
sweeps adaptive sampling rates against FIFO depths and prints the
overhead-vs-accuracy Pareto table (see ``docs/adaptive.md``).
``diagnose``/``trace``/``corpus``/``experiment`` accept ``--telemetry
PATH`` to export a run profile (counters + nested phase spans, see
:mod:`repro.telemetry`), ``--events PATH`` to attach the bounded
flight recorder and flush its JSONL event stream, and ``--tick-clock``
to drive all telemetry timestamps from a deterministic tick clock
(byte-identical exports across reruns, including ``--jobs N`` runs).
``profile`` renders profiles for humans -- given a bug name it runs a
telemetry-enabled diagnosis and prints the phase/counter tables, given
kernel names it prints the communication profile, and ``--load``
re-renders a saved profile JSON *or* a flight recording; ``--flame``
emits folded stacks for flamegraph tooling, ``--critical-path`` the
heaviest root-to-leaf span chain, and ``--openmetrics`` the OpenMetrics
text exposition of the metrics.

``serve`` runs the diagnosis-as-a-service daemon on a local socket;
``submit``/``status``/``result``/``shutdown`` are its clients. A job
submitted with ``submit --wait`` prints exactly what the equivalent
cold command would have printed and exits with its exit code (the
daemon runs the same :mod:`repro.service.ops` code the CLI does). See
``docs/service.md``.
"""

import argparse
import os
import sys

from repro import __version__, telemetry
from repro.analysis.experiments import experiment_names, run_experiment
from repro.common.errors import ReproError
from repro.service import ops
from repro.service.jobstore import DEFAULT_HISTORY_LIMIT
from repro.telemetry import FlightRecorder, TickClock, profile_dict
from repro.telemetry import selfcost
from repro.workloads.registry import all_bug_names, all_kernel_names

#: Default daemon socket, shared by serve and every client command.
DEFAULT_SOCKET = ".repro-serve.sock"


def _emit(outcome):
    """Print an :class:`~repro.service.ops.Outcome` the way the inline
    command bodies used to: stdout text, then stderr text, then rc."""
    if outcome.out:
        print(outcome.out)
    if outcome.err:
        print(outcome.err, file=sys.stderr)
    return outcome.rc


def _cmd_list(_args):
    print("kernels:", ", ".join(all_kernel_names()))
    print("bugs:   ", ", ".join(all_bug_names()))
    print("generated: gen-<archetype>-<motif>-s<seed>, e.g. "
          "gen-atomicity-pipeline-s7")
    print("experiments:", ", ".join(experiment_names()))
    return 0


def _cmd_diagnose(args):
    return _emit(ops.run_diagnose(ops.DiagnoseRequest.from_args(args)))


def _cmd_trace(args):
    return _emit(ops.run_trace(ops.TraceRequest.from_args(args)))


def _cmd_profile(args):
    return _emit(ops.run_profile(ops.ProfileRequest.from_args(args)))


def _cmd_corpus(args):
    return _emit(ops.run_corpus(ops.CorpusRequest.from_args(args)))


def _cmd_shootout(args):
    return _emit(ops.run_shootout(ops.ShootoutRequest.from_args(args)))


def _cmd_frontier(args):
    return _emit(ops.run_frontier(ops.FrontierRequest.from_args(args)))


def _cmd_experiment(args):
    from dataclasses import replace

    from repro.analysis import presets

    preset = {"fast": presets.FAST, "bench": presets.BENCH,
              "full": presets.FULL}[args.preset]
    if args.jobs is not None:
        preset = replace(preset, jobs=args.jobs)
    print(run_experiment(args.name, preset))
    return 0


# -- service commands --------------------------------------------------


def _cmd_serve(args):
    from repro.service.server import Server

    try:
        server = Server(args.socket, state_path=args.state, jobs=args.jobs,
                        warm_capacity=args.warm_capacity,
                        tick_clock=args.tick_clock,
                        history_limit=args.history)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(f"repro serve: listening on {args.socket} (pid {os.getpid()})",
          flush=True)
    try:
        completed = server.run()
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(f"repro serve: shut down ({completed} jobs completed)")
    return 0


def _cmd_submit(args):
    from repro.service import client

    req = ops.REQUEST_TYPES[args.kind].from_args(args)
    try:
        job = client.submit(args.socket, req)
        if not args.wait:
            print(job["id"])
            return 0
        reply = client.wait_for(args.socket, job["id"],
                                timeout=args.timeout)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    result = reply.get("result") or {}
    if result.get("out"):
        print(result["out"])
    if result.get("err"):
        print(result["err"], file=sys.stderr)
    return result.get("rc", 2)


def _format_job_row(job):
    rc = job.get("rc")
    return (f"  {job['id']:<6} {job['kind']:<9} {job['state']:<8}"
            + (f" rc {rc}" if rc is not None else ""))


def _cmd_status(args):
    import json

    from repro.service import client

    try:
        reply = client.status(args.socket, job_id=args.job)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(reply, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.job is not None:
        print(_format_job_row(reply["job"]).strip())
        if reply.get("profile") and not args.out:
            spans = reply["profile"].get("spans") or []
            print(f"profile: {len(spans)} top-level spans "
                  f"(use --out to save the full JSON)")
    else:
        counts = reply["counts"]
        warm = reply["warm"]
        print(f"daemon pid {reply['pid']} (repro {reply['version']})")
        pruned = counts.get("pruned", 0)
        print(f"jobs: {counts['queued']} queued, {counts['running']} "
              f"running, {counts['done']} done, {counts['failed']} failed"
              + (f", {pruned} pruned" if pruned else ""))
        print(f"warm cache: {warm['size']}/{warm['capacity']} entries, "
              f"{warm['hits']} hits, {warm['misses']} misses, "
              f"{warm['evictions']} evictions")
        scheduler = reply.get("scheduler") or {}
        if scheduler.get("errors") or not scheduler.get("alive", True):
            state = "alive" if scheduler.get("alive") else "DEAD"
            print(f"scheduler: {state}, {scheduler.get('errors', 0)} "
                  f"errors (last: {scheduler.get('last_error')})",
                  file=sys.stderr)
        for job in reply["jobs"]:
            print(_format_job_row(job))
    if args.out:
        print(f"status JSON written to {args.out}")
    return 0


def _cmd_result(args):
    from repro.service import client
    from repro.service.jobstore import JOB_DONE, JOB_FAILED

    try:
        if args.wait:
            reply = client.wait_for(args.socket, args.job,
                                    timeout=args.timeout)
        else:
            reply = client.result(args.socket, args.job)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    state = reply["job"]["state"]
    if state not in (JOB_DONE, JOB_FAILED):
        print(f"error: job {args.job} is still {state} "
              "(use --wait to block)", file=sys.stderr)
        return 2
    result = reply.get("result") or {}
    if result.get("out"):
        print(result["out"])
    if result.get("err"):
        print(result["err"], file=sys.stderr)
    return result.get("rc", 2)


def _cmd_shutdown(args):
    from repro.service import client

    try:
        client.shutdown(args.socket)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print("daemon shutting down")
    return 0


# -- parser ------------------------------------------------------------


def _add_telemetry_args(cmd):
    """The telemetry trio shared by every pipeline-running command."""
    cmd.add_argument("--telemetry", metavar="PATH",
                     help="export a telemetry run profile (json/jsonl)")
    cmd.add_argument("--events", metavar="PATH",
                     help="attach the bounded flight recorder and flush "
                          "its JSONL event stream (span open/close, "
                          "counter deltas, fault/quarantine events, "
                          "simulator samples) to PATH")
    cmd.add_argument("--events-capacity", type=int, default=None,
                     metavar="N",
                     help="flight-recorder ring size (default 65536; "
                          "oldest non-span events drop first)")
    cmd.add_argument("--tick-clock", action="store_true",
                     help="drive telemetry timestamps from a deterministic "
                          "tick clock: exports and event streams become "
                          "byte-identical across reruns (self-overhead is "
                          "then modelled from pinned unit costs)")


def _add_diagnose_args(d):
    """``diagnose`` flags, shared with ``submit diagnose``."""
    d.add_argument("bug", metavar="BUG",
                   help="a bundled bug name (see 'repro list') or a "
                        "generated name like gen-atomicity-pipeline-s7")
    d.add_argument("--seed", type=int, default=12345)
    d.add_argument("--train-runs", type=int, default=10)
    d.add_argument("--pruning-runs", type=int, default=20)
    d.add_argument("--seq-len", type=int, default=5)
    d.add_argument("--debug-buffer", type=int, default=60)
    d.add_argument("--threshold", type=float, default=0.05)
    d.add_argument("--top", type=int, default=5)
    d.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for independent runs "
                        "(results identical to serial; 0 = all CPUs)")
    d.add_argument("--engine", default="nn", metavar="NAME",
                   help="predictor engine (see docs/engines.md): nn "
                        "(default), aviso, pbi, pset, ensemble, or "
                        "ensemble:a+b for explicit members")
    d.add_argument("--no-fast", dest="fast", action="store_false",
                   help="replay the failure run through the scalar "
                        "reference path instead of the batched fast path")
    d.add_argument("--checkpoint", metavar="PATH",
                   help="save checksummed phase snapshots to PATH "
                        "(created if missing, resumed if present)")
    d.add_argument("--resume", metavar="PATH",
                   help="resume a diagnosis from an existing checkpoint "
                        "(like --checkpoint, but PATH must exist)")
    d.add_argument("--faults", metavar="SPEC",
                   help="inject faults from a deterministic plan spec, "
                        "e.g. 'seed=3,run_corrupt=0.2,worker_kill=0.1' "
                        "(failed units are quarantined, not fatal)")
    d.add_argument("--quarantine-report", metavar="PATH",
                   help="write the quarantine report (skipped units and "
                        "why) as JSON")
    _add_policy_arg(d)


def _add_policy_arg(cmd):
    cmd.add_argument("--policy", metavar="SPEC",
                     help="adaptive tracking policy, e.g. "
                          "'rate=0.5,seed=3,backoff=1' (seeded sampling + "
                          "load shedding; NN engine only -- see "
                          "docs/adaptive.md). Omitted = full-rate "
                          "tracking, byte-identical to the policy-free "
                          "pipeline")


def _csv_floats(text):
    return tuple(float(v) for v in text.split(",") if v.strip())


def _csv_ints(text):
    return tuple(int(v) for v in text.split(",") if v.strip())


def _add_trace_args(t):
    """``trace`` flags, shared with ``submit trace``."""
    t.add_argument("program",
                   help="workload name, or 'convert' to re-encode an "
                        "existing trace file")
    t.add_argument("paths", nargs="*", metavar="PATH",
                   help="for 'convert': the input and output trace files")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--out", default="trace.jsonl")
    t.add_argument("--trace-format", choices=("jsonl", "columnar"),
                   default=None,
                   help="on-disk trace format (default jsonl when "
                        "recording; for 'convert' the default is the "
                        "opposite of the input's format). Reads always "
                        "auto-detect.")
    t.add_argument("--verify", action="store_true",
                   help="after 'convert', read both files back and "
                        "check they decode to identical events")


def _add_profile_args(p):
    """``profile`` flags, shared with ``submit profile``."""
    p.add_argument("programs", nargs="*")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--train-runs", type=int, default=6)
    p.add_argument("--pruning-runs", type=int, default=8)
    p.add_argument("--load", metavar="PATH",
                   help="render a previously saved telemetry profile or "
                        "flight recording")
    p.add_argument("--flame", action="store_true",
                   help="print folded stacks (flamegraph.pl/speedscope "
                        "input) instead of tables")
    p.add_argument("--critical-path", action="store_true",
                   help="print the heaviest root-to-leaf span chain")
    p.add_argument("--openmetrics", action="store_true",
                   help="print the metrics in OpenMetrics text format")
    p.add_argument("--tick-clock", action="store_true",
                   help="use the deterministic tick clock for fresh "
                        "profile runs")


def _add_corpus_args(c):
    """``corpus`` flags, shared with ``submit corpus``."""
    c.add_argument("--seed", type=int, default=7,
                   help="corpus seed (same seed + size => byte-identical "
                        "metrics JSON)")
    c.add_argument("--size", type=int, default=20,
                   help="number of generated programs")
    c.add_argument("--train-runs", type=int, default=6)
    c.add_argument("--pruning-runs", type=int, default=8)
    c.add_argument("--seq-len", type=int, default=3,
                   help="dependences per NN input (generated programs "
                        "are sized for the default of 3)")
    c.add_argument("--top", type=int, default=5, metavar="K",
                   help="k for the top-k and precision@k metrics")
    c.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for independent programs "
                        "(results identical to serial; 0 = all CPUs)")
    c.add_argument("--engine", default="nn", metavar="NAME",
                   help="predictor engine to score (see docs/engines.md; "
                        "default nn)")
    c.add_argument("--out", metavar="PATH",
                   help="write the canonical metrics JSON to PATH")
    c.add_argument("--trace-dir", metavar="DIR",
                   help="also record each program's failure run as a "
                        "trace file under DIR (created if missing)")
    c.add_argument("--trace-format", choices=("jsonl", "columnar"),
                   default="columnar",
                   help="format for --trace-dir trace files "
                        "(default columnar)")
    c.add_argument("--checkpoint", metavar="PATH",
                   help="save per-program snapshots to PATH "
                        "(created if missing, resumed if present)")
    c.add_argument("--resume", metavar="PATH",
                   help="resume a corpus run from an existing checkpoint "
                        "(like --checkpoint, but PATH must exist)")
    c.add_argument("--faults", metavar="SPEC",
                   help="inject faults from a deterministic plan spec; "
                        "programs lost to faults are quarantined and "
                        "scored as misses")
    c.add_argument("--quarantine-report", metavar="PATH",
                   help="write the quarantine report (skipped programs "
                        "and why) as JSON")
    _add_policy_arg(c)


def _add_shootout_args(s):
    """``shootout`` flags, shared with ``submit shootout``."""
    s.add_argument("--seed", type=int, default=7,
                   help="corpus seed (same seed + size => byte-identical "
                        "metrics JSON, whatever --jobs is)")
    s.add_argument("--size", type=int, default=20,
                   help="number of generated programs per engine")
    s.add_argument("--engines", metavar="NAMES", default=None,
                   help="comma-separated engine names to race "
                        "(default: every registered engine)")
    s.add_argument("--train-runs", type=int, default=6)
    s.add_argument("--pruning-runs", type=int, default=8)
    s.add_argument("--seq-len", type=int, default=3)
    s.add_argument("--top", type=int, default=5, metavar="K",
                   help="k for the top-k metric")
    s.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for independent programs "
                        "(results identical to serial; 0 = all CPUs)")
    s.add_argument("--out", metavar="PATH",
                   help="write the canonical shootout metrics JSON "
                        "to PATH")
    s.add_argument("--bench", metavar="PATH",
                   default="BENCH_accuracy.json",
                   help="accuracy-trajectory file to append per-engine "
                        "recall/top-1 to (default BENCH_accuracy.json)")
    s.add_argument("--no-bench", action="store_true",
                   help="do not touch the accuracy-trajectory file")


def _add_frontier_args(f):
    """``frontier`` flags, shared with ``submit frontier``."""
    f.add_argument("--seed", type=int, default=7,
                   help="corpus seed (same seed + size => byte-identical "
                        "metrics JSON, whatever --jobs is)")
    f.add_argument("--size", type=int, default=20,
                   help="number of generated programs")
    f.add_argument("--rates", type=_csv_floats,
                   default=(1.0, 0.75, 0.5, 0.25), metavar="R,R,...",
                   help="comma-separated sampling rates to sweep; 1.0 "
                        "(the policy-free baseline) is always included "
                        "(default 1.0,0.75,0.5,0.25)")
    f.add_argument("--fifo-sizes", type=_csv_ints, default=(4, 8, 16),
                   metavar="N,N,...",
                   help="comma-separated FIFO depths for the overhead "
                        "simulation (default 4,8,16)")
    f.add_argument("--policy-seed", type=int, default=0,
                   help="seed for the sampling hash (default 0)")
    f.add_argument("--no-backoff", action="store_true",
                   help="disable load-shedding backoff at sampled rates")
    f.add_argument("--no-tighten", action="store_true",
                   help="disable suspicion-directed tightening (sampled "
                        "passes then run blind, without the full-rate "
                        "pass's suspicious-PC feedback)")
    f.add_argument("--train-runs", type=int, default=6)
    f.add_argument("--pruning-runs", type=int, default=8)
    f.add_argument("--seq-len", type=int, default=3)
    f.add_argument("--top", type=int, default=5, metavar="K",
                   help="k for the top-k metric")
    f.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for independent programs "
                        "(results identical to serial; 0 = all CPUs)")
    f.add_argument("--out", metavar="PATH",
                   help="write the canonical frontier metrics JSON "
                        "to PATH")
    f.add_argument("--bench", metavar="PATH",
                   default="BENCH_accuracy.json",
                   help="accuracy-trajectory file to append the frontier "
                        "pick to (default BENCH_accuracy.json)")
    f.add_argument("--no-bench", action="store_true",
                   help="do not touch the accuracy-trajectory file")


def _add_socket_arg(cmd):
    cmd.add_argument("--socket", metavar="PATH", default=DEFAULT_SOCKET,
                     help="daemon socket path "
                          f"(default {DEFAULT_SOCKET})")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="ACT failure-diagnosis reproduction")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled workloads and experiments")

    d = sub.add_parser("diagnose",
                       help="diagnose a bundled or generated bug with ACT")
    _add_diagnose_args(d)
    _add_telemetry_args(d)

    t = sub.add_parser(
        "trace",
        help="record a workload trace, or convert one between formats")
    _add_trace_args(t)
    _add_telemetry_args(t)

    p = sub.add_parser(
        "profile",
        help="telemetry run profile of a bug diagnosis, or the "
             "communication profile of workloads")
    _add_profile_args(p)

    c = sub.add_parser(
        "corpus",
        help="diagnosis accuracy over a generated ground-truth corpus")
    _add_corpus_args(c)
    _add_telemetry_args(c)

    sh = sub.add_parser(
        "shootout",
        help="race every registered engine over the same corpus "
             "(Table-I-style comparison)")
    _add_shootout_args(sh)
    _add_telemetry_args(sh)

    fr = sub.add_parser(
        "frontier",
        help="sweep sampling rates x FIFO depths over a generated "
             "corpus into an adaptive-overhead Pareto table")
    _add_frontier_args(fr)
    _add_telemetry_args(fr)

    e = sub.add_parser("experiment", help="regenerate a table/figure")
    e.add_argument("name", choices=experiment_names())
    e.add_argument("--preset", choices=("fast", "bench", "full"),
                   default="fast")
    e.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for independent runs "
                        "(results identical to serial; 0 = all CPUs)")
    _add_telemetry_args(e)

    sv = sub.add_parser(
        "serve",
        help="run the diagnosis service daemon on a local socket")
    _add_socket_arg(sv)
    sv.add_argument("--state", metavar="PATH",
                    help="durable jobstore checkpoint: queued/running "
                         "jobs survive a daemon kill and resume on "
                         "restart (in-memory queue when omitted)")
    sv.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="default worker processes for jobs that do not "
                         "set their own (results identical to serial; "
                         "0 = all CPUs)")
    sv.add_argument("--warm-capacity", type=int, default=8, metavar="N",
                    help="LRU capacity of the warm trained-state cache "
                         "(default 8)")
    sv.add_argument("--history", type=int,
                    default=DEFAULT_HISTORY_LIMIT, metavar="N",
                    help="finished jobs retained (oldest pruned beyond "
                         f"this, >= 1; default {DEFAULT_HISTORY_LIMIT})")
    sv.add_argument("--tick-clock", action="store_true",
                    help="run per-job telemetry on the deterministic "
                         "tick clock")

    sb = sub.add_parser(
        "submit",
        help="submit a job to the serve daemon (options before the "
             "job kind: repro submit --wait diagnose gzip)")
    _add_socket_arg(sb)
    sb.add_argument("--wait", action="store_true",
                    help="block until the job finishes, print exactly "
                         "what the cold command would have printed, and "
                         "exit with its exit code")
    sb.add_argument("--timeout", type=float, default=600.0, metavar="SEC",
                    help="--wait limit in seconds (default 600)")
    sbsub = sb.add_subparsers(
        dest="kind", required=True,
        metavar="{diagnose,corpus,shootout,frontier,trace,profile}")
    _add_diagnose_args(sbsub.add_parser("diagnose"))
    _add_corpus_args(sbsub.add_parser("corpus"))
    _add_shootout_args(sbsub.add_parser("shootout"))
    _add_frontier_args(sbsub.add_parser("frontier"))
    _add_trace_args(sbsub.add_parser("trace"))
    _add_profile_args(sbsub.add_parser("profile"))

    st = sub.add_parser("status",
                        help="daemon status, or one job's status + "
                             "telemetry profile")
    st.add_argument("job", nargs="?", default=None,
                    help="job id (daemon-wide status when omitted)")
    _add_socket_arg(st)
    st.add_argument("--out", metavar="PATH",
                    help="write the full status reply (including the "
                         "job's telemetry run profile) as JSON")

    r = sub.add_parser("result",
                       help="print a finished job's output and exit "
                            "with its exit code")
    r.add_argument("job", help="job id")
    _add_socket_arg(r)
    r.add_argument("--wait", action="store_true",
                   help="block until the job finishes")
    r.add_argument("--timeout", type=float, default=600.0, metavar="SEC",
                   help="--wait limit in seconds (default 600)")

    sd = sub.add_parser("shutdown",
                        help="ask the serve daemon to shut down "
                             "gracefully")
    _add_socket_arg(sd)
    return parser


def _check_out_dir(path, what):
    out_dir = os.path.dirname(path)
    if out_dir and not os.path.isdir(out_dir):
        print(f"error: {what} directory {out_dir!r} does not exist",
              file=sys.stderr)
        return False
    return True


def main(argv=None):
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "diagnose": _cmd_diagnose,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "corpus": _cmd_corpus,
        "shootout": _cmd_shootout,
        "frontier": _cmd_frontier,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "result": _cmd_result,
        "shutdown": _cmd_shutdown,
    }[args.command]
    telemetry_out = getattr(args, "telemetry", None)
    events_out = getattr(args, "events", None)
    tick = (getattr(args, "tick_clock", False)
            and args.command not in ("profile", "serve", "submit"))
    if not (telemetry_out or events_out or tick):
        return handler(args)

    if telemetry_out and not _check_out_dir(telemetry_out, "telemetry"):
        return 2
    if events_out and not _check_out_dir(events_out, "events"):
        return 2
    registry = telemetry.Registry(clock=TickClock() if tick else None)
    recorder = None
    if events_out:
        capacity = getattr(args, "events_capacity", None)
        recorder = registry.attach_recorder(
            FlightRecorder(capacity=capacity)
            if capacity else FlightRecorder())
    with telemetry.use_registry(registry):
        rc = handler(args)
    meta = {"command": args.command, "version": __version__}
    if tick:
        meta["clock"] = "tick"
    calibration = selfcost.PINNED_CALIBRATION if tick else None
    if telemetry_out:
        telemetry.write_profile(registry, telemetry_out, meta=meta,
                                self_overhead=True, calibration=calibration)
        print(f"telemetry profile written to {telemetry_out}")
    if recorder is not None:
        profile = profile_dict(registry, meta=meta, self_overhead=True,
                               calibration=calibration)
        recorder.flush(events_out, meta=profile["meta"])
        print(f"flight recording written to {events_out}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
