"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro.cli list
    python -m repro.cli diagnose gzip
    python -m repro.cli diagnose mysql1 --debug-buffer 120
    python -m repro.cli trace lu --seed 3 --out lu.jsonl
    python -m repro.cli experiment table5 --preset fast

``diagnose`` runs the full ACT pipeline against one of the bundled bug
programs; ``trace`` records a workload execution to a JSON-lines trace
file; ``experiment`` regenerates one of the paper's tables/figures.
"""

import argparse
import sys

from repro.core.config import ACTConfig
from repro.core.diagnosis import diagnose_failure
from repro.trace.trace_io import write_trace
from repro.workloads.framework import run_program
from repro.workloads.registry import (
    all_bug_names,
    all_kernel_names,
    get_bug,
    get_kernel,
)

_EXPERIMENTS = ("table1", "table4", "table5", "table6", "fig7a", "fig7b",
                "overhead", "false_sharing", "nn_design", "adaptation")


def _cmd_list(_args):
    print("kernels:", ", ".join(all_kernel_names()))
    print("bugs:   ", ", ".join(all_bug_names()))
    print("experiments:", ", ".join(_EXPERIMENTS))
    return 0


def _cmd_diagnose(args):
    program = get_bug(args.bug)
    config = ACTConfig(seq_len=args.seq_len,
                       debug_buffer=args.debug_buffer,
                       mispred_threshold=args.threshold)
    report = diagnose_failure(program, config=config,
                              n_train_runs=args.train_runs,
                              n_pruning_runs=args.pruning_runs,
                              failure_seed=args.seed)
    print(f"program          : {report.program}")
    print(f"failure          : {report.failure_description}")
    print(f"deps observed    : {report.n_deps} "
          f"({report.n_invalid} flagged invalid)")
    print(f"debug buffer     : {report.n_debug_entries} entries"
          f"{' (overflowed)' if report.debug_overflowed else ''}")
    print(f"filtered         : {report.filter_pct:.0f}%")
    print(f"root cause found : {report.found}"
          + (f" at rank {report.rank}" if report.found else ""))
    for note in report.notes:
        print(f"note: {note}")
    for i, f in enumerate(report.top(args.top), start=1):
        dep = f.mismatch_dep or f.seq[-1]
        print(f"  #{i}: store {dep.store_pc:#x} -> load {dep.load_pc:#x} "
              f"({'inter' if dep.inter_thread else 'intra'}-thread, "
              f"matched {f.matched}, output {f.output:.3f})")
    return 0 if report.found else 1


def _cmd_profile(args):
    from repro.sim.trace_stats import profile_run, profile_table

    profiles = []
    names = args.programs or all_kernel_names()
    for name in names:
        try:
            program = get_kernel(name)
        except Exception:
            program = get_bug(name)
        run = run_program(program, seed=args.seed)
        profiles.append(profile_run(run, name=name))
    print(profile_table(profiles))
    return 0


def _cmd_trace(args):
    try:
        program = get_kernel(args.program)
    except Exception:
        program = get_bug(args.program)
    run = run_program(program, seed=args.seed)
    write_trace(run, args.out)
    print(f"wrote {len(run.events)} events "
          f"({run.n_threads} threads, failed={run.failed}) to {args.out}")
    return 0


def _cmd_experiment(args):
    from repro.analysis import presets

    preset = {"fast": presets.FAST, "bench": presets.BENCH,
              "full": presets.FULL}[args.preset]
    name = args.name
    if name == "table1":
        from repro.analysis.table1 import format_table1
        print(format_table1())
    elif name == "table4":
        from repro.analysis.table4 import format_table4, run_table4
        print(format_table4(run_table4(preset)))
    elif name == "table5":
        from repro.analysis.table5 import format_table5, run_table5
        print(format_table5(run_table5(preset)))
    elif name == "table6":
        from repro.analysis.table6 import format_table6, run_table6
        print(format_table6(run_table6(preset)))
    elif name == "fig7a":
        from repro.analysis.fig7a import format_fig7a, run_fig7a
        print(format_fig7a(run_fig7a(preset)))
    elif name == "fig7b":
        from repro.analysis.fig7b import format_fig7b, run_fig7b
        print(format_fig7b(run_fig7b(preset)))
    elif name == "overhead":
        from repro.analysis.overhead import format_overhead, run_overhead
        print(format_overhead(run_overhead(preset)))
    elif name == "false_sharing":
        from repro.analysis.false_sharing import (
            format_false_sharing,
            run_false_sharing,
        )
        print(format_false_sharing(run_false_sharing(preset)))
    elif name == "nn_design":
        from repro.analysis.nn_design import format_nn_design, run_nn_design
        print(format_nn_design(run_nn_design(preset)))
    elif name == "adaptation":
        from repro.analysis.adaptation import (
            format_adaptation,
            run_adaptation,
        )
        print(format_adaptation(run_adaptation()))
    else:
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="ACT failure-diagnosis reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled workloads and experiments")

    d = sub.add_parser("diagnose", help="diagnose a bundled bug with ACT")
    d.add_argument("bug", choices=all_bug_names())
    d.add_argument("--seed", type=int, default=12345)
    d.add_argument("--train-runs", type=int, default=10)
    d.add_argument("--pruning-runs", type=int, default=20)
    d.add_argument("--seq-len", type=int, default=5)
    d.add_argument("--debug-buffer", type=int, default=60)
    d.add_argument("--threshold", type=float, default=0.05)
    d.add_argument("--top", type=int, default=5)

    t = sub.add_parser("trace", help="record a workload trace")
    t.add_argument("program")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--out", default="trace.jsonl")

    p = sub.add_parser("profile",
                       help="communication profile of workloads")
    p.add_argument("programs", nargs="*")
    p.add_argument("--seed", type=int, default=1)

    e = sub.add_parser("experiment", help="regenerate a table/figure")
    e.add_argument("name", choices=_EXPERIMENTS)
    e.add_argument("--preset", choices=("fast", "bench", "full"),
                   default="fast")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "diagnose": _cmd_diagnose,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "experiment": _cmd_experiment,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
