"""Durable FIFO job queue for the serve daemon.

Jobs move ``queued -> running -> done|failed``. Every transition is
persisted through the checksummed :class:`~repro.faults.Checkpoint`
(atomic tmp-file + rename, checksum-verified loads), so a daemon killed
at any instant leaves a consistent store. On restart,
:meth:`JobStore.open` demotes ``running`` jobs back to ``queued`` --
the job's request is pure data and re-running it is deterministic, so
re-execution after a crash yields the result the killed run would have
produced.

Job ids are ``j1``, ``j2``, ... in submission order; the queue is
strictly FIFO. The store is daemon-private: the daemon is the only
writer, clients only ever see jobs through the socket protocol.

Retention: finished (``done``/``failed``) jobs are kept up to
``history_limit`` (default :data:`DEFAULT_HISTORY_LIMIT`); beyond
that the *oldest* finished jobs are pruned -- dropped from memory and
from the persisted form, so a long-lived daemon neither grows without
bound nor pays O(total-history) serialisation per transition. Queued
and running jobs are never pruned. A pruned job id answers
:class:`JobNotFound`; the count of pruned jobs survives in the
checkpoint (``pruned``), as does the id counter, so ids never recycle.
"""

import time
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.common.errors import JobNotFound, ReproError
from repro.faults.checkpoint import Checkpoint

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: The jobstore checkpoint identity. The fingerprint is constant: a
#: store file belongs to whatever daemon points at it, not to one
#: particular job mix.
STORE_KIND = "jobstore"
STORE_FINGERPRINT = {"store": "repro.service.jobstore", "v": 1}

#: Finished jobs retained before the oldest are pruned. Generous enough
#: that a client polling ``wait_for`` never loses the job it is
#: watching under any sane submit rate; small enough that the daemon's
#: memory and per-transition checkpoint writes stay bounded.
DEFAULT_HISTORY_LIMIT = 256


@dataclass
class Job:
    """One submitted operation and everything known about it."""

    id: str
    request: dict                 # ops.request_to_payload form
    state: str = JOB_QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Outcome fields once finished: {"rc", "out", "err", "payload"}.
    result: Optional[dict] = None
    #: Telemetry run-profile dict for the job (the status payload).
    profile: Optional[dict] = None
    #: Times the job was found mid-run at daemon startup and requeued.
    requeues: int = 0

    @property
    def kind(self):
        return self.request.get("kind", "?")

    def to_payload(self):
        return asdict(self)

    @classmethod
    def from_payload(cls, payload):
        return cls(**payload)

    def summary(self):
        """The compact status row clients see (no result/profile body)."""
        return {
            "id": self.id, "kind": self.kind, "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "requeues": self.requeues,
            "rc": self.result.get("rc") if self.result else None,
        }


class JobStore:
    """FIFO queue of :class:`Job` records, durable via a Checkpoint.

    Pass ``path=None`` for a purely in-memory store (tests, throwaway
    daemons); every mutation is then just not persisted.
    ``history_limit`` caps retained finished jobs (``None`` =
    unlimited; must be >= 1 otherwise, since a client must be able to
    read back the result of the job it just watched finish).
    """

    def __init__(self, path=None, clock=time.time,
                 history_limit=DEFAULT_HISTORY_LIMIT):
        if history_limit is not None and history_limit < 1:
            raise ReproError(f"history limit must be >= 1 (or None for "
                             f"unlimited), got {history_limit}")
        self._clock = clock
        self._history_limit = history_limit
        self._jobs = {}
        self._order = []
        self._next_id = 1
        self.pruned = 0
        self._checkpoint = None
        if path is not None:
            self._checkpoint = Checkpoint.open(path, STORE_KIND,
                                               STORE_FINGERPRINT)
            self._restore()

    # -- persistence ---------------------------------------------------

    def _restore(self):
        """Rebuild from the checkpoint; requeue jobs found running."""
        meta = self._checkpoint.phases.get("meta") or {}
        self.pruned = int(meta.get("pruned", 0))
        self._next_id = max(self._next_id, int(meta.get("next_id", 1)))
        stored = self._checkpoint.phases.get("jobs")
        if not stored:
            return
        for payload in stored:
            job = Job.from_payload(payload)
            if job.state == JOB_RUNNING:
                # The previous daemon died mid-job; the request is pure
                # data, so run it again from scratch.
                job.state = JOB_QUEUED
                job.started_at = None
                job.profile = None
                job.requeues += 1
            self._jobs[job.id] = job
            self._order.append(job.id)
            numeric = int(job.id[1:]) if job.id[1:].isdigit() else 0
            self._next_id = max(self._next_id, numeric + 1)

    def _persist(self):
        if self._checkpoint is None:
            return
        self._checkpoint.put(
            "meta", {"next_id": self._next_id, "pruned": self.pruned},
            save=False)
        self._checkpoint.put(
            "jobs", [self._jobs[jid].to_payload() for jid in self._order])

    def _prune(self):
        """Drop the oldest finished jobs beyond the history limit."""
        if self._history_limit is None:
            return
        finished = [jid for jid in self._order
                    if self._jobs[jid].state in (JOB_DONE, JOB_FAILED)]
        excess = len(finished) - self._history_limit
        for jid in finished[:max(0, excess)]:
            del self._jobs[jid]
            self._order.remove(jid)
            self.pruned += 1

    @property
    def path(self):
        return self._checkpoint.path if self._checkpoint else None

    # -- queue operations ----------------------------------------------

    def submit(self, request_payload):
        """Append a new queued job; returns the :class:`Job`."""
        job = Job(id=f"j{self._next_id}", request=request_payload,
                  submitted_at=self._clock())
        self._next_id += 1
        self._jobs[job.id] = job
        self._order.append(job.id)
        self._persist()
        return job

    def get(self, job_id):
        """The job with ``job_id``; raises :class:`JobNotFound`."""
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(f"no such job {job_id!r}", job_id=job_id)
        return job

    def next_queued(self):
        """The oldest queued job, or None (FIFO order)."""
        for jid in self._order:
            job = self._jobs[jid]
            if job.state == JOB_QUEUED:
                return job
        return None

    def mark_running(self, job_id):
        job = self.get(job_id)
        job.state = JOB_RUNNING
        job.started_at = self._clock()
        self._persist()
        return job

    def finish(self, job_id, outcome, profile=None):
        """Record a finished job (``done`` on rc==0/1, ``failed`` on 2+).

        rc 1 is a *successful* run with a negative verdict (diagnosis
        did not rank the root cause) -- the operation itself worked, so
        the job is ``done``; only operational errors (rc >= 2) fail it.
        """
        job = self.get(job_id)
        job.state = JOB_DONE if outcome.rc < 2 else JOB_FAILED
        job.finished_at = self._clock()
        job.result = {"rc": outcome.rc, "out": outcome.out,
                      "err": outcome.err, "payload": outcome.payload}
        job.profile = profile
        self._prune()
        self._persist()
        return job

    def fail(self, job_id, message):
        """Record an operational failure that never produced an Outcome."""
        job = self.get(job_id)
        job.state = JOB_FAILED
        job.finished_at = self._clock()
        job.result = {"rc": 2, "out": "", "err": message, "payload": {}}
        self._prune()
        self._persist()
        return job

    # -- views ----------------------------------------------------------

    def jobs(self):
        """All jobs in submission order."""
        return [self._jobs[jid] for jid in self._order]

    def counts(self):
        """State -> count summary (plus pruned finished jobs)."""
        out = {JOB_QUEUED: 0, JOB_RUNNING: 0, JOB_DONE: 0, JOB_FAILED: 0}
        for job in self._jobs.values():
            out[job.state] = out.get(job.state, 0) + 1
        out["pruned"] = self.pruned
        return out

    def __len__(self):
        return len(self._jobs)
