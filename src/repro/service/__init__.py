"""Diagnosis-as-a-service: the ``repro serve`` daemon and its clients.

Every diagnosis used to be a cold-start CLI process -- retrain, replay,
exit -- discarding exactly the state (trained per-thread networks,
encoders, the warm worker pool) that makes repeat diagnoses cheap. This
package turns the pipeline into an always-on local service:

- :mod:`repro.service.ops` -- the command bodies of ``diagnose`` /
  ``corpus`` / ``trace`` / ``profile`` as plain request/response
  dataclasses. The CLI and the daemon call *identical* code, so a job
  submitted over the socket produces byte-identical output to the
  equivalent cold CLI invocation.
- :mod:`repro.service.protocol` -- the JSON-lines message protocol
  spoken over a local UNIX socket.
- :mod:`repro.service.jobstore` -- the FIFO job queue, durable via the
  checksummed :class:`~repro.faults.Checkpoint` (a killed daemon
  resumes queued/running jobs on restart).
- :mod:`repro.service.server` -- the daemon: accept loop, scheduler,
  per-job telemetry (the run-profile JSON is the job status payload)
  and the LRU warm-state cache of trained networks/encoders.
- :mod:`repro.service.client` -- ``repro submit`` / ``status`` /
  ``result`` / ``shutdown`` helpers.

See ``docs/service.md`` for the protocol and job lifecycle.
"""

from repro.service.jobstore import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    JobStore,
)
from repro.service.ops import (
    CorpusRequest,
    DiagnoseRequest,
    Outcome,
    ProfileRequest,
    TraceRequest,
    WarmStateCache,
    request_from_payload,
    request_to_payload,
    run_request,
)
from repro.service.server import Server
from repro.service.client import (
    ping,
    shutdown,
    status,
    submit,
    wait_for,
)

__all__ = [
    "JOB_DONE", "JOB_FAILED", "JOB_QUEUED", "JOB_RUNNING",
    "Job", "JobStore",
    "CorpusRequest", "DiagnoseRequest", "Outcome", "ProfileRequest",
    "TraceRequest", "WarmStateCache",
    "request_from_payload", "request_to_payload", "run_request",
    "Server",
    "ping", "shutdown", "status", "submit", "wait_for",
]
