"""The ``repro serve`` daemon.

One process, three moving parts:

- the **accept loop** (main thread) answers one-shot protocol requests
  on a local ``AF_UNIX`` socket -- submit, status, result, ping,
  shutdown. Requests are tiny and answered immediately; nothing blocks
  on job execution.
- the **scheduler thread** drains the FIFO job queue strictly in
  submission order, one job at a time. Intra-job parallelism comes from
  the job's ``jobs`` field (defaulting to the daemon's ``--jobs``)
  scheduled over the shared warm :class:`~repro.parallel.PoolHandle` --
  sequential jobs over a parallel pool keeps results deterministic
  (byte-identical to a cold CLI run) while still using every core.
- the **warm-state cache** (:class:`~repro.service.ops.WarmStateCache`)
  holds trained networks/encoders keyed by (workload, seeds, config),
  so a repeat diagnosis skips offline retraining.

Each job runs under its own fresh telemetry
:class:`~repro.telemetry.Registry`; the exported run profile is stored
with the job and served as its status payload (a *live* snapshot for a
job still running).

Durability: every job transition persists through the jobstore's
checksummed checkpoint. ``SIGTERM``/``SIGINT`` trigger a graceful
shutdown -- finish the job in flight, leave the rest queued, release
the worker pool via :meth:`PoolHandle.close`, unlink the socket. A
``SIGKILL``'d daemon skips all of that, and the next daemon pointed at
the same state file requeues whatever was running (see
:mod:`repro.service.jobstore`).
"""

import os
import signal
import socket
import stat
import sys
import threading
import traceback

from repro import __version__, telemetry
from repro.common.errors import JobNotFound, ProtocolError, ReproError
from repro.parallel import get_pool, resolve_jobs
from repro.service import ops
from repro.service.jobstore import (
    DEFAULT_HISTORY_LIMIT,
    JOB_DONE,
    JOB_FAILED,
    JobStore,
)
from repro.service.protocol import read_message, write_message
from repro.telemetry import TickClock, profile_dict
from repro.telemetry import selfcost

#: Accept-loop poll interval (seconds): how often the stop flag is
#: checked while waiting for connections.
POLL_INTERVAL = 0.2

#: Per-connection socket timeout (seconds). A client that connects and
#: then stalls (or someone typing into ``nc -U`` slower than this) gets
#: its connection dropped -- never the daemon.
CONN_TIMEOUT = 5.0


class Server:
    """The diagnosis service daemon. ``run()`` blocks until shutdown."""

    def __init__(self, socket_path, state_path=None, jobs=None,
                 warm_capacity=8, tick_clock=False,
                 history_limit=DEFAULT_HISTORY_LIMIT):
        self.socket_path = socket_path
        self.jobs = jobs
        self.tick_clock = tick_clock
        self.store = JobStore(state_path, history_limit=history_limit)
        self.warm = ops.WarmStateCache(capacity=warm_capacity)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._lock = threading.Lock()
        self._active = None        # (job_id, Registry) while running
        self._listener = None
        self._scheduler = None
        self.scheduler_errors = 0        # unexpected scheduler exceptions
        self.last_scheduler_error = None

    # -- lifecycle -----------------------------------------------------

    def _bind(self):
        if os.path.exists(self.socket_path):
            try:
                is_sock = stat.S_ISSOCK(os.stat(self.socket_path).st_mode)
            except OSError:
                is_sock = True  # vanished underneath us; bind decides
            if not is_sock:
                raise ReproError(
                    f"{self.socket_path!r} exists and is not a socket; "
                    "refusing to delete it (pass a different --socket "
                    "path)")
            # A stale socket from a killed daemon refuses rebinding;
            # probe it and only steal the path if nobody answers.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(1.0)
                probe.connect(self.socket_path)
            except OSError:
                os.unlink(self.socket_path)
            else:
                probe.close()
                raise ReproError(
                    f"another daemon is already listening on "
                    f"{self.socket_path!r}")
            finally:
                probe.close()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(8)
        listener.settimeout(POLL_INTERVAL)
        return listener

    def stop(self):
        """Request shutdown (signal-handler and protocol entry point)."""
        self._stop.set()
        self._wake.set()

    def run(self, install_signal_handlers=True):
        """Serve until stopped; returns the number of jobs completed."""
        self._listener = self._bind()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                signal.signal(sig, lambda _s, _f: self.stop())
        self._scheduler = threading.Thread(target=self._schedule_loop,
                                           name="repro-serve-scheduler",
                                           daemon=True)
        self._scheduler.start()
        completed = 0
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                try:
                    self._handle_connection(conn)
                except Exception:  # noqa: BLE001 - one bad client, not us
                    traceback.print_exc(file=sys.stderr)
                finally:
                    conn.close()
        finally:
            completed = self._shutdown()
        return completed

    def _shutdown(self):
        """Graceful teardown: drain the running job, then release."""
        self._stop.set()
        self._wake.set()
        if self._scheduler is not None:
            # The scheduler finishes the job in flight (its transitions
            # are already persisted) and refuses to start another.
            self._scheduler.join()
        if self._listener is not None:
            self._listener.close()
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        # Workers go last: after the drain, before interpreter atexit.
        get_pool().close()
        counts = self.store.counts()
        return (counts[JOB_DONE] + counts[JOB_FAILED]
                + counts.get("pruned", 0))

    # -- scheduler -----------------------------------------------------

    def _schedule_loop(self):
        """Drain the queue. This thread must never die: every step is
        guarded, and anything unexpected (including persistence
        failures -- disk full, checkpoint write errors) is counted and
        surfaced through ``status`` instead of silently killing job
        execution while the accept loop keeps taking submits."""
        while not self._stop.is_set():
            job = None
            try:
                with self._lock:
                    job = self.store.next_queued()
                    if job is not None:
                        self.store.mark_running(job.id)
            except Exception:  # noqa: BLE001 - keep scheduling
                self._note_scheduler_error("marking job running")
            if job is None:
                self._wake.wait(POLL_INTERVAL)
                self._wake.clear()
                continue
            self._run_job(job)

    def _note_scheduler_error(self, context):
        """Record an unexpected scheduler exception (keeps the thread)."""
        err = traceback.format_exc()
        with self._lock:
            self.scheduler_errors += 1
            self.last_scheduler_error = (
                f"{context}: {err.strip().splitlines()[-1]}")
        print(f"repro serve: scheduler error while {context}:\n{err}",
              file=sys.stderr)

    def _run_job(self, job):
        """Execute one job under a fresh per-job telemetry registry."""
        registry = telemetry.Registry(
            clock=TickClock() if self.tick_clock else None)
        with self._lock:
            self._active = (job.id, registry)
        outcome = profile = error = None
        try:
            req = ops.request_from_payload(job.request)
            with telemetry.use_registry(registry):
                with registry.span("serve.job", job=job.id, kind=req.kind):
                    outcome = ops.run_request(req, warm=self.warm,
                                              default_jobs=self.jobs)
            profile = self._profile(registry, job)
        except Exception as e:  # noqa: BLE001 - job failure, not daemon death
            error = f"error: {e}"
        # Recording the end transitions the store *and* persists it;
        # either can fail (disk full, checkpoint errors) and must not
        # take the scheduler thread down with it.
        try:
            with self._lock:
                if error is None:
                    self.store.finish(job.id, outcome, profile=profile)
                else:
                    self.store.fail(job.id, error)
        except Exception:  # noqa: BLE001 - persistence failed, keep going
            self._note_scheduler_error(f"recording end of job {job.id}")
        finally:
            with self._lock:
                self._active = None

    def _profile(self, registry, job):
        meta = {"job": job.id, "kind": job.kind, "version": __version__}
        if self.tick_clock:
            meta["clock"] = "tick"
        return profile_dict(
            registry, meta=meta, self_overhead=True,
            calibration=selfcost.PINNED_CALIBRATION if self.tick_clock
            else None)

    def _live_profile(self, job_id):
        """Best-effort profile snapshot of the running job (or None)."""
        with self._lock:
            active = self._active
        if active is None or active[0] != job_id:
            return None
        try:
            return self._profile(active[1], self.store.get(job_id))
        except Exception:  # noqa: BLE001 - racing a finishing job is fine
            return None

    # -- protocol ------------------------------------------------------

    def _handle_connection(self, conn):
        conn.settimeout(CONN_TIMEOUT)
        try:
            message = read_message(conn)
        except ProtocolError as e:
            self._reply(conn, {"ok": False, "error": str(e),
                               "error_type": "ProtocolError"})
            return
        except OSError:
            # Slow or vanished client (recv timeout, reset mid-frame):
            # drop the connection, never the daemon.
            return
        try:
            reply = self._dispatch(message)
        except (ProtocolError, JobNotFound) as e:
            reply = {"ok": False, "error": str(e),
                     "error_type": type(e).__name__}
        except Exception as e:  # noqa: BLE001 - never kill the daemon
            reply = {"ok": False, "error": f"internal error: {e}",
                     "error_type": type(e).__name__}
        self._reply(conn, reply)

    @staticmethod
    def _reply(conn, payload):
        try:
            write_message(conn, payload)
        except OSError:
            pass  # client went away; nothing to tell it

    def _dispatch(self, message):
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "version": __version__,
                    "resolved_jobs": resolve_jobs(self.jobs)}
        if op == "submit":
            req = ops.request_from_payload(message.get("request"))
            with self._lock:
                job = self.store.submit(ops.request_to_payload(req))
            self._wake.set()
            return {"ok": True, "job": job.summary()}
        if op == "status":
            job_id = message.get("job")
            if job_id is None:
                with self._lock:
                    jobs = [j.summary() for j in self.store.jobs()]
                    counts = self.store.counts()
                    scheduler = {
                        "alive": (self._scheduler is not None
                                  and self._scheduler.is_alive()),
                        "errors": self.scheduler_errors,
                        "last_error": self.last_scheduler_error,
                    }
                return {"ok": True, "pid": os.getpid(),
                        "version": __version__, "counts": counts,
                        "warm": self.warm.stats(),
                        "scheduler": scheduler, "jobs": jobs}
            with self._lock:
                job = self.store.get(job_id)
                summary = job.summary()
                profile = job.profile
            if profile is None:
                profile = self._live_profile(job_id)
            return {"ok": True, "job": summary, "profile": profile}
        if op == "result":
            job_id = message.get("job")
            if job_id is None:
                raise ProtocolError("result needs a job id")
            with self._lock:
                job = self.store.get(job_id)
                return {"ok": True, "job": job.summary(),
                        "result": job.result}
        if op == "shutdown":
            self.stop()
            return {"ok": True, "stopping": True}
        raise ProtocolError(f"unknown op {op!r} (expected ping, submit, "
                            "status, result or shutdown)")
