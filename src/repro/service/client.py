"""Client helpers for the serve daemon's socket protocol.

Thin wrappers over :func:`repro.service.protocol.request` -- each one
builds the op message, performs the one-shot exchange, and converts a
daemon-side error reply back into the matching exception
(:class:`~repro.common.errors.JobNotFound` /
:class:`~repro.common.errors.ProtocolError` /
:class:`~repro.common.errors.ServiceError`). Used by the ``repro
submit`` / ``status`` / ``result`` / ``shutdown`` CLI commands and by
the daemon tests.
"""

import time

from repro.common.errors import JobNotFound, ProtocolError, ServiceError
from repro.service import ops
from repro.service.jobstore import JOB_DONE, JOB_FAILED
from repro.service.protocol import DEFAULT_TIMEOUT, request


def _checked(reply, socket_path):
    """Unwrap a reply, raising the daemon's error as an exception."""
    if reply.get("ok"):
        return reply
    error = reply.get("error", "daemon reported an unspecified error")
    error_type = reply.get("error_type")
    if error_type == "JobNotFound":
        raise JobNotFound(error)
    if error_type == "ProtocolError":
        raise ProtocolError(error)
    raise ServiceError(error, socket_path=socket_path)


def ping(socket_path, timeout=DEFAULT_TIMEOUT):
    """Daemon liveness + identity: pid, version, resolved worker count."""
    return _checked(request(socket_path, {"op": "ping"}, timeout=timeout),
                    socket_path)


def submit(socket_path, req, timeout=DEFAULT_TIMEOUT):
    """Submit a request dataclass (or payload dict); returns the job row."""
    payload = (req if isinstance(req, dict)
               else ops.request_to_payload(req))
    reply = _checked(
        request(socket_path, {"op": "submit", "request": payload},
                timeout=timeout), socket_path)
    return reply["job"]


def status(socket_path, job_id=None, timeout=DEFAULT_TIMEOUT):
    """Daemon-wide status, or one job's status + telemetry profile."""
    message = {"op": "status"}
    if job_id is not None:
        message["job"] = job_id
    return _checked(request(socket_path, message, timeout=timeout),
                    socket_path)


def result(socket_path, job_id, timeout=DEFAULT_TIMEOUT):
    """One job's summary and result (result is None while unfinished)."""
    return _checked(
        request(socket_path, {"op": "result", "job": job_id},
                timeout=timeout), socket_path)


def shutdown(socket_path, timeout=DEFAULT_TIMEOUT):
    """Ask the daemon to shut down gracefully."""
    return _checked(request(socket_path, {"op": "shutdown"},
                            timeout=timeout), socket_path)


def wait_for(socket_path, job_id, timeout=300.0, poll_interval=0.25):
    """Poll until ``job_id`` finishes; returns its final result reply.

    Raises :class:`ServiceError` when the job is still unfinished after
    ``timeout`` seconds.
    """
    deadline = time.monotonic() + timeout
    while True:
        reply = result(socket_path, job_id)
        if reply["job"]["state"] in (JOB_DONE, JOB_FAILED):
            return reply
        if time.monotonic() >= deadline:
            raise ServiceError(
                f"job {job_id} still {reply['job']['state']!r} after "
                f"{timeout:g}s", socket_path=socket_path)
        time.sleep(poll_interval)
