"""JSON-lines message protocol over a local UNIX socket.

One message is one JSON object on one ``\\n``-terminated line, UTF-8
encoded. Clients are one-shot: connect, send a single request object,
read a single response object, close. Requests carry an ``op`` field
(``ping`` / ``submit`` / ``status`` / ``result`` / ``shutdown``);
responses carry ``ok`` (bool) plus op-specific fields, or
``ok: false`` with ``error`` and the exception class name in
``error_type``. Malformed frames raise
:class:`~repro.common.errors.ProtocolError` carrying the offending
bytes.

The framing is deliberately minimal -- newline-delimited JSON over
``AF_UNIX`` needs no length prefixes, no content negotiation, and is
trivially driven by hand (``nc -U``) when debugging a stuck daemon.
``MAX_FRAME`` bounds a single message so a corrupt peer cannot make the
reader buffer without limit; job results (full CLI output plus the
telemetry profile) fit comfortably.
"""

import json
import socket

from repro.common.errors import ProtocolError, ServiceError

#: Upper bound on one frame's bytes (newline included). Large enough
#: for any job result payload, small enough to cap a runaway peer.
MAX_FRAME = 16 * 1024 * 1024

#: Default client-side socket timeout (seconds). Connect/read beyond
#: this raises ServiceError; job *completion* waits belong in
#: :func:`repro.service.client.wait_for`, not in socket timeouts.
DEFAULT_TIMEOUT = 30.0


def encode_message(payload):
    """One wire frame: compact JSON + newline, UTF-8 bytes."""
    line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_FRAME}-byte "
            "frame limit")
    return data


def write_message(sock, payload):
    """Send one message on a connected socket."""
    sock.sendall(encode_message(payload))


def read_message(sock):
    """Read one newline-terminated JSON message from a socket.

    Raises :class:`ProtocolError` on EOF before a complete line, on a
    frame exceeding :data:`MAX_FRAME`, and on invalid JSON or a
    non-object payload.
    """
    chunks = []
    total = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            if total == 0:
                raise ProtocolError("connection closed before any data")
            raise ProtocolError(
                "connection closed mid-frame",
                frame=b"".join(chunks)[:200].decode("utf-8", "replace"))
        chunks.append(chunk)
        total += len(chunk)
        if total > MAX_FRAME:
            raise ProtocolError(
                f"frame exceeds the {MAX_FRAME}-byte limit")
        if b"\n" in chunk:
            break
    line = b"".join(chunks).split(b"\n", 1)[0]
    return decode_frame(line)


def decode_frame(line):
    """Parse one frame's bytes (no trailing newline) into a dict."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise ProtocolError(
            f"bad frame: {e}",
            frame=line[:200].decode("utf-8", "replace"))
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}",
            frame=line[:200].decode("utf-8", "replace"))
    return payload


def request(socket_path, payload, timeout=DEFAULT_TIMEOUT):
    """One-shot client exchange: connect, send ``payload``, read reply.

    Raises :class:`ServiceError` when the daemon is unreachable (no
    socket, connection refused, timeout) and :class:`ProtocolError` on
    a malformed reply. A reply with ``ok: false`` is returned as-is --
    interpreting daemon-side errors is the caller's job.
    """
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        try:
            sock.connect(socket_path)
        except OSError as e:
            raise ServiceError(
                f"cannot reach daemon at {socket_path!r}: {e}",
                socket_path=socket_path)
        try:
            write_message(sock, payload)
            sock.shutdown(socket.SHUT_WR)
            return read_message(sock)
        except socket.timeout:
            raise ServiceError(
                f"daemon at {socket_path!r} did not reply within "
                f"{timeout:g}s", socket_path=socket_path)
        except OSError as e:
            raise ServiceError(
                f"i/o error talking to daemon at {socket_path!r}: {e}",
                socket_path=socket_path)
    finally:
        sock.close()
