"""Service operations: the CLI command bodies as request/response data.

Each pipeline-running command (``diagnose``, ``corpus``, ``trace``,
``profile``) is a plain frozen request dataclass plus a ``run_*``
function returning an :class:`Outcome` -- exit code, the exact text the
CLI would have printed to stdout/stderr, and a JSON-safe result
payload. The CLI builds a request from its parsed arguments and prints
the outcome; the serve daemon builds the same request from a socket
message and stores the outcome as the job result. Both therefore run
*identical* code, which is what makes daemon round-trip output
byte-identical to a cold CLI invocation (pinned by
``tests/test_service.py``).

Requests are JSON round-trippable (:func:`request_to_payload` /
:func:`request_from_payload`) so they cross the socket and persist in
the jobstore unchanged.

:class:`WarmStateCache` is the daemon's LRU of trained state:
:func:`run_diagnose` consults it keyed by (workload, training seeds,
config fingerprint) and passes the cached :class:`TrainedACT` into
:func:`~repro.core.diagnosis.diagnose_failure`, skipping offline
retraining on a repeat diagnosis. Training is deterministic in the key,
so a warm hit changes wall time and telemetry (``serve.warm_hits``, no
``diagnose.offline_train`` span) but never the report.
"""

import os
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional, Tuple

from repro import telemetry
from repro.common.errors import (
    CheckpointError,
    ProtocolError,
    ReproError,
)
from repro.core.config import ACTConfig
from repro.core.diagnosis import DEFAULT_TRAIN_SEED0, diagnose_failure
from repro.core.offline import TrainedACT
from repro.faults import FaultPlan, Quarantine
from repro.faults.checkpoint import canonical_json
from repro.telemetry import (
    TickClock,
    format_critical_path,
    format_flame,
    format_profile,
    is_event_stream,
    profile_dict,
    read_events_profile,
    read_profile,
    render_openmetrics,
)
from repro.telemetry import selfcost
from repro.trace.trace_io import write_trace
from repro.workloads.framework import run_program
from repro.workloads.registry import (
    all_bug_names,
    all_kernel_names,
    get_bug,
    get_kernel,
    get_workload,
)


@dataclass
class Outcome:
    """What one operation produced: exit code, exact CLI text, payload.

    ``out``/``err`` hold the full stdout/stderr text (newline-joined,
    no trailing newline; empty string = nothing printed). ``payload``
    is a JSON-safe structured summary for service clients.
    """

    rc: int
    out: str = ""
    err: str = ""
    payload: dict = field(default_factory=dict)


def _fail(message):
    """The CLI error shape: message on stderr, exit code 2."""
    return Outcome(rc=2, err=message)


# ---------------------------------------------------------------------
# diagnose
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class DiagnoseRequest:
    """``repro diagnose`` as data (defaults match the CLI flags)."""

    bug: str
    seed: int = 12345
    train_runs: int = 10
    pruning_runs: int = 20
    seq_len: int = 5
    debug_buffer: int = 60
    threshold: float = 0.05
    top: int = 5
    jobs: Optional[int] = None
    fast: bool = True
    engine: str = "nn"
    faults: Optional[str] = None
    policy: Optional[str] = None
    quarantine_report: Optional[str] = None
    checkpoint: Optional[str] = None
    resume: Optional[str] = None

    kind = "diagnose"

    @classmethod
    def from_args(cls, args):
        return cls(bug=args.bug, seed=args.seed,
                   train_runs=args.train_runs,
                   pruning_runs=args.pruning_runs, seq_len=args.seq_len,
                   debug_buffer=args.debug_buffer,
                   threshold=args.threshold, top=args.top, jobs=args.jobs,
                   fast=args.fast, engine=args.engine, faults=args.faults,
                   policy=args.policy,
                   quarantine_report=args.quarantine_report,
                   checkpoint=args.checkpoint, resume=args.resume)


def _parse_policy(req, engine="nn"):
    """Resolve a request's ``--policy SPEC``; (policy, error Outcome).

    The adaptive layer is NN-path-only: an enabled policy with any
    other engine is rejected here with a CLI-shaped error instead of a
    traceback. ``None`` spec means "no policy" (the historical
    pipeline, byte-identical).
    """
    if not req.policy:
        return None, None
    from repro.core.policy import PolicySpec

    try:
        policy = PolicySpec.from_spec(req.policy)
    except ReproError as e:
        return None, _fail(f"error: bad --policy spec: {e}")
    if policy.enabled and engine != "nn":
        return None, _fail(f"error: --policy is NN-path-only; engine "
                           f"{engine!r} does not support it")
    return policy, None


def _quarantine_lines(quarantine, report_path):
    """The quarantine epilogue every pipeline command prints."""
    lines = []
    if len(quarantine):
        lines.append(quarantine.summary())
    if report_path:
        quarantine.write_report(report_path)
        lines.append(f"quarantine report written to {report_path}")
    return lines


def run_diagnose(req, warm=None):
    """Run a full diagnosis; optionally reuse warm trained state."""
    try:
        program = get_bug(req.bug)
    except ReproError as e:
        return _fail(f"error: {e}")
    engine = req.engine or "nn"
    if engine != "nn":
        from repro.common.errors import EngineError
        from repro.engines import registry as engine_registry

        try:
            engine_obj = engine_registry.create(engine)
        except EngineError as e:
            return _fail(f"error: {e}")
        if req.checkpoint or req.resume:
            return _fail(f"error: --engine {engine} does not support "
                         "checkpoints (only the default nn engine is "
                         "checkpointable)")
    config = ACTConfig(seq_len=req.seq_len,
                      debug_buffer=req.debug_buffer,
                      mispred_threshold=req.threshold)
    checkpoint = req.checkpoint
    if req.resume:
        if not os.path.isfile(req.resume):
            return _fail(f"error: checkpoint {req.resume!r} does not exist")
        checkpoint = req.resume
    plan = None
    if req.faults:
        try:
            plan = FaultPlan.from_spec(req.faults)
        except ReproError as e:
            return _fail(f"error: bad --faults spec: {e}")
    policy, policy_err = _parse_policy(req, engine)
    if policy_err is not None:
        return policy_err
    quarantine = None
    if plan is not None or req.quarantine_report:
        quarantine = Quarantine()

    # Warm-state reuse: only when nothing perturbs training (a fault
    # plan can damage training runs; a checkpoint already carries its
    # own trained snapshot). An active --policy does NOT block reuse:
    # sampling gates the failure-run deployment only, never training,
    # so the cached trained state stays exactly right. The key holds
    # everything that shapes the trained state -- failure/pruning seeds
    # deliberately excluded -- plus the engine fingerprint, so two
    # engines on the same workload never share an entry.
    trained = None
    trained_sink = None
    engine_state = None
    engine_state_sink = None
    if warm is not None and plan is None and checkpoint is None:
        if engine == "nn":
            fingerprint = {"engine": "nn"}
        else:
            fingerprint = engine_obj.fingerprint()
        key = warm.key(kind="diagnose", workload=req.bug,
                       config=asdict(config), train_runs=req.train_runs,
                       train_seed0=DEFAULT_TRAIN_SEED0,
                       engine=fingerprint)
        payload = warm.get(key)
        if engine == "nn":
            if payload is not None:
                trained = TrainedACT.from_payload(payload, config)
            else:
                def trained_sink(t, _key=key):
                    warm.put(_key, t.to_payload())
        else:
            if payload is not None:
                engine_state = payload
            else:
                def engine_state_sink(state, _key=key):
                    warm.put(_key, state)

    try:
        report = diagnose_failure(program, config=config, trained=trained,
                                  n_train_runs=req.train_runs,
                                  n_pruning_runs=req.pruning_runs,
                                  failure_seed=req.seed,
                                  fast=req.fast, jobs=req.jobs,
                                  faults=plan, quarantine=quarantine,
                                  checkpoint=checkpoint,
                                  trained_sink=trained_sink,
                                  engine=(engine if engine != "nn"
                                          else None),
                                  engine_state=engine_state,
                                  engine_state_sink=engine_state_sink,
                                  policy=policy)
    except CheckpointError as e:
        return _fail(f"error: {e}")
    if report.engine is not None:
        return _engine_report_outcome(report, req, quarantine)
    lines = [
        f"program          : {report.program}",
        f"failure          : {report.failure_description}",
        f"deps observed    : {report.n_deps} "
        f"({report.n_invalid} flagged invalid)",
        f"debug buffer     : {report.n_debug_entries} entries"
        f"{' (overflowed)' if report.debug_overflowed else ''}",
        f"filtered         : {report.filter_pct:.0f}%",
        f"root cause found : {report.found}"
        + (f" at rank {report.rank}" if report.found else ""),
    ]
    for note in report.notes:
        lines.append(f"note: {note}")
    for i, f in enumerate(report.top(req.top), start=1):
        dep = f.mismatch_dep or f.seq[-1]
        lines.append(
            f"  #{i}: store {dep.store_pc:#x} -> load {dep.load_pc:#x} "
            f"({'inter' if dep.inter_thread else 'intra'}-thread, "
            f"matched {f.matched}, output {f.output:.3f})")
    if quarantine is not None:
        lines.extend(_quarantine_lines(quarantine, req.quarantine_report))
    payload = {
        "program": report.program,
        "failed": report.failed,
        "found": report.found,
        "rank": report.rank,
        "n_deps": report.n_deps,
        "n_invalid": report.n_invalid,
        "filter_pct": float(report.filter_pct),
        "notes": list(report.notes),
    }
    return Outcome(rc=0 if report.found else 1, out="\n".join(lines),
                   payload=payload)


def _engine_report_outcome(report, req, quarantine):
    """CLI text + payload for a non-NN engine's candidate report."""
    lines = [
        f"program          : {report.program}",
        f"engine           : {report.engine}",
        f"failure          : {report.failure_description}",
        f"candidates       : {len(report.candidates)}",
        f"root cause found : {report.found}"
        + (f" at rank {report.rank}" if report.found else ""),
    ]
    if not report.applicable:
        lines.insert(4, "applicable       : False")
    for note in report.notes:
        lines.append(f"note: {note}")
    for i, cand in enumerate(report.candidates[:req.top], start=1):
        hit = ", hit" if cand["hit"] else ""
        lines.append(f"  #{i}: {cand['key']} "
                     f"(score {cand['score']:.3f}{hit})")
    if quarantine is not None:
        lines.extend(_quarantine_lines(quarantine, req.quarantine_report))
    payload = {
        "program": report.program,
        "engine": report.engine,
        "applicable": report.applicable,
        "failed": report.failed,
        "found": report.found,
        "rank": report.rank,
        "n_candidates": len(report.candidates),
        "notes": list(report.notes),
    }
    return Outcome(rc=0 if report.found else 1, out="\n".join(lines),
                   payload=payload)


# ---------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class CorpusRequest:
    """``repro corpus`` as data (defaults match the CLI flags)."""

    seed: int = 7
    size: int = 20
    train_runs: int = 6
    pruning_runs: int = 8
    seq_len: int = 3
    top: int = 5
    jobs: Optional[int] = None
    engine: str = "nn"
    out: Optional[str] = None
    trace_dir: Optional[str] = None
    trace_format: str = "columnar"
    faults: Optional[str] = None
    policy: Optional[str] = None
    quarantine_report: Optional[str] = None
    checkpoint: Optional[str] = None
    resume: Optional[str] = None

    kind = "corpus"

    @classmethod
    def from_args(cls, args):
        return cls(seed=args.seed, size=args.size,
                   train_runs=args.train_runs,
                   pruning_runs=args.pruning_runs, seq_len=args.seq_len,
                   top=args.top, jobs=args.jobs, engine=args.engine,
                   out=args.out, trace_dir=args.trace_dir,
                   trace_format=args.trace_format, faults=args.faults,
                   policy=args.policy,
                   quarantine_report=args.quarantine_report,
                   checkpoint=args.checkpoint, resume=args.resume)


def run_corpus(req):
    """Run the diagnosis-accuracy harness over a generated corpus."""
    from repro.analysis.accuracy import (
        CorpusSpec,
        format_corpus,
        metrics_json,
        run_corpus,
    )

    if req.out:
        out_dir = os.path.dirname(req.out)
        if out_dir and not os.path.isdir(out_dir):
            return _fail(f"error: output directory {out_dir!r} "
                         "does not exist")
    engine = req.engine or "nn"
    if engine != "nn":
        # Corpus checkpoints hold per-program *records* (engine-
        # agnostic, keyed by a fingerprint that includes the engine),
        # so unlike diagnose no checkpoint restriction applies here.
        from repro.common.errors import EngineError
        from repro.engines import registry as engine_registry

        try:
            engine_registry.create(engine)
        except EngineError as e:
            return _fail(f"error: {e}")
    checkpoint = req.checkpoint
    if req.resume:
        if not os.path.isfile(req.resume):
            return _fail(f"error: checkpoint {req.resume!r} does not exist")
        checkpoint = req.resume
    plan = None
    if req.faults:
        try:
            plan = FaultPlan.from_spec(req.faults)
        except ReproError as e:
            return _fail(f"error: bad --faults spec: {e}")
    policy, policy_err = _parse_policy(req, engine)
    if policy_err is not None:
        return policy_err
    quarantine = None
    if plan is not None or req.quarantine_report:
        quarantine = Quarantine()
    spec = CorpusSpec(seed=req.seed, size=req.size, top_k=req.top,
                      n_train_runs=req.train_runs,
                      n_pruning_runs=req.pruning_runs,
                      engine=engine, policy=policy,
                      config=ACTConfig(seq_len=req.seq_len))
    try:
        result = run_corpus(spec, jobs=req.jobs, faults=plan,
                            quarantine=quarantine, checkpoint=checkpoint)
    except CheckpointError as e:
        return _fail(f"error: {e}")
    lines = [format_corpus(result)]
    if req.out:
        out_dir = os.path.dirname(req.out)
        if out_dir and not os.path.isdir(out_dir):
            return _fail(f"error: output directory {out_dir!r} "
                         "does not exist")
        with open(req.out, "w", encoding="utf-8") as f:
            f.write(metrics_json(result))
        lines.append(f"metrics written to {req.out}")
    if req.trace_dir:
        from repro.analysis.accuracy import write_corpus_traces

        os.makedirs(req.trace_dir, exist_ok=True)
        paths = write_corpus_traces(spec, req.trace_dir,
                                    trace_format=req.trace_format)
        lines.append(f"wrote {len(paths)} {req.trace_format} failure "
                     f"traces to {req.trace_dir}")
    if quarantine is not None:
        lines.extend(_quarantine_lines(quarantine, req.quarantine_report))
    return Outcome(rc=0, out="\n".join(lines),
                   payload={"metrics": result.metrics})


# ---------------------------------------------------------------------
# shootout
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class ShootoutRequest:
    """``repro shootout`` as data (defaults match the CLI flags)."""

    seed: int = 7
    size: int = 20
    engines: Tuple[str, ...] = ()
    train_runs: int = 6
    pruning_runs: int = 8
    seq_len: int = 3
    top: int = 5
    jobs: Optional[int] = None
    out: Optional[str] = None
    bench: Optional[str] = None

    kind = "shootout"

    @classmethod
    def from_args(cls, args):
        engines = tuple(
            name.strip() for name in (args.engines or "").split(",")
            if name.strip())
        bench = None if args.no_bench else args.bench
        return cls(seed=args.seed, size=args.size, engines=engines,
                   train_runs=args.train_runs,
                   pruning_runs=args.pruning_runs, seq_len=args.seq_len,
                   top=args.top, jobs=args.jobs, out=args.out,
                   bench=bench)


def run_shootout(req):
    """Race every (selected) engine over the same corpus."""
    from repro.analysis.shootout import (
        ShootoutSpec,
        append_bench,
        format_shootout,
        run_shootout,
        shootout_json,
    )
    from repro.common.errors import EngineError
    from repro.engines import registry as engine_registry

    for path in (req.out, req.bench):
        if path:
            out_dir = os.path.dirname(path)
            if out_dir and not os.path.isdir(out_dir):
                return _fail(f"error: output directory {out_dir!r} "
                             "does not exist")
    for name in req.engines:
        try:
            engine_registry.create(name)
        except EngineError as e:
            return _fail(f"error: {e}")
    spec = ShootoutSpec(seed=req.seed, size=req.size,
                        engines=tuple(req.engines), top_k=req.top,
                        n_train_runs=req.train_runs,
                        n_pruning_runs=req.pruning_runs,
                        config=ACTConfig(seq_len=req.seq_len))
    result = run_shootout(spec, jobs=req.jobs)
    lines = [format_shootout(result)]
    if req.out:
        with open(req.out, "w", encoding="utf-8") as f:
            f.write(shootout_json(result))
        lines.append(f"metrics written to {req.out}")
    if req.bench:
        doc = append_bench(result, req.bench)
        lines.append(f"accuracy trajectory: {req.bench} "
                     f"({len(doc['entries'])} entries)")
    return Outcome(rc=0, out="\n".join(lines),
                   payload={"metrics": result.metrics})


# ---------------------------------------------------------------------
# frontier
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class FrontierRequest:
    """``repro frontier`` as data (defaults match the CLI flags)."""

    seed: int = 7
    size: int = 20
    rates: Tuple[float, ...] = (1.0, 0.75, 0.5, 0.25)
    fifo_sizes: Tuple[int, ...] = (4, 8, 16)
    policy_seed: int = 0
    backoff: bool = True
    tighten: bool = True
    train_runs: int = 6
    pruning_runs: int = 8
    seq_len: int = 3
    top: int = 5
    jobs: Optional[int] = None
    out: Optional[str] = None
    bench: Optional[str] = None

    kind = "frontier"

    @classmethod
    def from_args(cls, args):
        bench = None if args.no_bench else args.bench
        return cls(seed=args.seed, size=args.size,
                   rates=tuple(args.rates), fifo_sizes=tuple(args.fifo_sizes),
                   policy_seed=args.policy_seed, backoff=not args.no_backoff,
                   tighten=not args.no_tighten,
                   train_runs=args.train_runs,
                   pruning_runs=args.pruning_runs, seq_len=args.seq_len,
                   top=args.top, jobs=args.jobs, out=args.out, bench=bench)


def run_frontier(req):
    """Sweep sampling rates x FIFO depths into a Pareto table."""
    from repro.analysis.frontier import (
        FrontierSpec,
        append_bench,
        format_frontier,
        frontier_json,
        run_frontier,
    )

    for path in (req.out, req.bench):
        if path:
            out_dir = os.path.dirname(path)
            if out_dir and not os.path.isdir(out_dir):
                return _fail(f"error: output directory {out_dir!r} "
                             "does not exist")
    try:
        spec = FrontierSpec(seed=req.seed, size=req.size,
                            rates=tuple(req.rates),
                            fifo_sizes=tuple(req.fifo_sizes),
                            policy_seed=req.policy_seed,
                            backoff=req.backoff, tighten=req.tighten,
                            top_k=req.top,
                            n_train_runs=req.train_runs,
                            n_pruning_runs=req.pruning_runs,
                            config=ACTConfig(seq_len=req.seq_len))
    except ReproError as e:
        return _fail(f"error: {e}")
    result = run_frontier(spec, jobs=req.jobs)
    lines = [format_frontier(result)]
    if req.out:
        with open(req.out, "w", encoding="utf-8") as f:
            f.write(frontier_json(result))
        lines.append(f"metrics written to {req.out}")
    if req.bench:
        doc = append_bench(result, req.bench)
        lines.append(f"accuracy trajectory: {req.bench} "
                     f"({len(doc['entries'])} entries)")
    return Outcome(rc=0, out="\n".join(lines),
                   payload={"metrics": result.metrics})


# ---------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class TraceRequest:
    """``repro trace`` as data (record a workload, or convert a file)."""

    program: str
    paths: Tuple[str, ...] = ()
    seed: int = 0
    out: str = "trace.jsonl"
    trace_format: Optional[str] = None
    verify: bool = False

    kind = "trace"

    @classmethod
    def from_args(cls, args):
        return cls(program=args.program, paths=tuple(args.paths),
                   seed=args.seed, out=args.out,
                   trace_format=args.trace_format, verify=args.verify)


def _run_trace_convert(req):
    """``trace convert IN OUT``: re-encode a trace file.

    The output format is the *other* one by default (columnar input ->
    JSON-lines output and vice versa); ``trace_format`` forces it.
    ``verify`` reads both files back and diffs the decoded events.
    """
    from repro.trace import columnar, read_trace

    if len(req.paths) != 2:
        return _fail("error: trace convert needs exactly IN and OUT paths")
    src, dst = req.paths
    if not os.path.isfile(src):
        return _fail(f"error: trace {src!r} does not exist")
    out_dir = os.path.dirname(dst)
    if out_dir and not os.path.isdir(out_dir):
        return _fail(f"error: output directory {out_dir!r} does not exist")
    try:
        run = read_trace(src)
    except ReproError as e:
        return _fail(f"error: {e}")
    fmt = req.trace_format
    if fmt is None:
        fmt = "jsonl" if columnar.is_columnar(src) else "columnar"
    write_trace(run, dst, trace_format=fmt)
    lines = [f"converted {src} -> {dst} ({fmt}, {len(run.events)} events)"]
    if req.verify:
        a = read_trace(src)
        b = read_trace(dst)
        same = (a.events == b.events and a.failed == b.failed
                and a.n_threads == b.n_threads and a.seed == b.seed)
        if not same:
            return Outcome(rc=1, out="\n".join(lines),
                           err="error: verify failed: decoded traces "
                               "differ")
        lines.append(f"verified: both files decode to {len(a.events)} "
                     "identical events")
    return Outcome(rc=0, out="\n".join(lines),
                   payload={"format": fmt, "n_events": len(run.events)})


def run_trace(req):
    """Record a workload trace, or convert one between formats."""
    if req.program == "convert":
        return _run_trace_convert(req)
    if req.paths:
        return _fail("error: unexpected extra arguments "
                     f"{' '.join(req.paths)!r} (paths are only for "
                     "'trace convert')")
    out_dir = os.path.dirname(req.out)
    if out_dir and not os.path.isdir(out_dir):
        return _fail(f"error: output directory {out_dir!r} does not exist")
    try:
        program = get_workload(req.program)
    except ReproError as e:
        return _fail(f"error: {e}")
    run = run_program(program, seed=req.seed)
    write_trace(run, req.out, trace_format=req.trace_format)
    return Outcome(
        rc=0,
        out=f"wrote {len(run.events)} events "
            f"({run.n_threads} threads, failed={run.failed}) to {req.out}",
        payload={"n_events": len(run.events), "n_threads": run.n_threads,
                 "failed": run.failed, "out": req.out})


# ---------------------------------------------------------------------
# profile
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class ProfileRequest:
    """``repro profile`` as data (run profiles and saved-file renders)."""

    programs: Tuple[str, ...] = ()
    seed: int = 1
    train_runs: int = 6
    pruning_runs: int = 8
    load: Optional[str] = None
    flame: bool = False
    critical_path: bool = False
    openmetrics: bool = False
    tick_clock: bool = False

    kind = "profile"

    @classmethod
    def from_args(cls, args):
        return cls(programs=tuple(args.programs), seed=args.seed,
                   train_runs=args.train_runs,
                   pruning_runs=args.pruning_runs, load=args.load,
                   flame=args.flame, critical_path=args.critical_path,
                   openmetrics=args.openmetrics,
                   tick_clock=args.tick_clock)


def _bug_run_profile(name, req):
    """Diagnose ``name`` under a fresh registry; return the profile dict."""
    program = get_bug(name)
    registry = telemetry.Registry(
        clock=TickClock() if req.tick_clock else None)
    with telemetry.use_registry(registry):
        report = diagnose_failure(program,
                                  n_train_runs=req.train_runs,
                                  n_pruning_runs=req.pruning_runs)
    meta = {"program": name, "found": report.found}
    if report.rank is not None:
        meta["rank"] = report.rank
    return profile_dict(
        registry, meta=meta, self_overhead=True,
        calibration=selfcost.PINNED_CALIBRATION if req.tick_clock else None)


def _rendered_profile(profile, req, title=None):
    """The requested views of ``profile`` as text chunks."""
    chunks = []
    if req.flame:
        chunks.append(format_flame(profile.get("spans") or []))
    if req.critical_path:
        chunks.append(format_critical_path(profile.get("spans") or []))
    if req.openmetrics:
        chunks.append(render_openmetrics(profile))
    if not chunks:
        chunks.append(format_profile(profile, title=title))
    return chunks


def run_profile(req):
    """Render run profiles (fresh diagnoses, kernels, or saved files)."""
    if req.load:
        if not os.path.isfile(req.load):
            return _fail(f"error: profile {req.load!r} does not exist")
        profile = (read_events_profile(req.load)
                   if is_event_stream(req.load)
                   else read_profile(req.load))
        return Outcome(rc=0,
                       out="\n".join(_rendered_profile(profile, req)))
    from repro.workloads.generator import parse_generated_name

    bug_names = set(all_bug_names())
    names = list(req.programs) or all_kernel_names()
    comm_profiles = []
    chunks = []
    for name in names:
        if name in bug_names or parse_generated_name(name) is not None:
            profile = _bug_run_profile(name, req)
            if chunks:
                chunks.append("")
            chunks.extend(_rendered_profile(profile, req,
                                            title=f"run profile: {name}"))
        else:
            from repro.sim.trace_stats import profile_run

            program = get_kernel(name)
            run = run_program(program, seed=req.seed)
            comm_profiles.append(profile_run(run, name=name))
    if comm_profiles:
        from repro.sim.trace_stats import profile_table

        if chunks:
            chunks.append("")
        chunks.append(profile_table(comm_profiles))
    return Outcome(rc=0, out="\n".join(chunks))


# ---------------------------------------------------------------------
# request (de)serialisation and dispatch
# ---------------------------------------------------------------------

REQUEST_TYPES = {
    "diagnose": DiagnoseRequest,
    "corpus": CorpusRequest,
    "shootout": ShootoutRequest,
    "frontier": FrontierRequest,
    "trace": TraceRequest,
    "profile": ProfileRequest,
}

_RUNNERS = {
    "diagnose": run_diagnose,
    "corpus": run_corpus,
    "shootout": run_shootout,
    "frontier": run_frontier,
    "trace": run_trace,
    "profile": run_profile,
}


def request_to_payload(req):
    """JSON-safe wire/jobstore form of a request."""
    return {"kind": req.kind, "args": asdict(req)}


def request_from_payload(payload):
    """Inverse of :func:`request_to_payload`; validates kind and fields."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"job request must be an object, "
                            f"got {type(payload).__name__}")
    kind = payload.get("kind")
    cls = REQUEST_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown job kind {kind!r} (expected one of "
                            f"{sorted(REQUEST_TYPES)})")
    args = payload.get("args")
    if not isinstance(args, dict):
        raise ProtocolError(f"job args must be an object, "
                            f"got {type(args).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(args) - known)
    if unknown:
        raise ProtocolError(f"unknown {kind} request fields: {unknown}")
    args = {key: (tuple(value) if isinstance(value, list) else value)
            for key, value in args.items()}
    try:
        return cls(**args)
    except TypeError as e:
        raise ProtocolError(f"bad {kind} request: {e}")


def run_request(req, warm=None, default_jobs=None):
    """Dispatch any request to its runner.

    ``default_jobs`` fills an unset ``jobs`` field (the daemon's
    ``--jobs``); parallelism never changes results, so this only
    affects wall time. ``warm`` is the daemon's
    :class:`WarmStateCache` (diagnose only).
    """
    if (default_jobs is not None and hasattr(req, "jobs")
            and req.jobs is None):
        req = replace(req, jobs=default_jobs)
    if req.kind == "diagnose":
        return run_diagnose(req, warm=warm)
    return _RUNNERS[req.kind](req)


# ---------------------------------------------------------------------
# warm-state cache
# ---------------------------------------------------------------------

class WarmStateCache:
    """LRU cache of trained state (:meth:`TrainedACT.to_payload` dicts
    for the NN engine; ``Predictor.serialize`` payloads for the rest).

    Keys are the canonical JSON of everything that shapes training:
    workload name, training seed range, config fingerprint, and the
    engine fingerprint (so e.g. ``nn`` and ``pset`` diagnoses of the
    same workload occupy separate entries). The daemon
    keeps one instance for its whole life, so a repeat diagnosis of the
    same (workload, seeds, config) skips offline retraining entirely --
    observable as ``serve.warm_hits`` in the job's telemetry profile
    and as the absence of a ``diagnose.offline_train`` span, never as a
    different report (training is deterministic in the key).
    """

    def __init__(self, capacity=8):
        if capacity < 1:
            raise ReproError(f"warm cache capacity must be >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(**parts):
        """Canonical cache key from keyword identity parts."""
        return canonical_json(parts)

    def get(self, key):
        """Cached payload for ``key`` (None on miss); counts the lookup."""
        tele = telemetry.get_registry()
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            tele.inc("serve.warm_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        tele.inc("serve.warm_hits")
        return entry

    def put(self, key, payload):
        """Insert/refresh ``key``; evicts least-recently-used beyond
        capacity."""
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.get_registry().inc("serve.warm_evictions")

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def stats(self):
        """JSON-safe cache statistics (part of the daemon status)."""
        return {"size": len(self._entries), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
