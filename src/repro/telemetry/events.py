"""Flight recorder: a bounded event-level record of what a run did.

Where the metric registry keeps *aggregates* and the span tree keeps
*phases*, the flight recorder keeps the raw sequence: span open/close,
counter deltas, fault and quarantine events, and periodic samples
(events/sec, FIFO stalls) from the simulator and scheduler. It is the
ARGUS-style always-on stream the adaptive layers consume -- and, like a
real flight recorder, it is bounded: a ring buffer keeps the most
recent ``capacity`` events and counts what it had to drop.

Attach one to a recording registry
(:meth:`~repro.telemetry.registry.Registry.attach_recorder`) or from
the CLI with ``--events PATH`` on any command. The on-disk format is
JSONL:

- a header record ``{"type": "meta", "meta": {..., "format":
  "flight-recorder-v1"}}``,
- one record per event, oldest first -- every event carries ``t``
  (seconds from the registry clock) and ``type``,
- a footer record with ``n_recorded`` / ``n_dropped`` totals.

Flushes are atomic (write to a temp file, then ``os.replace``), so a
reader never observes a half-written stream. :func:`events_to_profile`
reconstructs a run profile (span tree + counter totals) from a stream,
which is how ``repro profile --load events.jsonl --flame`` renders a
flame graph straight from a flight recording.
"""

import json
import os
from collections import deque

from repro.telemetry.spans import STATUS_OK, STATUS_UNCLOSED

FORMAT = "flight-recorder-v1"
DEFAULT_CAPACITY = 65536
SPAN_CAPACITY = 16384
_SPAN_KINDS = ("span_open", "span_close")


class FlightRecorder:
    """Bounded in-memory event ring with atomic JSONL flush.

    Span open/close events live in their own reservation
    (``span_capacity``) so a flood of high-rate counter deltas or
    simulator samples can never evict the trace skeleton the flame and
    critical-path renderers need; everything else shares the main ring.
    ``events()`` merges both back into recording order.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY, span_capacity=SPAN_CAPACITY):
        self.capacity = int(capacity)
        self.span_capacity = int(span_capacity)
        self._ring = deque(maxlen=self.capacity)
        self._span_ring = deque(maxlen=self.span_capacity)
        self._seq = 0
        self.n_recorded = 0

    @property
    def n_dropped(self):
        return self.n_recorded - len(self._ring) - len(self._span_ring)

    def record(self, type_, t, **fields):
        """Append one event (oldest events fall off the ring)."""
        event = {"t": t, "type": type_}
        event.update(fields)
        self._append(event)

    def _append(self, event):
        self._seq += 1
        ring = (self._span_ring if event["type"] in _SPAN_KINDS
                else self._ring)
        ring.append((self._seq, event))
        self.n_recorded += 1

    def extend(self, events):
        """Adopt events shipped back from a pool worker, in order."""
        for event in events:
            self._append(event)

    def events(self):
        """The retained events in recording order (plain dicts)."""
        merged = sorted(list(self._ring) + list(self._span_ring))
        return [event for _seq, event in merged]

    def flush(self, path, meta=None):
        """Atomically write header + events + footer as JSONL."""
        path = str(path)
        header = {"format": FORMAT, "capacity": self.capacity}
        header.update(meta or {})
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "meta", "meta": header},
                                sort_keys=True, default=str) + "\n")
            for event in self.events():
                fh.write(json.dumps(event, sort_keys=True, default=str)
                        + "\n")
            fh.write(json.dumps({"type": "footer",
                                 "n_recorded": self.n_recorded,
                                 "n_dropped": self.n_dropped},
                                sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path


def is_event_stream(path):
    """True when ``path`` holds a flight-recorder stream (vs a profile)."""
    try:
        with open(str(path), "r", encoding="utf-8") as fh:
            first = fh.readline().strip()
        record = json.loads(first)
    except (OSError, ValueError):
        return False
    return (record.get("type") == "meta"
            and record.get("meta", {}).get("format") == FORMAT)


def read_events(path):
    """Read a flushed stream; returns ``(meta, events, footer)``."""
    meta, events, footer = {}, [], {}
    with open(str(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                meta.update(record.get("meta", {}))
            elif kind == "footer":
                footer = record
            else:
                events.append(record)
    return meta, events, footer


def events_to_profile(meta, events):
    """Rebuild a run-profile dict (spans + counters) from an event stream.

    Span trees are reconstructed from ``span_open``/``span_close``
    pairs via their ids; a span whose close event was dropped (or whose
    worker died before closing) is kept with status ``unclosed``.
    Counter totals are the sum of the ``counter`` deltas that survived
    the ring. Gauges take the last ``gauge`` event per name.
    """
    spans = {}          # id -> span dict
    order = []          # ids in open order
    counters = {}
    gauges = {}
    last_t = 0.0
    for event in events:
        t = event.get("t", 0.0)
        last_t = max(last_t, t)
        kind = event["type"]
        if kind == "span_open":
            span = {"name": event["name"], "id": event["id"],
                    "start_s": t, "duration_s": 0.0,
                    "status": STATUS_UNCLOSED, "children": []}
            if event.get("parent") is not None:
                span["parent"] = event["parent"]
            spans[event["id"]] = span
            order.append(event["id"])
        elif kind == "span_close":
            span = spans.get(event["id"])
            if span is None:
                # The open event fell off the ring; synthesise a stub.
                span = {"name": event["name"], "id": event["id"],
                        "start_s": t - event.get("duration_s", 0.0),
                        "duration_s": 0.0, "children": []}
                spans[event["id"]] = span
                order.append(event["id"])
            span["duration_s"] = event.get("duration_s", 0.0)
            status = event.get("status", STATUS_OK)
            if status == STATUS_OK:
                span.pop("status", None)
            else:
                span["status"] = status
        elif kind == "counter":
            name = event["name"]
            counters[name] = counters.get(name, 0) + event.get("delta", 1)
        elif kind == "gauge":
            gauges[event["name"]] = event.get("value")
    roots = []
    for span_id in order:
        span = spans[span_id]
        if span.get("status") == STATUS_UNCLOSED:
            # Closed-at-flush: the recorder saw the open but never the
            # close; give it the observable extent of the stream.
            span["duration_s"] = max(0.0, last_t - span["start_s"])
        parent = spans.get(span.get("parent"))
        if parent is not None:
            parent["children"].append(span)
        else:
            roots.append(span)
    for span in spans.values():
        if not span["children"]:
            span.pop("children", None)
    return {"meta": dict(meta), "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())), "histograms": {},
            "spans": roots}


def read_events_profile(path):
    """:func:`read_events` + :func:`events_to_profile` in one call."""
    meta, events, _footer = read_events(path)
    return events_to_profile(meta, events)
