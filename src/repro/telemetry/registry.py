"""Metric registry: counters, gauges and histograms by dotted name.

The registry is the cheap always-on half of the telemetry layer (the
ARGUS/AFETM shape: counters that cost nothing to keep, profiles that
are exported on demand). Instrumented code never constructs metric
objects itself; it calls :meth:`Registry.inc` / :meth:`Registry.observe`
/ :meth:`Registry.set_gauge` with a name, and the registry aggregates
across every instance that reports under that name (all ACT modules'
invalid counters land in one ``act.invalid_predictions``).

:class:`NullRegistry` is the disabled mode: every mutator is a no-op
and ``enabled`` is False so hot paths can skip whole instrumentation
blocks with one attribute check. The default process-wide registry
(see :mod:`repro.telemetry`) is a NullRegistry, which is what keeps
telemetry zero-cost for paper-fidelity runs.
"""

from repro.telemetry import catalog as _catalog
from repro.telemetry.spans import NULL_SPAN_CONTEXT, SpanTracer


class Counter:
    """Monotonic accumulator (int or float, e.g. stall cycles)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n


class Gauge:
    """Last-value metric (e.g. events/sec of the most recent run)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value


class Histogram:
    """Streaming distribution: count/sum/min/max plus value buckets.

    Integer observations bucket exactly (FIFO occupancies are small
    ints); floats are bucketed at 1e-4 resolution (misprediction rates,
    losses), keeping memory bounded without losing the shape.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = {}

    @staticmethod
    def _bucket(value):
        if isinstance(value, int):
            return value
        return round(value, 4)

    def observe(self, value):
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        b = self._bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def to_dict(self):
        return {"count": self.count, "sum": self.sum, "mean": self.mean,
                "min": self.min, "max": self.max,
                "buckets": {str(k): v for k, v in sorted(self.buckets.items(),
                                                         key=lambda kv: float(kv[0]))}}


class Registry:
    """One run's worth of metrics and spans."""

    enabled = True

    def __init__(self, preregister_catalog=True):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self.tracer = SpanTracer()
        self._preregister = preregister_catalog
        if preregister_catalog:
            self._register_catalog()

    def _register_catalog(self):
        # Declared metrics always appear in exports, even at zero --
        # profile consumers get a stable key set.
        for spec in _catalog.CATALOG:
            if spec.kind == _catalog.COUNTER:
                self._counters[spec.name] = Counter(spec.name)
            elif spec.kind == _catalog.GAUGE:
                self._gauges[spec.name] = Gauge(spec.name)
            elif spec.kind == _catalog.HISTOGRAM:
                self._histograms[spec.name] = Histogram(spec.name)

    # -- metric access -------------------------------------------------

    def counter(self, name):
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name):
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name):
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    # -- mutators (the only calls instrumentation sites make) ----------

    def inc(self, name, n=1):
        self.counter(name).inc(n)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    def span(self, name, **attrs):
        return self.tracer.span(name, **attrs)

    # -- lifecycle -----------------------------------------------------

    @property
    def spans(self):
        """Root spans recorded so far (each a tree)."""
        return list(self.tracer.roots)

    def reset(self):
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.tracer.reset()
        if self._preregister:
            self._register_catalog()

    def snapshot(self):
        """Plain-dict view of everything recorded (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
            "spans": [s.to_dict() for s in self.tracer.roots],
        }

    @staticmethod
    def _parse_bucket_key(key):
        # to_dict stringifies bucket keys; int observations must come
        # back as ints (5 and 5.0 hash alike, but "5" round-trips as 5).
        try:
            return int(key)
        except ValueError:
            return float(key)

    def merge_snapshot(self, snap):
        """Fold a :meth:`snapshot` from another registry into this one.

        The parallel executor's pool workers record into fresh child
        registries and ship snapshots back; merging them in work order
        reproduces the exact counter and histogram totals a serial run
        would have accumulated. Gauges take the incoming value (last
        writer wins, as in serial execution); spans are not merged --
        worker-side spans would interleave meaninglessly with the
        parent's open span stack.
        """
        for name, value in snap.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, hd in snap.get("histograms", {}).items():
            if not hd.get("count"):
                continue
            h = self.histogram(name)
            h.count += hd["count"]
            h.sum += hd["sum"]
            for bound in ("min", "max"):
                v = hd.get(bound)
                if v is None:
                    continue
                cur = getattr(h, bound)
                if cur is None or (v < cur if bound == "min" else v > cur):
                    setattr(h, bound, v)
            for key, n in hd.get("buckets", {}).items():
                b = self._parse_bucket_key(key)
                h.buckets[b] = h.buckets.get(b, 0) + n


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n=1):
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value):
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value):
        pass


class NullRegistry(Registry):
    """Disabled registry: records nothing, shared no-op handles."""

    enabled = False

    def __init__(self):
        super().__init__(preregister_catalog=False)
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name):
        return self._null_counter

    def gauge(self, name):
        return self._null_gauge

    def histogram(self, name):
        return self._null_histogram

    def inc(self, name, n=1):
        pass

    def set_gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def merge_snapshot(self, snap):
        pass

    def span(self, name, **attrs):
        return NULL_SPAN_CONTEXT
