"""Metric registry: counters, gauges and histograms by dotted name.

The registry is the cheap always-on half of the telemetry layer (the
ARGUS/AFETM shape: counters that cost nothing to keep, profiles that
are exported on demand). Instrumented code never constructs metric
objects itself; it calls :meth:`Registry.inc` / :meth:`Registry.observe`
/ :meth:`Registry.set_gauge` with a name, and the registry aggregates
across every instance that reports under that name (all ACT modules'
invalid counters land in one ``act.invalid_predictions``).

:class:`NullRegistry` is the disabled mode: every mutator is a no-op
and ``enabled`` is False so hot paths can skip whole instrumentation
blocks with one attribute check. The default process-wide registry
(see :mod:`repro.telemetry`) is a NullRegistry, which is what keeps
telemetry zero-cost for paper-fidelity runs.
"""

from repro.telemetry import catalog as _catalog
from repro.telemetry import clock as _clock
from repro.telemetry.spans import NULL_SPAN_CONTEXT, SpanTracer


class Counter:
    """Monotonic accumulator (int or float, e.g. stall cycles)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n


class Gauge:
    """Last-value metric (e.g. events/sec of the most recent run)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value


class Histogram:
    """Streaming distribution: count/sum/min/max plus value buckets.

    Integer observations bucket exactly (FIFO occupancies are small
    ints); floats are bucketed at 1e-4 resolution (misprediction rates,
    losses), keeping memory bounded without losing the shape.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = {}

    @staticmethod
    def _bucket(value):
        if isinstance(value, int):
            return value
        return round(value, 4)

    def observe(self, value):
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        b = self._bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def to_dict(self):
        return {"count": self.count, "sum": self.sum, "mean": self.mean,
                "min": self.min, "max": self.max,
                "buckets": {str(k): v for k, v in sorted(self.buckets.items(),
                                                         key=lambda kv: float(kv[0]))}}


class Registry:
    """One run's worth of metrics, spans and (optionally) an event feed.

    ``clock`` supplies every timestamp the registry and its tracer
    record (``time.perf_counter`` by default; inject a
    :class:`~repro.telemetry.clock.TickClock` for byte-stable exports).
    Attaching a :class:`~repro.telemetry.events.FlightRecorder` turns
    every counter increment, gauge set and span open/close into an
    event in the bounded stream.
    """

    enabled = True

    def __init__(self, preregister_catalog=True, clock=None):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self.clock = clock if clock is not None else _clock.WALL
        self.tracer = SpanTracer(clock=self.clock)
        self.recorder = None
        self._n_inc = 0
        self._n_gauge = 0
        self._n_observe = 0
        self._preregister = preregister_catalog
        if preregister_catalog:
            self._register_catalog()

    def attach_recorder(self, recorder):
        """Feed every mutation into ``recorder`` (the flight recorder)."""
        self.recorder = recorder
        self.tracer.recorder = recorder
        return recorder

    def _register_catalog(self):
        # Declared metrics always appear in exports, even at zero --
        # profile consumers get a stable key set.
        for spec in _catalog.CATALOG:
            if spec.kind == _catalog.COUNTER:
                self._counters[spec.name] = Counter(spec.name)
            elif spec.kind == _catalog.GAUGE:
                self._gauges[spec.name] = Gauge(spec.name)
            elif spec.kind == _catalog.HISTOGRAM:
                self._histograms[spec.name] = Histogram(spec.name)

    # -- metric access -------------------------------------------------

    def counter(self, name):
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name):
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name):
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    # -- mutators (the only calls instrumentation sites make) ----------

    def inc(self, name, n=1):
        self._n_inc += 1
        self.counter(name).inc(n)
        if self.recorder is not None:
            self.recorder.record("counter", self.clock(), name=name, delta=n)

    def set_gauge(self, name, value):
        self._n_gauge += 1
        self.gauge(name).set(value)
        if self.recorder is not None:
            self.recorder.record("gauge", self.clock(), name=name,
                                 value=value)

    def observe(self, name, value):
        # Histogram observations aggregate only: they are the highest-
        # rate mutator (per-dependence occupancies), so they never
        # stream individually into the flight recorder.
        self._n_observe += 1
        self.histogram(name).observe(value)

    def span(self, name, **attrs):
        return self.tracer.span(name, **attrs)

    def event(self, type_, **fields):
        """Record an ad-hoc flight-recorder event (no-op when detached)."""
        if self.recorder is not None:
            self.recorder.record(type_, self.clock(), **fields)

    def op_counts(self):
        """How many telemetry calls this registry serviced, per kind.

        The input to the self-overhead model (:mod:`.selfcost`):
        ``overhead = sum(count[kind] * calibrated_ns[kind])``.
        """
        return {"inc": self._n_inc, "gauge": self._n_gauge,
                "observe": self._n_observe, "span": self.tracer.n_spans,
                "event": (self.recorder.n_recorded
                          if self.recorder is not None else 0)}

    def merge_ops(self, ops):
        """Fold a worker registry's mutator counts into this one.

        Span and event counts are excluded: adopting worker spans
        (:meth:`~repro.telemetry.spans.SpanTracer.attach`) and worker
        events (:meth:`~repro.telemetry.events.FlightRecorder.extend`)
        already advances those totals.
        """
        self._n_inc += ops.get("inc", 0)
        self._n_gauge += ops.get("gauge", 0)
        self._n_observe += ops.get("observe", 0)

    # -- lifecycle -----------------------------------------------------

    @property
    def spans(self):
        """Root spans recorded so far (each a tree)."""
        return list(self.tracer.roots)

    def reset(self):
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.tracer.reset()
        self._n_inc = self._n_gauge = self._n_observe = 0
        if self._preregister:
            self._register_catalog()

    def snapshot(self):
        """Plain-dict view of everything recorded (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
            "spans": [s.to_dict() for s in self.tracer.roots],
        }

    @staticmethod
    def _parse_bucket_key(key):
        # to_dict stringifies bucket keys; int observations must come
        # back as ints (5 and 5.0 hash alike, but "5" round-trips as 5).
        try:
            return int(key)
        except ValueError:
            return float(key)

    def merge_snapshot(self, snap):
        """Fold a :meth:`snapshot` from another registry into this one.

        The parallel executor's pool workers record into fresh child
        registries and ship snapshots back; merging them in work order
        reproduces the exact counter and histogram totals a serial run
        would have accumulated. Gauges take the incoming value (last
        writer wins, as in serial execution); spans are not merged --
        worker-side spans would interleave meaninglessly with the
        parent's open span stack.
        """
        for name, value in snap.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, hd in snap.get("histograms", {}).items():
            if not hd.get("count"):
                continue
            h = self.histogram(name)
            h.count += hd["count"]
            h.sum += hd["sum"]
            for bound in ("min", "max"):
                v = hd.get(bound)
                if v is None:
                    continue
                cur = getattr(h, bound)
                if cur is None or (v < cur if bound == "min" else v > cur):
                    setattr(h, bound, v)
            for key, n in hd.get("buckets", {}).items():
                b = self._parse_bucket_key(key)
                h.buckets[b] = h.buckets.get(b, 0) + n


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n=1):
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value):
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value):
        pass


class NullRegistry(Registry):
    """Disabled registry: records nothing, shared no-op handles."""

    enabled = False

    def __init__(self):
        super().__init__(preregister_catalog=False)
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name):
        return self._null_counter

    def gauge(self, name):
        return self._null_gauge

    def histogram(self, name):
        return self._null_histogram

    def inc(self, name, n=1):
        pass

    def set_gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def event(self, type_, **fields):
        pass

    def merge_snapshot(self, snap):
        pass

    def merge_ops(self, ops):
        pass

    def attach_recorder(self, recorder):
        # Telemetry is off: the recorder is not attached, nothing streams.
        return None

    def span(self, name, **attrs):
        return NULL_SPAN_CONTEXT
