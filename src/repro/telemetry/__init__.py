"""Telemetry: counters, spans and exportable run profiles for ACT.

ACT's pitch is visibility into production runs; this package gives the
reproduction the same property. Every layer (ACT module, buffers,
offline training, diagnosis, timing simulator, workload scheduler)
reports into a process-wide *active registry*:

- **counters/gauges/histograms** (:mod:`repro.telemetry.registry`) --
  cheap always-on aggregates: invalid predictions, mode switches, FIFO
  stalls, debug-buffer overflows, cache hits/misses, ...
- **spans** (:mod:`repro.telemetry.spans`) -- nested wall-time phases:
  one ``diagnose`` root decomposes into offline training, the failure
  run, deployment, pruning runs and post-processing.
- **run profiles** (:mod:`repro.telemetry.export`) -- JSON/JSONL export
  of a registry snapshot, and table rendering for humans.

The default active registry is a :class:`NullRegistry`: every mutator
is a no-op and ``enabled`` is False, so instrumentation is zero-cost
and results are byte-identical to an uninstrumented build. Enable it
per run::

    from repro import telemetry

    with telemetry.use_registry(telemetry.Registry()) as reg:
        diagnose_failure(program)
    telemetry.write_profile(reg, "profile.json")

or process-wide with :func:`install` (what ``--telemetry`` does).
Instrumented code fetches the registry at call time
(``telemetry.get_registry()``), so installation order never matters;
hot paths guard multi-metric blocks with ``if tele.enabled``.
"""

from contextlib import contextmanager

from repro.telemetry.catalog import CATALOG, MetricSpec, format_catalog
from repro.telemetry.clock import WALL, TickClock, clock_from_spec, clock_spec
from repro.telemetry.events import (
    FlightRecorder,
    events_to_profile,
    is_event_stream,
    read_events,
    read_events_profile,
)
from repro.telemetry.export import (
    format_profile,
    profile_dict,
    read_profile,
    write_profile,
)
from repro.telemetry.flame import (
    critical_path,
    folded_stacks,
    format_critical_path,
    format_flame,
)
from repro.telemetry.openmetrics import render_openmetrics
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
)
from repro.telemetry.spans import Span, SpanContext, SpanTracer

__all__ = [
    "CATALOG", "MetricSpec", "format_catalog",
    "WALL", "TickClock", "clock_from_spec", "clock_spec",
    "FlightRecorder", "events_to_profile", "is_event_stream",
    "read_events", "read_events_profile",
    "Counter", "Gauge", "Histogram", "NullRegistry", "Registry",
    "Span", "SpanContext", "SpanTracer",
    "critical_path", "folded_stacks", "format_critical_path",
    "format_flame", "render_openmetrics",
    "format_profile", "profile_dict", "read_profile", "write_profile",
    "enabled", "get_registry", "install", "set_registry", "use_registry",
]

_NULL = NullRegistry()
_active = _NULL


def get_registry():
    """The process-wide active registry (a NullRegistry when disabled)."""
    return _active


def set_registry(registry):
    """Install ``registry`` (None disables); returns the previous one."""
    global _active
    previous = _active
    _active = _NULL if registry is None else registry
    return previous


def enabled():
    """True when the active registry records anything."""
    return _active.enabled


def install():
    """Create, install and return a fresh recording :class:`Registry`."""
    registry = Registry()
    set_registry(registry)
    return registry


@contextmanager
def use_registry(registry):
    """Scoped installation: restore the previous registry on exit."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
