"""Nested wall-time spans (the tracing half of the telemetry layer).

A span is one timed phase of a run -- "diagnose.offline_train",
"diagnose.failure_run" -- and spans nest: entering a span while another
is open records it as a child, so one diagnosis produces a tree whose
root wall time decomposes into the phases the paper's workflow names
(Figure 1: offline training, the failure run, deployment, pruning runs,
post-processing).

Spans deliberately measure *wall time only*. Everything countable
(dependences, invalids, stalls) lives in the metric registry; the span
tree answers "where did the time go", the metrics answer "what
happened".
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed phase; ``duration`` is filled when the span closes."""

    name: str
    attrs: dict = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    children: list = field(default_factory=list)

    def to_dict(self):
        out = {"name": self.name, "duration_s": self.duration}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, d):
        return cls(name=d["name"], attrs=dict(d.get("attrs", {})),
                   duration=float(d.get("duration_s", 0.0)),
                   children=[cls.from_dict(c)
                             for c in d.get("children", ())])

    def walk(self, depth=0):
        """Yield (depth, span) over the subtree, pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


class SpanTracer:
    """Collects a forest of spans via a context-manager API."""

    def __init__(self):
        self.roots = []
        self._stack = []

    @contextmanager
    def span(self, name, **attrs):
        span = Span(name=name, attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span.start = time.perf_counter()
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span.start
            self._stack.pop()

    def reset(self):
        self.roots = []
        self._stack = []


class _NullSpanContext:
    """Reusable no-op context manager; what a disabled registry hands out."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc):
        return False


NULL_SPAN = Span(name="null")
NULL_SPAN_CONTEXT = _NullSpanContext()
