"""Structured wall-time spans (tracing v2).

A span is one timed phase of a run -- "diagnose.offline_train",
"diagnose.failure_run" -- and spans nest: entering a span while another
is open records it as a child, so one diagnosis produces a tree whose
root wall time decomposes into the phases the paper's workflow names
(Figure 1: offline training, the failure run, deployment, pruning runs,
post-processing).

v2 makes spans *structured*: every span carries a stable
``(trace_id, span_id, parent_id)`` triple and a status, timestamps come
from the owning registry's injectable clock (:mod:`.clock`), and a
:class:`SpanContext` can cross the ``ProcessPoolExecutor`` boundary so
pool workers record spans that stitch back under the coordinator's
dispatching span -- a parallel diagnosis yields one coherent trace
tree, not per-worker snapshots.

Identifiers are deterministic, never random: a tracer numbers its
spans ``s1, s2, ...`` in creation order, and a worker-side tracer
prefixes them with a scope derived from the task's *work key* (e.g.
``w104.s1``) -- the same identity quarantine uses -- so IDs are
reproducible across reruns regardless of which OS process executed the
task.

Spans deliberately measure *wall time only*. Everything countable
(dependences, invalids, stalls) lives in the metric registry; the span
tree answers "where did the time go", the metrics answer "what
happened".
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_ORPHANED = "orphaned"   # worker died while the span was open
STATUS_UNCLOSED = "unclosed"   # open at flush time (flight recorder)


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of an open span.

    This is what crosses a process boundary: the worker parents its
    root spans under ``span_id`` and stamps them with ``trace_id``.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed phase; ``duration`` is filled when the span closes."""

    name: str
    attrs: dict = field(default_factory=dict)
    span_id: str = ""
    parent_id: Optional[str] = None
    trace_id: str = ""
    start: float = 0.0
    duration: float = 0.0
    status: str = STATUS_OK
    children: list = field(default_factory=list)

    def context(self):
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self):
        out = {"name": self.name, "id": self.span_id,
               "start_s": self.start, "duration_s": self.duration}
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.status != STATUS_OK:
            out["status"] = self.status
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, d):
        return cls(name=d["name"], attrs=dict(d.get("attrs", {})),
                   span_id=d.get("id", ""), parent_id=d.get("parent"),
                   trace_id=d.get("trace_id", ""),
                   start=float(d.get("start_s", 0.0)),
                   duration=float(d.get("duration_s", 0.0)),
                   status=d.get("status", STATUS_OK),
                   children=[cls.from_dict(c)
                             for c in d.get("children", ())])

    def walk(self, depth=0):
        """Yield (depth, span) over the subtree, pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


class SpanTracer:
    """Collects a forest of spans via a context-manager API.

    ``clock`` supplies timestamps (``time.perf_counter`` by default; a
    :class:`~repro.telemetry.clock.TickClock` makes them deterministic).
    ``recorder``, when attached, receives a ``span_open`` /
    ``span_close`` event pair per span (the flight-recorder feed).
    """

    def __init__(self, clock=None, trace_id="t0", scope="",
                 remote_parent=None):
        self.clock = clock or time.perf_counter
        self.trace_id = trace_id
        self.scope = scope
        self.remote_parent = remote_parent  # parent span_id across processes
        self.recorder = None
        self.roots = []
        self._stack = []
        self._seq = 0
        self._batch_seq = 0
        self.n_spans = 0

    def next_batch_scope(self):
        """A fresh ``bN.`` prefix for one fan-out batch's worker scopes.

        Worker span ids are scoped ``b<batch>.w<key>.s<n>``: the batch
        counter keeps ids unique when different batches reuse the same
        work keys (collection seeds, thread ids, grid points), and the
        counter advances in dispatch order, so ids are stable across
        reruns.
        """
        self._batch_seq += 1
        return f"b{self._batch_seq}."

    def adopt_context(self, context, scope):
        """Continue ``context``'s trace: roots parent under its span.

        Used by pool workers; ``scope`` prefixes every span id minted
        here (derived from the task key, so IDs are deterministic no
        matter which process runs the task).
        """
        self.trace_id = context.trace_id
        self.remote_parent = context.span_id
        self.scope = scope

    def _next_id(self):
        self._seq += 1
        return f"{self.scope}s{self._seq}"

    @contextmanager
    def span(self, name, **attrs):
        parent = self._stack[-1] if self._stack else None
        span = Span(name=name, attrs=attrs, span_id=self._next_id(),
                    parent_id=(parent.span_id if parent is not None
                               else self.remote_parent),
                    trace_id=self.trace_id)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        self.n_spans += 1
        span.start = self.clock()
        if self.recorder is not None:
            self.recorder.record("span_open", span.start, name=name,
                                 id=span.span_id, parent=span.parent_id)
        try:
            yield span
        except BaseException:
            span.status = STATUS_ERROR
            raise
        finally:
            end = self.clock()
            span.duration = end - span.start
            self._stack.pop()
            if self.recorder is not None:
                self.recorder.record("span_close", end, name=name,
                                     id=span.span_id,
                                     duration_s=span.duration,
                                     status=span.status)

    def open_span(self):
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def orphan(self, name, **attrs):
        """Record an already-dead span: a task whose worker never came back.

        The span is born closed with status ``orphaned`` and zero
        duration, parented under the innermost open span, so a trace
        tree never dangles when a worker is killed mid-task -- the lost
        work is flagged exactly where it was dispatched.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(name=name, attrs=attrs, span_id=self._next_id(),
                    parent_id=(parent.span_id if parent is not None
                               else self.remote_parent),
                    trace_id=self.trace_id, start=self.clock(),
                    duration=0.0, status=STATUS_ORPHANED)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self.n_spans += 1
        if self.recorder is not None:
            self.recorder.record("span_open", span.start, name=name,
                                 id=span.span_id, parent=span.parent_id)
            self.recorder.record("span_close", span.start, name=name,
                                 id=span.span_id, duration_s=0.0,
                                 status=STATUS_ORPHANED)
        return span

    def attach(self, span_dicts):
        """Stitch foreign span trees (worker snapshots) into this trace.

        Each dict (a :meth:`Span.to_dict`) becomes a child of the
        innermost open span, or a new root when no span is open -- the
        coordinator calls this inside its dispatching span, so worker
        spans land exactly where the work was fanned out.
        """
        adopted = []
        parent = self.open_span()
        for d in span_dicts:
            span = Span.from_dict(d)
            if parent is not None:
                span.parent_id = parent.span_id
                parent.children.append(span)
            else:
                self.roots.append(span)
            self.n_spans += sum(1 for _ in span.walk())
            adopted.append(span)
        return adopted

    def reset(self):
        self.roots = []
        self._stack = []
        self._seq = 0
        self._batch_seq = 0
        self.n_spans = 0


class _NullSpanContext:
    """Reusable no-op context manager; what a disabled registry hands out."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc):
        return False


NULL_SPAN = Span(name="null")
NULL_SPAN_CONTEXT = _NullSpanContext()
