"""Injectable clocks for the telemetry layer.

Every timestamp telemetry records -- span start/end, flight-recorder
event times, events/sec gauges -- comes from the owning registry's
*clock*, a zero-argument callable returning seconds. Two
implementations:

- :data:`WALL` -- ``time.perf_counter``, the default: real wall time.
- :class:`TickClock` -- a deterministic counter that advances by a
  fixed ``step`` on every call. Two runs that make the same sequence
  of telemetry calls read the same sequence of timestamps, which is
  what makes exported profiles and event streams *byte-identical*
  across reruns (the golden-file tests and the seed-pinned CLI
  acceptance check both rely on it).

Clocks cross the process-pool boundary as *specs* (plain tuples), not
as objects: a worker reconstructs its own clock from the spec and
starts it at zero, so a task's timestamps depend only on the work the
task does -- never on which OS process ran it or what ran before.
"""

import time

WALL = time.perf_counter


class TickClock:
    """Deterministic clock: each call returns ``start + n * step``.

    ``step`` defaults to one millisecond, so a span that makes no
    nested telemetry calls lasts exactly one tick and every duration is
    an exact multiple of ``step`` -- stable under ``repr`` and JSON.
    """

    __slots__ = ("start", "step", "_n")

    def __init__(self, start=0.0, step=0.001):
        self.start = start
        self.step = step
        self._n = 0

    def __call__(self):
        now = self.start + self._n * self.step
        self._n += 1
        return now


def clock_spec(clock):
    """Picklable description of ``clock`` for worker propagation."""
    if isinstance(clock, TickClock):
        return ("tick", clock.step)
    return ("wall",)


def clock_from_spec(spec):
    """Rebuild a clock from :func:`clock_spec` (ticks restart at zero)."""
    if spec and spec[0] == "tick":
        return TickClock(step=spec[1])
    return WALL
