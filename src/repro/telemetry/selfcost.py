"""Self-overhead accounting: what does telemetry itself cost?

The paper's headline is observability at a *controlled* cost (8.2%
average tracking overhead, Table III); this module gives the pipeline
the same number about its own instrumentation. A recording
:class:`~repro.telemetry.registry.Registry` counts every mutator call
it services (increments, gauge sets, histogram observations, spans,
events); a one-off :func:`calibrate` measures the marginal per-call
cost of each mutator kind against the :class:`NullRegistry` no-op
baseline; and :func:`overhead_seconds` multiplies the two, yielding the
estimated wall time the run spent *inside telemetry*.

Run-profile exports report this as ``telemetry_self_overhead_pct`` in
the profile's ``meta`` (overhead seconds over the run's root-span wall
time). The estimate is intentionally a *model* (counts x calibrated
unit costs), not inline timing: timing every increment would itself
dominate the cost being measured, and the model keeps deterministic
exports deterministic -- golden tests pin a fixed
:class:`Calibration` via :func:`set_calibration`.
"""

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """Marginal cost, in nanoseconds, of one telemetry call per kind."""

    inc_ns: float
    gauge_ns: float
    observe_ns: float
    span_ns: float     # one full open+close pair
    event_ns: float    # one flight-recorder record


# Machine-independent unit costs for deterministic runs (``--tick-clock``
# and the golden-file tests): ballpark CPython figures, pinned so the
# reported overhead percentage is byte-stable across machines and reruns.
PINNED_CALIBRATION = Calibration(inc_ns=120.0, gauge_ns=140.0,
                                 observe_ns=260.0, span_ns=2600.0,
                                 event_ns=900.0)

_active = None


def set_calibration(calibration):
    """Install a calibration (None reverts to lazy measurement)."""
    global _active
    _active = calibration


def get_calibration():
    """The active calibration, measuring one on first use."""
    global _active
    if _active is None:
        _active = calibrate()
    return _active


def _per_call_ns(fn, null_fn, iters):
    """Marginal ns/call of ``fn`` over the no-op ``null_fn``."""
    for probe in (null_fn, fn):    # warm both paths before timing
        for _ in range(iters // 10):
            probe()
    t0 = time.perf_counter()
    for _ in range(iters):
        null_fn()
    t_null = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    t_live = time.perf_counter() - t0
    return max(0.0, (t_live - t_null) / iters * 1e9)


def calibrate(iters=20000):
    """Measure a :class:`Calibration` on this machine.

    Costs are marginal over the NullRegistry path, so "telemetry off"
    is by construction the zero line -- the same framing as the
    paper's no-tracking baseline.
    """
    from repro.telemetry.registry import NullRegistry, Registry

    live = Registry(preregister_catalog=False)
    null = NullRegistry()
    return Calibration(
        inc_ns=_per_call_ns(lambda: live.inc("selfcost.c"),
                            lambda: null.inc("selfcost.c"), iters),
        gauge_ns=_per_call_ns(lambda: live.set_gauge("selfcost.g", 1.0),
                              lambda: null.set_gauge("selfcost.g", 1.0),
                              iters),
        observe_ns=_per_call_ns(lambda: live.observe("selfcost.h", 1),
                                lambda: null.observe("selfcost.h", 1),
                                iters),
        span_ns=_span_ns(iters),
        event_ns=_event_ns(iters),
    )


def _span_ns(iters):
    from repro.telemetry.registry import NullRegistry, Registry

    live = Registry(preregister_catalog=False)
    null = NullRegistry()

    def live_span():
        with live.span("selfcost.s"):
            pass
        live.tracer.roots.clear()   # keep memory bounded while timing

    def null_span():
        with null.span("selfcost.s"):
            pass

    return _per_call_ns(live_span, null_span, max(1000, iters // 10))


def _event_ns(iters):
    from repro.telemetry.events import FlightRecorder

    recorder = FlightRecorder(capacity=1024)

    def record():
        recorder.record("counter", 0.0, name="selfcost.c", delta=1)

    def noop():
        pass

    return _per_call_ns(record, noop, iters)


def overhead_seconds(registry, calibration=None):
    """Estimated seconds ``registry`` spent inside telemetry calls."""
    cal = calibration or get_calibration()
    counts = registry.op_counts()
    return (counts["inc"] * cal.inc_ns
            + counts["gauge"] * cal.gauge_ns
            + counts["observe"] * cal.observe_ns
            + counts["span"] * cal.span_ns
            + counts["event"] * cal.event_ns) * 1e-9


def overhead_pct(registry, calibration=None):
    """``telemetry_self_overhead_pct``: overhead over root-span wall time.

    Returns None when the registry recorded no root spans (there is no
    wall time to compare against).
    """
    wall = sum(s.duration for s in registry.tracer.roots)
    if wall <= 0:
        return None
    return 100.0 * overhead_seconds(registry, calibration) / wall
