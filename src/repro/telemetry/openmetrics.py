"""OpenMetrics text exposition of a registry or run profile.

Renders the metric half of a run profile (counters, gauges,
histograms) in the OpenMetrics text format, so any Prometheus-family
scraper or ``promtool`` can ingest what a run recorded::

    # TYPE repro_act_invalid_predictions counter
    repro_act_invalid_predictions_total 42
    ...
    # EOF

Dotted metric names become underscore-separated with a ``repro_``
prefix; exact-value histogram buckets are converted to the cumulative
``le``-labelled form the format requires. Spans are not exposed --
they belong to the trace surfaces (:mod:`.flame`), not the metric one.
"""

PREFIX = "repro_"


def _metric_name(name):
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    sanitized = "".join(out)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return PREFIX + sanitized


def _format_value(value):
    if value is None:
        return "0"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_openmetrics(profile):
    """Render ``profile`` (a dict or a registry) as OpenMetrics text."""
    if hasattr(profile, "snapshot"):
        profile = profile.snapshot()
    lines = []
    for name, value in sorted((profile.get("counters") or {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")
    for name, value in sorted((profile.get("gauges") or {}).items()):
        if value is None:
            continue
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, stats in sorted((profile.get("histograms") or {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        buckets = sorted(((float(k), v) for k, v in
                          (stats.get("buckets") or {}).items()),
                         key=lambda kv: kv[0])
        for bound, count in buckets:
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                         f"{cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} '
                     f"{stats.get('count', 0)}")
        lines.append(f"{metric}_count {stats.get('count', 0)}")
        lines.append(f"{metric}_sum {_format_value(stats.get('sum', 0.0))}")
    lines.append("# EOF")
    return "\n".join(lines)
