"""Run-profile export and rendering.

A *run profile* is one registry's snapshot plus free-form metadata --
the structured artifact a telemetry-enabled run leaves behind. Two
on-disk formats, chosen by file extension:

- ``*.json``: the whole profile as one indented JSON object (the
  default; what ``--telemetry out.json`` writes).
- ``*.jsonl``: one JSON record per line (``meta`` / ``counter`` /
  ``gauge`` / ``histogram`` / ``span``), append-friendly for harnesses
  that collect many runs into one stream.

:func:`format_profile` renders a profile as the human-readable
phase/counter tables ``repro.cli profile`` prints.
"""

import json

from repro.common.texttable import render_table


def profile_dict(registry, meta=None, self_overhead=False, calibration=None):
    """Snapshot ``registry`` into a profile dict with ``meta`` attached.

    With ``self_overhead``, the profile's meta gains the
    ``telemetry_self_overhead_pct`` figure (estimated telemetry cost
    over root-span wall time, see :mod:`repro.telemetry.selfcost`);
    pass a pinned ``calibration`` to keep it machine-independent in
    deterministic runs.
    """
    out = {"meta": dict(meta or {})}
    if self_overhead:
        from repro.telemetry import selfcost

        pct = selfcost.overhead_pct(registry, calibration=calibration)
        if pct is not None:
            out["meta"]["telemetry_self_overhead_pct"] = round(pct, 4)
    out.update(registry.snapshot())
    return out


def write_profile(registry, path, meta=None, self_overhead=False,
                  calibration=None):
    """Write a registry snapshot to ``path`` (format from extension)."""
    path = str(path)
    profile = profile_dict(registry, meta=meta, self_overhead=self_overhead,
                           calibration=calibration)
    if path.endswith(".jsonl"):
        with open(path, "w", encoding="utf-8") as fh:
            for record in _jsonl_records(profile):
                fh.write(json.dumps(record, sort_keys=True) + "\n")
    else:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(profile, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return path


def _jsonl_records(profile):
    yield {"type": "meta", "meta": profile.get("meta", {})}
    for name, value in profile.get("counters", {}).items():
        yield {"type": "counter", "name": name, "value": value}
    for name, value in profile.get("gauges", {}).items():
        yield {"type": "gauge", "name": name, "value": value}
    for name, stats in profile.get("histograms", {}).items():
        yield {"type": "histogram", "name": name, **stats}
    for span in profile.get("spans", ()):
        yield {"type": "span", "span": span}


def read_profile(path):
    """Read a profile written by :func:`write_profile` (json or jsonl)."""
    path = str(path)
    with open(path, "r", encoding="utf-8") as fh:
        if not path.endswith(".jsonl"):
            return json.load(fh)
        profile = {"meta": {}, "counters": {}, "gauges": {},
                   "histograms": {}, "spans": []}
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type")
            if kind == "meta":
                profile["meta"].update(record.get("meta", {}))
            elif kind == "counter":
                profile["counters"][record["name"]] = record["value"]
            elif kind == "gauge":
                profile["gauges"][record["name"]] = record["value"]
            elif kind == "histogram":
                name = record.pop("name")
                profile["histograms"][name] = record
            elif kind == "span":
                profile["spans"].append(record["span"])
        return profile


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------

def _walk_span_dicts(span, depth=0):
    yield depth, span
    for child in span.get("children", ()):
        yield from _walk_span_dicts(child, depth + 1)


def format_profile(profile, title=None):
    """Render a profile dict as phase/counter/histogram tables."""
    sections = []
    meta = profile.get("meta") or {}
    header = title or "run profile"
    if meta:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        header = f"{header} ({pairs})"
    sections.append(header)

    spans = profile.get("spans") or []
    if spans:
        total = sum(s.get("duration_s", 0.0) for s in spans) or 1.0
        rows = []
        for root in spans:
            for depth, span in _walk_span_dicts(root):
                dur = span.get("duration_s", 0.0)
                rows.append(("  " * depth + span["name"],
                             f"{dur:.4f}",
                             f"{100.0 * dur / total:5.1f}"))
        sections.append(render_table(("phase", "seconds", "% of run"), rows))

    counters = profile.get("counters") or {}
    if counters:
        rows = [(name, _num(value)) for name, value in sorted(counters.items())]
        sections.append(render_table(("counter", "value"), rows))

    gauges = profile.get("gauges") or {}
    if gauges:
        rows = [(name, _num(value)) for name, value in sorted(gauges.items())]
        sections.append(render_table(("gauge", "value"), rows))

    histograms = profile.get("histograms") or {}
    if histograms:
        rows = []
        for name, stats in sorted(histograms.items()):
            rows.append((name, stats.get("count", 0),
                         _num(stats.get("mean", 0.0)),
                         _num(stats.get("min")), _num(stats.get("max"))))
        sections.append(render_table(
            ("histogram", "count", "mean", "min", "max"), rows))

    return "\n\n".join(sections)


def _num(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
