"""Flame-graph and critical-path rendering of a span tree.

Both surfaces consume the *span dicts* of an exported run profile (or a
profile reconstructed from a flight recording via
:func:`~repro.telemetry.events.events_to_profile`), so they render
equally from ``--telemetry`` output, a live registry snapshot, or an
``--events`` stream:

- :func:`folded_stacks` emits the classic folded-stack format
  (``root;child;leaf <microseconds>``, one line per unique stack, self
  time only) that ``flamegraph.pl``/speedscope/inferno all ingest.
- :func:`critical_path` walks the tree from the heaviest root down its
  heaviest child at every level -- across worker subtrees too, since
  pool workers stitch under the coordinator's dispatching span -- which
  is the chain an optimisation has to shorten before wall time moves.
"""

from repro.common.texttable import render_table


def _span_iter(spans):
    for root in spans:
        yield root


def folded_stacks(spans, scale=1_000_000):
    """Render span trees as folded stacks (one ``stack value`` per line).

    ``scale`` converts span seconds into the integer sample counts the
    flamegraph tools expect (microseconds by default). A frame's value
    is its *self* time -- duration minus its children -- so stack
    totals add up exactly to each root's duration.
    """
    totals = {}
    order = []

    def visit(span, prefix):
        stack = prefix + (span.get("name", "?"),)
        duration = span.get("duration_s", 0.0) or 0.0
        children = span.get("children", ()) or ()
        self_s = duration - sum((c.get("duration_s", 0.0) or 0.0)
                                for c in children)
        key = ";".join(stack)
        if key not in totals:
            totals[key] = 0.0
            order.append(key)
        totals[key] += max(0.0, self_s)
        for child in children:
            visit(child, stack)

    for root in _span_iter(spans):
        visit(root, ())
    return [f"{key} {int(round(totals[key] * scale))}" for key in order]


def format_flame(spans, scale=1_000_000):
    """:func:`folded_stacks` joined into the text ``--flame`` prints."""
    return "\n".join(folded_stacks(spans, scale=scale))


def critical_path(spans):
    """The heaviest root-to-leaf chain, as a list of span dicts.

    At every level the walk descends into the child with the largest
    duration (ties break on tree order, which is deterministic). The
    chain crosses process boundaries naturally: a worker subtree that
    dominates its dispatching phase is entered like any other child.
    """
    if not spans:
        return []
    chain = []
    span = max(spans, key=lambda s: s.get("duration_s", 0.0) or 0.0)
    while span is not None:
        chain.append(span)
        children = span.get("children", ()) or ()
        span = (max(children, key=lambda s: s.get("duration_s", 0.0) or 0.0)
                if children else None)
    return chain


def format_critical_path(spans):
    """Render :func:`critical_path` as the table ``--critical-path`` prints."""
    chain = critical_path(spans)
    if not chain:
        return "no spans recorded"
    total = chain[0].get("duration_s", 0.0) or 0.0
    rows = []
    for depth, span in enumerate(chain):
        duration = span.get("duration_s", 0.0) or 0.0
        children = span.get("children", ()) or ()
        self_s = max(0.0, duration - sum((c.get("duration_s", 0.0) or 0.0)
                                         for c in children))
        pct = 100.0 * duration / total if total > 0 else 0.0
        status = span.get("status", "")
        rows.append(("  " * depth + span.get("name", "?"),
                     span.get("id", ""), f"{duration:.4f}",
                     f"{self_s:.4f}", f"{pct:5.1f}", status))
    table = render_table(
        ("critical path", "span", "seconds", "self", "% of root", "status"),
        rows)
    return f"critical path ({total:.4f}s root-to-leaf)\n{table}"
