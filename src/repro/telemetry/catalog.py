"""Declared metric catalog.

Every metric the instrumented pipeline reports is declared here with
its kind, owning layer and meaning. A fresh :class:`Registry`
pre-registers the catalog, so exported run profiles always carry the
full key set (a counter that stayed at zero -- no mode switches, no
FIFO stalls -- still shows up as 0 instead of silently missing), and
``docs/observability.md`` renders from the same source of truth via
:func:`format_catalog`.

Instrumentation may still report undeclared names (ad-hoc metrics are
not an error), but everything intended to be stable API belongs in this
table.
"""

from dataclasses import dataclass

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric."""

    name: str
    kind: str
    layer: str
    description: str


CATALOG = (
    # -- ACT module (core.act_module / core.buffers) -------------------
    MetricSpec("act.deps_processed", COUNTER, "core.act_module",
               "RAW dependences entering any ACT module's input buffer"),
    MetricSpec("act.predictions", COUNTER, "core.act_module",
               "NN classifications made (input buffer warm)"),
    MetricSpec("act.invalid_predictions", COUNTER, "core.act_module",
               "predicted-invalid sequences (the Invalid Counter, summed "
               "over all modules and windows)"),
    MetricSpec("act.online_trained", COUNTER, "core.act_module",
               "back-propagation updates applied in online-training mode"),
    MetricSpec("act.windows_checked", COUNTER, "core.act_module",
               "periodic Invalid-Counter checks (one per check_window)"),
    MetricSpec("act.mode_switches", COUNTER, "core.act_module",
               "testing<->training mode alternations"),
    MetricSpec("act.window_mispred_rate", HISTOGRAM, "core.act_module",
               "per-window misprediction rate driving the mode controller"),
    MetricSpec("debug_buffer.logged", COUNTER, "core.buffers",
               "entries logged into any Debug Buffer"),
    MetricSpec("debug_buffer.overflows", COUNTER, "core.buffers",
               "logged entries that overwrote the oldest entry (the "
               "MySQL#1 overflow mode)"),
    MetricSpec("debug_buffer.occupancy", HISTOGRAM, "core.buffers",
               "Debug Buffer occupancy observed at each log"),
    # -- diagnosis workflow (core.diagnosis / core.deploy) -------------
    MetricSpec("diagnose.runs", COUNTER, "core.diagnosis",
               "completed diagnose_failure calls"),
    MetricSpec("diagnose.found", COUNTER, "core.diagnosis",
               "diagnoses that ranked the ground-truth root cause"),
    MetricSpec("diagnose.deps_observed", COUNTER, "core.diagnosis",
               "failure-run dependences replayed through the AMs"),
    MetricSpec("diagnose.invalids_flagged", COUNTER, "core.diagnosis",
               "failure-run dependences flagged invalid"),
    MetricSpec("diagnose.mode_switches", COUNTER, "core.diagnosis",
               "mode alternations during the failure run"),
    MetricSpec("deploy.runs", COUNTER, "core.deploy",
               "trace replays through per-core AMs"),
    MetricSpec("deploy.fast_runs", COUNTER, "core.deploy",
               "replays routed through the batched fast path"),
    MetricSpec("policy.deps_sampled", COUNTER, "core.policy",
               "dependences admitted by an active sampling policy"),
    MetricSpec("policy.deps_shed", COUNTER, "core.policy",
               "dependences dropped by an active sampling policy"),
    MetricSpec("policy.deps_tightened", COUNTER, "core.policy",
               "dependences force-admitted by suspicion tightening"),
    MetricSpec("policy.shed_windows", COUNTER, "core.policy",
               "backoff control windows that engaged load shedding"),
    MetricSpec("deploy.deps", COUNTER, "core.deploy",
               "dependences fed to AMs during replays"),
    # -- batched replay fast path (core.fastpath) ----------------------
    MetricSpec("fastpath.chunks", COUNTER, "core.fastpath",
               "TESTING-mode chunks scored with batched prediction"),
    MetricSpec("fastpath.batched_predictions", COUNTER, "core.fastpath",
               "predictions produced by batched chunk scoring"),
    MetricSpec("fastpath.scalar_deps", COUNTER, "core.fastpath",
               "dependences replayed scalar (warm-up/TRAINING fallback)"),
    MetricSpec("fastpath.exact_recomputes", COUNTER, "core.fastpath",
               "batched rows re-scored scalar because a pre-activation "
               "sat near a sigmoid-table rounding boundary"),
    MetricSpec("fastpath.chunk_mode_exits", COUNTER, "core.fastpath",
               "chunks cut short by a mode switch out of TESTING"),
    MetricSpec("fastpath.chunk_size", HISTOGRAM, "core.fastpath",
               "dependences committed per batched chunk"),
    # -- parallel run orchestration (repro.parallel) -------------------
    MetricSpec("parallel.batches", COUNTER, "repro.parallel",
               "work batches dispatched to the process pool"),
    MetricSpec("parallel.tasks", COUNTER, "repro.parallel",
               "individual work items executed in pool workers"),
    MetricSpec("parallel.retries", COUNTER, "repro.parallel",
               "task re-executions after a worker death"),
    MetricSpec("parallel.pool_restarts", COUNTER, "repro.parallel",
               "process pools rebuilt after a genuine worker crash"),
    MetricSpec("parallel.jobs_resolved", GAUGE, "repro.parallel",
               "worker count the most recent --jobs/REPRO_JOBS value "
               "resolved to (0 = auto = all CPUs)"),
    # -- diagnosis service (repro.service) -----------------------------
    MetricSpec("serve.warm_hits", COUNTER, "repro.service",
               "diagnose jobs that reused warm trained state (offline "
               "retraining skipped)"),
    MetricSpec("serve.warm_misses", COUNTER, "repro.service",
               "diagnose jobs that trained cold and populated the "
               "warm-state cache"),
    MetricSpec("serve.warm_evictions", COUNTER, "repro.service",
               "warm-state cache entries evicted by the LRU bound"),
    # -- fault injection & resilience (repro.faults) -------------------
    MetricSpec("faults.trace_drops", COUNTER, "trace.trace_io",
               "trace records dropped by the active fault plan"),
    MetricSpec("faults.trace_corruptions", COUNTER, "trace.trace_io",
               "trace records mangled by the active fault plan"),
    MetricSpec("faults.trace_reorders", COUNTER, "trace.trace_io",
               "adjacent trace records swapped by the active fault plan"),
    MetricSpec("faults.trace_records_skipped", COUNTER, "trace.trace_io",
               "malformed trace records skipped by recovering readers"),
    MetricSpec("faults.fifo_overflows", COUNTER, "core.buffers",
               "injected input-FIFO overruns (unconsumed entries lost)"),
    MetricSpec("faults.weight_flips", COUNTER, "core.offline",
               "deployed weight sets poisoned with NaN/Inf by the plan"),
    MetricSpec("faults.weights_healed", COUNTER, "core.deploy",
               "AMs whose non-finite weights were replaced at deploy"),
    MetricSpec("faults.worker_kills", COUNTER, "repro.parallel",
               "worker deaths observed (injected or real)"),
    MetricSpec("faults.quarantined", COUNTER, "repro.faults",
               "work units quarantined instead of aborting the run"),
    MetricSpec("checkpoint.saves", COUNTER, "repro.faults",
               "checkpoint snapshots persisted to disk"),
    MetricSpec("checkpoint.resumes", COUNTER, "repro.faults",
               "runs resumed from an existing checkpoint"),
    MetricSpec("checkpoint.phases_reused", COUNTER, "repro.faults",
               "checkpointed phase payloads reused instead of recomputed"),
    # -- generated corpus & accuracy harness ---------------------------
    MetricSpec("gen.programs_built", COUNTER, "workloads.generator",
               "generated programs assembled from a ProgramSpec"),
    MetricSpec("corpus.programs", COUNTER, "analysis.accuracy",
               "corpus programs scored by the accuracy harness"),
    MetricSpec("corpus.found", COUNTER, "analysis.accuracy",
               "corpus programs whose root cause was ranked"),
    MetricSpec("corpus.quarantined", COUNTER, "analysis.accuracy",
               "corpus programs lost to injected faults (scored as misses)"),
    # -- predictor engines (repro.engines) ------------------------------
    MetricSpec("engine.trainings", COUNTER, "repro.engines",
               "cold engine trainings run by the registry-routed path"),
    MetricSpec("engine.diagnoses", COUNTER, "repro.engines",
               "diagnoses completed by registry-routed (non-NN) engines"),
    MetricSpec("shootout.engines", COUNTER, "analysis.shootout",
               "engines raced to completion by the shootout harness"),
    MetricSpec("frontier.points", COUNTER, "analysis.frontier",
               "rate x FIFO sweep points measured by the frontier"),
    # -- offline training (core.offline / nn.trainer) ------------------
    MetricSpec("offline.correct_runs", COUNTER, "core.offline",
               "correct executions collected for training/pruning"),
    MetricSpec("offline.train_error", GAUGE, "core.offline",
               "training error of the most recent offline training"),
    MetricSpec("nn.networks_trained", COUNTER, "nn.trainer",
               "networks trained (restart winners)"),
    MetricSpec("nn.train_restarts", COUNTER, "nn.trainer",
               "extra restart trainings beyond each first attempt"),
    MetricSpec("nn.train_epochs", COUNTER, "nn.trainer",
               "epochs run by winning trainings"),
    MetricSpec("nn.train_error", HISTOGRAM, "nn.trainer",
               "final training error per trained network"),
    MetricSpec("nn.epoch_loss", HISTOGRAM, "nn.trainer",
               "per-epoch training misclassification rate"),
    MetricSpec("nn.topologies_evaluated", COUNTER, "nn.trainer",
               "topology-search grid points trained and scored"),
    MetricSpec("nn.topology_mispred_rate", HISTOGRAM, "nn.trainer",
               "held-out misprediction rate per searched topology"),
    # -- timing simulator (sim.machine / sim.coherence) ----------------
    MetricSpec("sim.runs", COUNTER, "sim.machine",
               "timed trace replays"),
    MetricSpec("sim.cycles", COUNTER, "sim.machine",
               "simulated execution cycles (max core clock, summed)"),
    MetricSpec("sim.deps_offered", COUNTER, "sim.machine",
               "dependences offered to the NN pipeline"),
    MetricSpec("sim.fifo_stalls", COUNTER, "sim.machine",
               "loads stalled at retirement on a full input FIFO"),
    MetricSpec("sim.act_stall_cycles", COUNTER, "sim.machine",
               "cycles lost to those FIFO stalls"),
    MetricSpec("sim.fifo_occupancy", HISTOGRAM, "sim.machine",
               "NN-pipeline FIFO occupancy at each offer"),
    MetricSpec("sim.overhead_proxy", GAUGE, "sim.machine",
               "adaptive-tracking cost of the most recent replay "
               "(deps offered x (1 + mean FIFO occupancy))"),
    MetricSpec("sim.cache.loads", COUNTER, "sim.coherence",
               "loads issued to the memory system"),
    MetricSpec("sim.cache.stores", COUNTER, "sim.coherence",
               "stores issued to the memory system"),
    MetricSpec("sim.cache.l1_hits", COUNTER, "sim.coherence",
               "loads served by the private L1"),
    MetricSpec("sim.cache.l2_hits", COUNTER, "sim.coherence",
               "loads served by the private L2"),
    MetricSpec("sim.cache.c2c", COUNTER, "sim.coherence",
               "cache-to-cache transfers"),
    MetricSpec("sim.cache.mem", COUNTER, "sim.coherence",
               "accesses missing to main memory"),
    MetricSpec("sim.cache.upgrades", COUNTER, "sim.coherence",
               "S->M upgrade requests"),
    MetricSpec("sim.cache.evictions", COUNTER, "sim.coherence",
               "L2 line evictions"),
    MetricSpec("sim.cache.lw_dropped", COUNTER, "sim.coherence",
               "evictions that discarded last-writer metadata"),
    # -- workload framework (workloads.framework) ----------------------
    MetricSpec("sched.runs", COUNTER, "workloads.framework",
               "workload executions"),
    MetricSpec("sched.failed_runs", COUNTER, "workloads.framework",
               "executions ending in a SimulatedFailure"),
    MetricSpec("sched.steps", COUNTER, "workloads.framework",
               "scheduler steps (operations committed or control ops)"),
    MetricSpec("sched.quanta", COUNTER, "workloads.framework",
               "scheduling decisions (quantum boundaries)"),
    MetricSpec("sched.events", COUNTER, "workloads.framework",
               "trace events committed"),
    MetricSpec("sched.events_per_run", HISTOGRAM, "workloads.framework",
               "trace length distribution across executions"),
    MetricSpec("sched.events_per_sec", GAUGE, "workloads.framework",
               "event throughput of the most recent execution"),
)


def format_catalog():
    """Render the catalog as a text table (used by the docs)."""
    from repro.common.texttable import render_table

    rows = [(m.name, m.kind, m.layer, m.description) for m in CATALOG]
    return render_table(("metric", "kind", "layer", "description"), rows)
