"""Pluggable predictor engines behind one ``Predictor`` protocol.

See ``docs/engines.md``. ``registry.create(name)`` is the entry point;
``--engine NAME`` on the CLI and service routes through it.
"""

from repro.engines.base import (
    EngineCapabilities,
    Predictor,
    candidate,
    candidate_report,
    report_candidates,
)
from repro.engines.registry import create, names, register

__all__ = [
    "EngineCapabilities",
    "Predictor",
    "candidate",
    "candidate_report",
    "create",
    "names",
    "register",
    "report_candidates",
]
