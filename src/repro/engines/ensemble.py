"""Composite engine: rank-merge several member engines.

``ensemble`` (or ``ensemble:nn+pset`` for an explicit member list) runs
each member's full diagnosis protocol, converts every member report to
the uniform candidate list, and merges them with reciprocal-rank fusion
(RRF, Cormack et al., SIGIR 2009): each candidate scores
``sum(1 / (60 + rank_m))`` over the members that ranked it. RRF needs
no score calibration across heterogeneous engines, which is exactly the
situation here -- NN outputs, Increase statistics and invariant
violation counts share no scale.
"""

import numpy as np

from repro import faults as _faults
from repro import telemetry
from repro.engines.base import (
    EngineCapabilities,
    Predictor,
    candidate,
    candidate_report,
    report_candidates,
)

#: RRF dampening constant (the literature's standard value).
RRF_K = 60


def rrf_merge(candidate_lists, k=RRF_K):
    """Reciprocal-rank-fuse ranked candidate lists into one ranking.

    Deterministic: ties in fused score break on the candidate key.
    ``hit`` is OR-ed across members (any member that knows the
    candidate exposes the root cause marks the fused candidate).
    """
    fused = {}
    for ranking in candidate_lists:
        for rank, cand in enumerate(ranking, start=1):
            entry = fused.setdefault(cand["key"], {"score": 0.0,
                                                   "hit": False})
            entry["score"] += 1.0 / (k + rank)
            entry["hit"] = entry["hit"] or cand["hit"]
    merged = sorted(fused.items(), key=lambda t: (-t[1]["score"], t[0]))
    return [candidate(key, entry["score"], entry["hit"])
            for key, entry in merged]


class EnsembleEngine(Predictor):
    """Rank-merges the reports of its member engines."""

    def __init__(self, members, config=None):
        super().__init__(config)
        if not members:
            raise ValueError("ensemble needs at least one member engine")
        self.members = list(members)
        names = [m.name for m in self.members]
        self.capabilities = EngineCapabilities(
            name="ensemble",
            description="RRF rank-merge of: " + "+".join(names),
            trains_offline=any(m.capabilities.trains_offline
                               for m in self.members),
            needs_failure_runs=max(m.capabilities.needs_failure_runs
                                   for m in self.members),
            multithreaded_only=all(m.capabilities.multithreaded_only
                                   for m in self.members),
            adapts_online=any(m.capabilities.adapts_online
                              for m in self.members),
            warmable=all(m.capabilities.warmable for m in self.members))

    def fingerprint(self):
        return {"engine": "ensemble",
                "members": [m.name for m in self.members]}

    @property
    def trained(self):
        return all(m.trained for m in self.members)

    def train(self, program, n_runs=10, seed0=0, jobs=None,
              quarantine=None, **params):
        for member in self.members:
            member.train(program, n_runs=n_runs, seed0=seed0, jobs=jobs,
                         quarantine=quarantine, **params)

    def predict_batch(self, seqs):
        seqs = list(seqs)
        if not seqs:
            return np.zeros(0, dtype=float)
        scores = [np.asarray(m.predict_batch(seqs), dtype=float)
                  for m in self.members]
        return np.mean(scores, axis=0)

    def serialize(self):
        return {"engine": "ensemble",
                "members": [m.serialize() for m in self.members]}

    @classmethod
    def deserialize(cls, payload, config=None):
        from repro.core.config import ACTConfig
        from repro.engines.registry import create as create_engine

        members = []
        for member_payload in payload.get("members", ()):
            member_config = config
            if member_config is None and member_payload.get("config"):
                member_config = ACTConfig(**member_payload["config"])
            members.append(create_engine(member_payload["engine"],
                                         config=member_config))
        engine = cls(members, config=config)
        engine.load_state(payload)
        return engine

    def load_state(self, payload):
        from repro.common.errors import EngineError

        if payload.get("engine") != "ensemble":
            raise EngineError(
                "ensemble cannot load state serialized by "
                f"{payload.get('engine')!r}", engine=payload.get("engine"))
        states = payload["members"]
        if len(states) != len(self.members):
            raise EngineError(
                f"ensemble state has {len(states)} member payloads for "
                f"{len(self.members)} members", engine="ensemble")
        for member, state in zip(self.members, states):
            member.load_state(state)

    def report_trained(self, program, **kwargs):
        reports = [m.report_trained(program, **kwargs)
                   for m in self.members]
        return self._merge(program, reports)

    def _merge(self, program, reports):
        usable = [r for r in reports if r.applicable]
        merged = rrf_merge([report_candidates(r) for r in usable])
        first = reports[0]
        report = candidate_report(
            first.program, failed=any(r.failed for r in reports),
            failure_description=first.failure_description,
            truth=first.root_cause or set(), candidates=merged,
            engine="ensemble")
        for member, member_report in zip(self.members, reports):
            if not member_report.applicable:
                report.notes.append(
                    f"ensemble: member {member.name!r} inapplicable")
            else:
                report.notes.append(
                    f"ensemble: member {member.name!r} rank "
                    f"{member_report.rank}")
        return report

    def diagnose_report(self, program, trained=None,
                        n_train_runs=10, train_seed0=0,
                        failure_seed=12345, n_pruning_runs=20,
                        pruning_seed0=100, failure_params=None,
                        correct_params=None, pruning_params=None,
                        root_cause=None, fast=True, jobs=None,
                        faults=None, quarantine=None, checkpoint=None,
                        trained_sink=None, state=None, state_sink=None):
        """Run every member's protocol, then RRF-merge the reports.

        Members run their *native* ``diagnose_report`` (the NN member
        keeps its direct-path flow) so each member behaves exactly as
        it would standalone; only the final ranking is fused.
        """
        if checkpoint is not None:
            from repro.common.errors import EngineError

            raise EngineError(
                "engine 'ensemble' does not support checkpoints "
                "(only the default nn engine is checkpointable)",
                engine="ensemble")
        plan = faults if faults is not None else _faults.get_plan()
        tele = telemetry.get_registry()
        with _faults.use_plan(plan):
            with tele.span("engine.diagnose", engine="ensemble",
                           program=getattr(program, "name", "?")):
                if state is not None:
                    self.load_state(state)
                reports = []
                for member in self.members:
                    member_state = None
                    if member.trained:
                        member_state = member.serialize()
                    reports.append(member.diagnose_report(
                        program, state=member_state,
                        n_train_runs=n_train_runs, train_seed0=train_seed0,
                        failure_seed=failure_seed,
                        n_pruning_runs=n_pruning_runs,
                        pruning_seed0=pruning_seed0,
                        failure_params=failure_params,
                        correct_params=correct_params,
                        pruning_params=pruning_params,
                        root_cause=root_cause, fast=fast, jobs=jobs,
                        quarantine=quarantine,
                        state_sink=(lambda s, _m=member:
                                    _m.load_state(s))))
                if state_sink is not None:
                    state_sink(self.serialize())
                report = self._merge(program, reports)
                if tele.enabled:
                    tele.inc("engine.diagnoses")
                if quarantine is not None and len(quarantine):
                    report.quarantine = quarantine.report_dict()
                return report
