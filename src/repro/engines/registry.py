"""Name -> engine factory registry.

``register(name, factory)`` adds an engine; ``create(name, config=...)``
instantiates one; ``names()`` lists what is registered (insertion
order: the default ``nn`` first, then the baselines, then
``ensemble``). Unknown names raise
:class:`~repro.common.errors.EngineError` whose message lists the
registered names -- the one shared error path for ``--engine``
everywhere (CLI, corpus, service).

Composite syntax: ``ensemble`` fuses every non-ensemble engine;
``ensemble:nn+pset`` fuses an explicit member list.
"""

from repro.common.errors import EngineError

_REGISTRY = {}
_LOADED = False


def register(name, factory):
    """Register ``factory(config=None) -> Predictor`` under ``name``."""
    _REGISTRY[name] = factory


def _ensure_loaded():
    # Engine modules import repro.core (which imports nothing from this
    # package at module scope only via the lazy routing hook), so they
    # load lazily here rather than at package import.
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from repro.engines.baseline_engines import (
        AvisoEngine,
        PBIEngine,
        PSetEngine,
    )
    from repro.engines.ensemble import EnsembleEngine
    from repro.engines.nn_engine import NNEngine

    register("nn", NNEngine)
    register("aviso", AvisoEngine)
    register("pbi", PBIEngine)
    register("pset", PSetEngine)

    def _make_ensemble(config=None, members=None):
        member_names = members or [n for n in names()
                                   if n != "ensemble"]
        return EnsembleEngine(
            [create(n, config=config) for n in member_names],
            config=config)

    register("ensemble", _make_ensemble)


def names():
    """Registered engine names, registration order."""
    _ensure_loaded()
    return tuple(_REGISTRY)


def create(name, config=None):
    """Instantiate the engine registered under ``name``.

    ``ensemble:a+b`` builds a composite over explicitly named member
    engines; bare ``ensemble`` takes every non-ensemble engine.
    """
    _ensure_loaded()
    base, sep, spec = name.partition(":")
    if spec and base != "ensemble":
        raise EngineError(
            f"unknown engine {name!r} (only 'ensemble:' takes a member "
            f"list); registered engines: {', '.join(names())}",
            engine=name, known=names())
    if base not in _REGISTRY:
        raise EngineError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(names())}", engine=name, known=names())
    if base == "ensemble":
        members = [m for m in spec.split("+") if m] if spec else None
        if sep and not members:
            raise EngineError(
                f"engine {name!r} names no members; registered engines: "
                f"{', '.join(names())}", engine=name, known=names())
        for member in members or ():
            if member == "ensemble" or member not in _REGISTRY:
                raise EngineError(
                    f"unknown ensemble member {member!r} in {name!r}; "
                    f"registered engines: {', '.join(names())}",
                    engine=member, known=names())
        return _REGISTRY["ensemble"](config=config, members=members)
    return _REGISTRY[base](config=config)
