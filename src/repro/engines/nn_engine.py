"""The default engine: ACT's neural predictor behind the registry.

``diagnose_report`` is a pure delegation to
:func:`~repro.core.diagnosis.diagnose_failure` -- no extra spans, no
extra work -- so routing ``--engine nn`` through the registry is
byte-identical to the historical direct call (reports, telemetry and
artifacts; pinned by ``tests/test_engines.py``). The protocol surface
(``train``/``predict_batch``/``serialize``) wraps
:class:`~repro.core.offline.TrainedACT` for the ensemble engine and
the cross-engine property tests.
"""

from dataclasses import asdict

import numpy as np

from repro.core.offline import OfflineTrainer, TrainedACT
from repro.engines.base import EngineCapabilities, Predictor


class NNEngine(Predictor):
    """ACT's offline-trained, online-adapting neural predictor."""

    capabilities = EngineCapabilities(
        name="nn",
        description="ACT neural predictor (the paper's scheme)",
        trains_offline=True, needs_failure_runs=1,
        multithreaded_only=False, adapts_online=True, warmable=True)

    def __init__(self, config=None):
        super().__init__(config)
        self._trained = None

    @property
    def trained(self):
        return self._trained is not None

    def train(self, program, n_runs=10, seed0=0, jobs=None,
              quarantine=None, **params):
        trainer = OfflineTrainer(config=self.config)
        self._trained = trainer.train(program, n_runs=n_runs, seed0=seed0,
                                      jobs=jobs, quarantine=quarantine,
                                      **params)

    def predict_batch(self, seqs):
        seqs = list(seqs)
        if not seqs:
            return np.zeros(0, dtype=float)
        xs = self._trained.encoder.encode_many(
            seqs, seq_len=self.config.seq_len)
        outputs, _risky = self._trained.make_network(0).predict_batch_exact(
            np.asarray(xs, dtype=float))
        # The network emits validity; the protocol reports suspicion.
        return 1.0 - outputs

    def _state_payload(self):
        return self._trained.to_payload()

    def _load_state_payload(self, state):
        self._trained = TrainedACT.from_payload(state, self.config)

    def report_trained(self, program, failure_seed=12345,
                       n_pruning_runs=20, pruning_seed0=100,
                       failure_params=None, correct_params=None,
                       pruning_params=None, root_cause=None, fast=True,
                       jobs=None, quarantine=None):
        from repro.core.diagnosis import diagnose_failure

        return diagnose_failure(
            program, config=self.config, trained=self._trained,
            failure_seed=failure_seed, n_pruning_runs=n_pruning_runs,
            pruning_seed0=pruning_seed0, failure_params=failure_params,
            correct_params=correct_params, pruning_params=pruning_params,
            root_cause=root_cause, fast=fast, jobs=jobs,
            quarantine=quarantine)

    def diagnose_report(self, program, trained=None, state=None,
                        state_sink=None, trained_sink=None, **kwargs):
        """Delegate to the direct path, byte-identically.

        ``trained``/``trained_sink`` pass straight through (the serve
        daemon's historical warm hooks); ``state``/``state_sink`` are
        the engine-generic equivalents and are translated to them.
        """
        from repro.core.diagnosis import diagnose_failure

        if trained is None:
            if state is not None:
                self.load_state(state)
            trained = self._trained
        sink = trained_sink
        if state_sink is not None:
            def sink(t, _orig=trained_sink):
                if _orig is not None:
                    _orig(t)
                state_sink({"engine": "nn", "config": asdict(self.config),
                            "state": t.to_payload()})
        return diagnose_failure(program, config=self.config,
                                trained=trained, trained_sink=sink,
                                **kwargs)
