"""Aviso-, PBI- and PSet-style baselines behind the Predictor protocol.

Each engine reuses its ``repro.baselines`` module's statistics and
ranking math but splits the flow into ``train`` (correct-run state,
shared seed range, warm-cacheable) and ``report_trained`` (the
failure-side protocol), so the serve daemon can warm-cache them and the
shootout can run them on the exact corpus the NN engine sees.

Candidate keys are ``store->load`` pc pairs for Aviso/PSet and
``pc=<pc>:<event>`` predicates for PBI; a candidate's ``hit`` flag uses
the same ground-truth test the native baseline modules use (pair
membership for PSet, root-pc membership for Aviso/PBI).
"""

from collections import defaultdict

import numpy as np

from repro.baselines.aviso import AvisoDiagnoser, _sampled_pairs, _window_pairs
from repro.baselines.pbi import Predicate, _observe
from repro.baselines.pset import PSetInvariants
from repro.core.offline import collect_runs_for_seeds
from repro.engines.base import (
    EngineCapabilities,
    Predictor,
    candidate,
    candidate_report,
)
from repro.sim.params import MachineParams
from repro.trace.raw import RawDep
from repro.workloads.framework import run_program


def _failure_run(program, seed, failure_params):
    return run_program(program, seed=seed, **dict(failure_params
                                                  or {"buggy": True}))


def _truth(run, root_cause):
    return root_cause or run.meta.get("root_cause") or set()


def _root_pcs(truth):
    return {pc for pair in truth for pc in pair}


def _no_failure_report(program, run, truth, engine):
    report = candidate_report(
        run.meta.get("program", getattr(program, "name", "?")),
        failed=False, failure_description="", truth=truth,
        candidates=[], engine=engine)
    report.notes.append("failure run did not fail; nothing to diagnose")
    return report


class AvisoEngine(Predictor):
    """Failure-avoidance constraints as a root-cause ranking."""

    capabilities = EngineCapabilities(
        name="aviso",
        description="Aviso-style event-pair constraints from failure runs",
        trains_offline=True, needs_failure_runs=10,
        multithreaded_only=True, adapts_online=False, warmable=True)

    def __init__(self, config=None, window=12, good_rank=10,
                 min_failure_support=2, max_failures=10):
        super().__init__(config)
        self.window = window
        self.good_rank = good_rank
        self.min_failure_support = min_failure_support
        self.max_failures = max_failures
        self._counts = None        # (pc, pc) -> correct-run occurrences
        self._multithreaded = None

    @property
    def trained(self):
        return self._counts is not None

    def train(self, program, n_runs=10, seed0=0, jobs=None,
              quarantine=None, **params):
        runs = collect_runs_for_seeds(
            program, range(seed0, seed0 + n_runs), jobs=jobs,
            quarantine=quarantine, **params)
        counts = defaultdict(int)
        multithreaded = False
        for run in runs:
            multithreaded = multithreaded or run.n_threads > 1
            for pair in _sampled_pairs(run, self.window):
                counts[pair] += 1
        self._counts = dict(counts)
        self._multithreaded = multithreaded

    def predict_batch(self, seqs):
        # Background rarity of the final dependence's pc pair: a pair
        # never seen in correct windows is maximally suspicious.
        return np.array([
            1.0 / (1.0 + self._counts.get(
                (seq[-1].store_pc, seq[-1].load_pc), 0))
            for seq in seqs], dtype=float)

    def _state_payload(self):
        return {"counts": [[a, b, n] for (a, b), n
                           in sorted(self._counts.items())],
                "multithreaded": self._multithreaded}

    def _load_state_payload(self, state):
        self._counts = {(a, b): n for a, b, n in state["counts"]}
        self._multithreaded = bool(state["multithreaded"])

    def report_trained(self, program, failure_seed=12345,
                       n_pruning_runs=20, pruning_seed0=100,
                       failure_params=None, correct_params=None,
                       pruning_params=None, root_cause=None, fast=True,
                       jobs=None, quarantine=None):
        first = _failure_run(program, failure_seed, failure_params)
        truth = _truth(first, root_cause)
        if not self._multithreaded:
            report = candidate_report(
                first.meta.get("program", getattr(program, "name", "?")),
                failed=first.failed,
                failure_description=(str(first.failure)
                                     if first.failure else ""),
                truth=truth, candidates=[], engine=self.name,
                applicable=False)
            report.notes.append(
                "aviso is inapplicable: single-threaded program has no "
                "inter-thread event pairs")
            return report
        root_pcs = _root_pcs(truth)
        fail_counts = defaultdict(int)
        failed = False
        used = 0
        ranking = []
        for k in range(1, self.max_failures + 1):
            run = (first if k == 1
                   else _failure_run(program, failure_seed + k - 1,
                                     failure_params))
            used = k
            if not run.failed:
                continue
            failed = True
            for pair in _window_pairs(run, self.window):
                fail_counts[pair] += 1
            ranking = AvisoDiagnoser._rank(fail_counts, self._counts, k,
                                           self.min_failure_support)
            rank = AvisoDiagnoser._root_rank(ranking, truth)
            if rank is not None and rank <= self.good_rank:
                break
        if not failed:
            return _no_failure_report(program, first, truth, self.name)
        candidates = [
            candidate(f"{a:#x}->{b:#x}", score,
                      a in root_pcs and b in root_pcs)
            for (a, b), score in ranking]
        report = candidate_report(
            first.meta.get("program", getattr(program, "name", "?")),
            failed=True,
            failure_description=(str(first.failure)
                                 if first.failure else ""),
            truth=truth, candidates=candidates, engine=self.name)
        report.notes.append(f"aviso: accumulated {used} failure runs")
        return report


class PBIEngine(Predictor):
    """Sampled-predicate Increase scoring (CBI/PBI statistics)."""

    capabilities = EngineCapabilities(
        name="pbi",
        description="PBI-style predicate Increase scoring (MESI states "
                    "and branches)",
        trains_offline=True, needs_failure_runs=1,
        multithreaded_only=False, adapts_online=False, warmable=True)

    def __init__(self, config=None, params=None):
        super().__init__(config)
        self.params = params or MachineParams()
        self._succ_true = None  # Predicate -> #correct runs true
        self._succ_obs = None   # pc -> #correct runs observed
        self._n_correct = 0

    @property
    def trained(self):
        return self._succ_true is not None

    def train(self, program, n_runs=10, seed0=0, jobs=None,
              quarantine=None, **params):
        runs = collect_runs_for_seeds(
            program, range(seed0, seed0 + n_runs), jobs=jobs,
            quarantine=quarantine, **params)
        succ_true = defaultdict(int)
        succ_obs = defaultdict(int)
        for run in runs:
            true_preds, obs_pcs = _observe(run, self.params)
            for pred in true_preds:
                succ_true[pred] += 1
            for pc in obs_pcs:
                succ_obs[pc] += 1
        self._succ_true = dict(succ_true)
        self._succ_obs = dict(succ_obs)
        self._n_correct = len(runs)

    def predict_batch(self, seqs):
        # Rarity of the final load pc across correct runs: loads the
        # correct executions never exercise score highest.
        n = max(1, self._n_correct)
        return np.array([
            1.0 - self._succ_obs.get(seq[-1].load_pc, 0) / n
            for seq in seqs], dtype=float)

    def _state_payload(self):
        return {
            "succ_true": [[p.pc, p.event, n] for p, n
                          in sorted(self._succ_true.items(),
                                    key=lambda t: (t[0].pc, t[0].event))],
            "succ_obs": [[pc, n] for pc, n
                         in sorted(self._succ_obs.items())],
            "n_correct": self._n_correct,
        }

    def _load_state_payload(self, state):
        self._succ_true = {Predicate(pc, event): n
                           for pc, event, n in state["succ_true"]}
        self._succ_obs = {pc: n for pc, n in state["succ_obs"]}
        self._n_correct = int(state["n_correct"])

    def report_trained(self, program, failure_seed=12345,
                       n_pruning_runs=20, pruning_seed0=100,
                       failure_params=None, correct_params=None,
                       pruning_params=None, root_cause=None, fast=True,
                       jobs=None, quarantine=None):
        run = _failure_run(program, failure_seed, failure_params)
        truth = _truth(run, root_cause)
        if not run.failed:
            return _no_failure_report(program, run, truth, self.name)
        root_pcs = _root_pcs(truth)
        fail_true, fail_obs = _observe(run, self.params)
        all_preds = set(fail_true) | set(self._succ_true)
        ranking = []
        for pred in all_preds:
            f_true = 1 if pred in fail_true else 0
            s_true = self._succ_true.get(pred, 0)
            f_obs = 1 if pred.pc in fail_obs else 0
            s_obs = self._succ_obs.get(pred.pc, 0)
            if f_true + s_true == 0 or f_obs + s_obs == 0:
                continue
            increase = (f_true / (f_true + s_true)
                        - f_obs / (f_obs + s_obs))
            ranking.append((pred, increase, f_true))
        ranking.sort(key=lambda t: (-t[1], -t[2], t[0].pc))
        candidates = [
            candidate(str(pred), score, pred.pc in root_pcs)
            for pred, score, _f in ranking if score > 0]
        return candidate_report(
            run.meta.get("program", getattr(program, "name", "?")),
            failed=True,
            failure_description=str(run.failure) if run.failure else "",
            truth=truth, candidates=candidates, engine=self.name)


class PSetEngine(Predictor):
    """Exact per-load valid-writer invariants; violations are the report."""

    capabilities = EngineCapabilities(
        name="pset",
        description="PSet-style per-load valid-writer invariant sets",
        trains_offline=True, needs_failure_runs=1,
        multithreaded_only=False, adapts_online=False, warmable=True)

    def __init__(self, config=None):
        super().__init__(config)
        self._invariants = None

    @property
    def trained(self):
        return self._invariants is not None

    def train(self, program, n_runs=10, seed0=0, jobs=None,
              quarantine=None, **params):
        runs = collect_runs_for_seeds(
            program, range(seed0, seed0 + n_runs), jobs=jobs,
            quarantine=quarantine, **params)
        self._invariants = PSetInvariants.train(
            runs, filter_stack=self.config.filter_stack_loads)

    def predict_batch(self, seqs):
        return np.array([
            0.0 if self._invariants.is_valid(seq[-1]) else 1.0
            for seq in seqs], dtype=float)

    def _state_payload(self):
        return {"psets": [
            [load_pc, sorted([s, int(inter)] for s, inter in writers)]
            for load_pc, writers in sorted(self._invariants.psets.items())]}

    def _load_state_payload(self, state):
        inv = PSetInvariants()
        for load_pc, writers in state["psets"]:
            inv.psets[load_pc] = {(s, bool(inter)) for s, inter in writers}
        self._invariants = inv

    def report_trained(self, program, failure_seed=12345,
                       n_pruning_runs=20, pruning_seed0=100,
                       failure_params=None, correct_params=None,
                       pruning_params=None, root_cause=None, fast=True,
                       jobs=None, quarantine=None):
        run = _failure_run(program, failure_seed, failure_params)
        truth = _truth(run, root_cause)
        if not run.failed:
            return _no_failure_report(program, run, truth, self.name)
        violations = self._invariants.violations(
            run, filter_stack=self.config.filter_stack_loads)
        # Rank violating dependences by dynamic recurrence, ties broken
        # by first occurrence in the global event order.
        stats = {}
        for rec in sorted(violations, key=lambda r: r.index):
            dep = RawDep(rec.dep.store_pc, rec.dep.load_pc,
                         rec.dep.inter_thread)
            key = (dep.store_pc, dep.load_pc)
            if key not in stats:
                stats[key] = [0, rec.index]
            stats[key][0] += 1
        ordered = sorted(stats.items(),
                         key=lambda t: (-t[1][0], t[1][1], t[0]))
        total = sum(count for count, _first in stats.values()) or 1
        candidates = [
            candidate(f"{store:#x}->{load:#x}", count / total,
                      (store, load) in truth)
            for (store, load), (count, _first) in ordered]
        report = candidate_report(
            run.meta.get("program", getattr(program, "name", "?")),
            failed=True,
            failure_description=str(run.failure) if run.failure else "",
            truth=truth, candidates=candidates, engine=self.name)
        report.notes.append(
            f"pset: {len(violations)} violating dependences over "
            f"{self._invariants.n_invariants()} invariants")
        return report
