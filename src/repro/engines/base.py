"""The ``Predictor`` protocol shared by every diagnosis engine.

The paper's Table I compares ACT's neural predictor against Aviso-,
PBI- and PSet-style schemes; this package gives all of them one
interface so the comparison is a live harness instead of one-off
analysis scripts. A :class:`Predictor`:

- ``train(program, ...)`` builds engine state from correct executions
  (the shared ``train_seed0 .. train_seed0 + n_runs - 1`` seed range);
- ``predict_batch(seqs)`` scores dependence sequences with a
  *suspicion* score in ``[0, 1]`` (higher = more likely invalid) --
  deterministic in the trained state;
- ``serialize()`` / ``deserialize()`` round-trip the trained state as
  a JSON-safe payload (``deserialize(serialize(e))`` must produce
  identical ``predict_batch`` outputs -- pinned by property tests);
- ``capabilities`` is a declarative descriptor driving the Table-I
  columns of ``repro shootout`` and the warm-cache policy;
- ``diagnose_report(program, ...)`` runs the engine's native diagnosis
  protocol end-to-end and maps the outcome onto a
  :class:`~repro.core.diagnosis.DiagnosisReport` whose ``candidates``
  list carries the engine's ranked root-cause report.

The NN engine overrides ``diagnose_report`` with a pure delegation to
:func:`~repro.core.diagnosis.diagnose_failure`, which keeps the
registry-routed NN path byte-identical to the direct one (reports,
telemetry spans, artifacts -- enforced by ``tests/test_engines.py``).
"""

from dataclasses import asdict, dataclass

from repro import faults as _faults
from repro import telemetry
from repro.common.errors import EngineError
from repro.core.config import ACTConfig
from repro.core.diagnosis import DiagnosisReport


@dataclass(frozen=True)
class EngineCapabilities:
    """What one engine needs and provides (the Table-I axes)."""

    name: str
    description: str
    #: learns a background model from correct executions
    trains_offline: bool = True
    #: failure executions consumed per diagnosis (Aviso needs several)
    needs_failure_runs: int = 1
    #: candidate space is inter-thread only (sequential bugs out of scope)
    multithreaded_only: bool = False
    #: keeps learning during deployment (ACT's adaptivity argument)
    adapts_online: bool = False
    #: serialized state is reusable across diagnoses (warm-cache eligible)
    warmable: bool = True


def candidate(key, score, hit):
    """One ranked root-cause candidate (JSON-safe)."""
    return {"key": key, "score": float(score), "hit": bool(hit)}


def candidate_report(program_name, failed, failure_description, truth,
                     candidates, engine, applicable=True, notes=()):
    """Map an engine's ranked candidates onto a DiagnosisReport.

    ``rank``/``found`` follow the same convention as the NN path: the
    1-based position of the first candidate flagged as exposing the
    ground-truth root cause.
    """
    rank = next((i for i, c in enumerate(candidates, start=1)
                 if c["hit"]), None)
    report = DiagnosisReport(
        program=program_name, failed=failed, found=rank is not None,
        rank=rank, debug_buffer_position=None, filter_pct=0.0,
        n_debug_entries=0, debug_overflowed=False,
        root_cause=set(truth) if truth else None,
        failure_description=failure_description,
        engine=engine, applicable=applicable,
        candidates=list(candidates))
    report.notes.extend(notes)
    return report


class Predictor:
    """Base class every registered engine derives from.

    Subclasses set ``capabilities`` and implement :meth:`train`,
    :meth:`predict_batch`, :meth:`_state_payload`, :meth:`load_state`
    and :meth:`report_trained`. The template :meth:`diagnose_report`
    then provides warm-state reuse, telemetry spans and the shared
    train-if-cold flow for free.
    """

    capabilities = None  # subclasses assign an EngineCapabilities

    def __init__(self, config=None):
        self.config = config or ACTConfig()

    @property
    def name(self):
        return self.capabilities.name

    def fingerprint(self):
        """JSON-safe identity of the engine *kind* (not its state).

        The serve daemon's warm cache keys on this plus the workload /
        seed / config parts, so two engines on the same workload can
        never share a cache entry.
        """
        return {"engine": self.name}

    # -- protocol: train / predict_batch / serialize / deserialize -----

    @property
    def trained(self):
        raise NotImplementedError

    def train(self, program, n_runs=10, seed0=0, jobs=None,
              quarantine=None, **params):
        """Build engine state from ``n_runs`` correct executions."""
        raise NotImplementedError

    def predict_batch(self, seqs):
        """Suspicion scores (higher = more suspicious) per sequence."""
        raise NotImplementedError

    def serialize(self):
        """JSON-safe payload of the trained state."""
        if not self.trained:
            raise EngineError(
                f"engine {self.name!r} has no trained state to serialize",
                engine=self.name)
        return {"engine": self.name, "config": asdict(self.config),
                "state": self._state_payload()}

    @classmethod
    def deserialize(cls, payload, config=None):
        """Rebuild an engine from :meth:`serialize` output."""
        if config is None and payload.get("config"):
            config = ACTConfig(**payload["config"])
        engine = cls(config=config)
        engine.load_state(payload)
        return engine

    def load_state(self, payload):
        """Instance-level inverse of :meth:`serialize`."""
        name = payload.get("engine")
        if name != self.name:
            raise EngineError(
                f"engine {self.name!r} cannot load state serialized by "
                f"{name!r}", engine=name)
        self._load_state_payload(payload["state"])

    def _state_payload(self):
        raise NotImplementedError

    def _load_state_payload(self, state):
        raise NotImplementedError

    # -- diagnosis ------------------------------------------------------

    def report_trained(self, program, failure_seed=12345,
                       n_pruning_runs=20, pruning_seed0=100,
                       failure_params=None, correct_params=None,
                       pruning_params=None, root_cause=None, fast=True,
                       jobs=None, quarantine=None):
        """Diagnose with existing state (requires :attr:`trained`)."""
        raise NotImplementedError

    def diagnose_report(self, program, trained=None,
                        n_train_runs=10, train_seed0=0,
                        failure_seed=12345, n_pruning_runs=20,
                        pruning_seed0=100, failure_params=None,
                        correct_params=None, pruning_params=None,
                        root_cause=None, fast=True, jobs=None,
                        faults=None, quarantine=None, checkpoint=None,
                        trained_sink=None, state=None, state_sink=None):
        """Train if cold, then diagnose; the engine-routed entry point.

        ``state``/``state_sink`` mirror the NN path's
        ``trained``/``trained_sink``: ``state`` is a payload from a
        previous :meth:`serialize` (training is skipped), and
        ``state_sink`` receives the serialized state once training is
        in hand -- the serve daemon's warm cache hangs off both.
        """
        if checkpoint is not None:
            raise EngineError(
                f"engine {self.name!r} does not support checkpoints "
                "(only the default nn engine is checkpointable)",
                engine=self.name)
        correct_params = dict(correct_params or {"buggy": False})
        plan = faults if faults is not None else _faults.get_plan()
        tele = telemetry.get_registry()
        with _faults.use_plan(plan):
            with tele.span("engine.diagnose", engine=self.name,
                           program=getattr(program, "name", "?")):
                if state is not None:
                    self.load_state(state)
                if not self.trained:
                    with tele.span("engine.train", engine=self.name,
                                   n_runs=n_train_runs):
                        self.train(program, n_runs=n_train_runs,
                                   seed0=train_seed0, jobs=jobs,
                                   quarantine=quarantine,
                                   **correct_params)
                    if tele.enabled:
                        tele.inc("engine.trainings")
                if state_sink is not None:
                    state_sink(self.serialize())
                report = self.report_trained(
                    program, failure_seed=failure_seed,
                    n_pruning_runs=n_pruning_runs,
                    pruning_seed0=pruning_seed0,
                    failure_params=failure_params,
                    correct_params=correct_params,
                    pruning_params=pruning_params,
                    root_cause=root_cause, fast=fast, jobs=jobs,
                    quarantine=quarantine)
                if tele.enabled:
                    tele.inc("engine.diagnoses")
                if quarantine is not None and len(quarantine):
                    report.quarantine = quarantine.report_dict()
                return report


def report_candidates(report):
    """A report's ranked candidates, derived from findings for the NN.

    Engine reports carry ``candidates`` directly; NN reports expose
    their ranked findings as ``store->load`` keys (first occurrence
    wins), which gives the ensemble a uniform key space to rank-merge.
    """
    if report.candidates:
        return list(report.candidates)
    truth = report.root_cause or set()
    out = []
    seen = set()
    for f in report.findings:
        dep = f.mismatch_dep or f.seq[-1]
        key = f"{dep.store_pc:#x}->{dep.load_pc:#x}"
        if key in seen:
            continue
        seen.add(key)
        hit = any((d.store_pc, d.load_pc) in truth
                  for d in f.seq[f.matched:])
        out.append(candidate(key, 1.0 - float(f.output), hit))
    return out
