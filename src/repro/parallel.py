"""Parallel run orchestration: fan independent units across processes.

The ACT pipeline is full of embarrassingly parallel loops whose items
share nothing: correct-run collection (each run gets its own seed),
post-failure pruning runs, per-thread offline training, and the
topology-search grid. :func:`run_tasks` executes such a loop across a
``ProcessPoolExecutor`` while keeping the *observable result identical*
to the serial loop:

- every item's inputs (seeds included) are fixed up front, so workers
  compute exactly what the serial iteration would have computed;
- failures surface as the *earliest* item's exception, matching a
  serial loop's failure;
- pool workers record telemetry into fresh child registries and ship
  snapshots back; the parent merges them in item order, reproducing the
  serial counter/histogram totals (see
  :meth:`~repro.telemetry.registry.Registry.merge_snapshot`).

This is also the pipeline's worker fault boundary:

- the active :class:`~repro.faults.FaultPlan` propagates into pool
  workers, and its ``worker_kill`` site abruptly terminates a task
  (raising :class:`~repro.common.errors.WorkerKilled`, deterministically
  per ``(task key, attempt)`` -- the per-item quarantine key, e.g. the
  run seed, so the same task dies no matter how the batch is split or
  resumed) -- the same site fires on the serial path, so serial and
  parallel execution stay result-identical;
- killed tasks are retried up to ``plan.max_retries`` times with
  exponential backoff (``plan.retry_backoff`` seconds base);
- a *genuine* worker crash (the pool breaks, e.g. a worker was
  OOM-killed) rebuilds the pool and retries the unfinished items under
  the same bounded-retry budget;
- with a :class:`~repro.faults.Quarantine`, items that exhaust their
  retries or fail with a :class:`~repro.common.errors.ReproError` are
  recorded and yield ``None`` instead of aborting the whole batch.

Work functions and items must be picklable: module-level functions with
plain-data payloads. Callers pass ``jobs=None``/``1`` for the plain
serial loop (the default everywhere) or ``jobs=N``; ``jobs<=0`` means
one worker per CPU.
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro import faults as _faults
from repro import telemetry
from repro.common.errors import ReproError, WorkerKilled


def resolve_jobs(jobs):
    """Normalise a ``--jobs`` value: None/1 -> serial, <=0 -> cpu count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _backoff(plan, attempt):
    """Sleep before retry ``attempt`` (1-based): exponential backoff."""
    if plan.retry_backoff > 0:
        time.sleep(plan.retry_backoff * 2 ** (attempt - 1))


def _invoke(payload):
    """Pool-worker trampoline: run one item, capturing child telemetry.

    Re-activates the parent's fault plan inside the worker (module
    globals do not cross the process boundary) and hosts the injected
    worker-kill site.
    """
    fn, item, capture, plan, key, attempt = payload
    with _faults.use_plan(plan):
        if plan.enabled and plan.fires("worker_kill", key, attempt):
            raise WorkerKilled(
                f"injected worker death (task {key}, attempt {attempt})",
                task_index=key, attempt=attempt)
        if not capture:
            return fn(item), None
        with telemetry.use_registry(telemetry.Registry()) as reg:
            out = fn(item)
        return out, reg.snapshot()


def _run_serial(fn, items, keys, plan, quarantine, phase, tele):
    """The serial loop, with the same kill/retry/quarantine semantics."""
    results = []
    for index, item in enumerate(items):
        attempt = 0
        while True:
            try:
                if plan.enabled and plan.fires("worker_kill", keys[index],
                                               attempt):
                    raise WorkerKilled(
                        f"injected worker death (task {keys[index]}, "
                        f"attempt {attempt})",
                        task_index=keys[index], attempt=attempt)
                results.append(fn(item))
                break
            except WorkerKilled as e:
                tele.inc("faults.worker_kills")
                if attempt >= plan.max_retries:
                    if quarantine is not None:
                        quarantine.admit(phase, keys[index], e,
                                         attempts=attempt + 1)
                        results.append(None)
                        break
                    raise
                attempt += 1
                tele.inc("parallel.retries")
                _backoff(plan, attempt)
            except ReproError as e:
                if quarantine is not None:
                    quarantine.admit(phase, keys[index], e,
                                     attempts=attempt + 1)
                    results.append(None)
                    break
                raise
    return results


def _run_pool(fn, items, keys, plan, quarantine, phase, tele, n_workers):
    """Dispatch items across a process pool with bounded retries."""
    capture = tele.enabled
    n = len(items)
    results = [None] * n
    snaps = [None] * n
    errors = {}
    pending = {i: 0 for i in range(n)}  # index -> attempt
    while pending:
        max_attempt = max(pending.values())
        if max_attempt:
            _backoff(plan, max_attempt)
        retry = {}
        pool_broke = False
        with ProcessPoolExecutor(
                max_workers=min(n_workers, len(pending))) as ex:
            futures = {
                index: ex.submit(
                    _invoke, (fn, items[index], capture, plan, keys[index],
                              attempt))
                for index, attempt in sorted(pending.items())}
            for index, future in futures.items():
                attempt = pending[index]
                try:
                    results[index], snaps[index] = future.result()
                except WorkerKilled as e:
                    tele.inc("faults.worker_kills")
                    if attempt >= plan.max_retries:
                        errors[index] = e
                    else:
                        retry[index] = attempt + 1
                        tele.inc("parallel.retries")
                except BrokenProcessPool:
                    # A real worker death: every in-flight item fails
                    # together. Rebuild the pool and re-run them under
                    # the same bounded-retry budget.
                    pool_broke = True
                    tele.inc("faults.worker_kills")
                    if attempt >= plan.max_retries:
                        errors[index] = WorkerKilled(
                            f"worker process died (task {index}, "
                            f"attempt {attempt}); retries exhausted",
                            task_index=index, attempt=attempt)
                    else:
                        retry[index] = attempt + 1
                        tele.inc("parallel.retries")
                except Exception as e:  # noqa: BLE001 - re-raised below
                    errors[index] = e
        if pool_broke:
            tele.inc("parallel.pool_restarts")
        pending = retry
    if errors:
        if quarantine is not None:
            hard = {}
            for index, e in sorted(errors.items()):
                if isinstance(e, ReproError):
                    attempts = (plan.max_retries + 1
                                if isinstance(e, WorkerKilled) else 1)
                    quarantine.admit(phase, keys[index], e,
                                     attempts=attempts)
                    results[index] = None
                else:
                    hard[index] = e
            errors = hard
        if errors:
            raise errors[min(errors)]
    return results, snaps


def run_tasks(fn, items, jobs=None, quarantine=None, phase="parallel",
              keys=None):
    """Apply ``fn`` to every item, optionally across worker processes.

    Serial (``jobs`` None/1) and parallel execution produce identical
    results, identical exceptions, and identical telemetry counter and
    histogram totals. ``fn`` must be a picklable callable of one item.

    Args:
        fn: picklable callable of one item.
        items: work items (picklable).
        jobs: worker processes (None/1 = serial, <=0 = all CPUs).
        quarantine: optional :class:`~repro.faults.Quarantine`. Items
            that fail with a :class:`~repro.common.errors.ReproError`
            (including injected faults and exhausted worker-kill
            retries) are recorded there and yield ``None`` in the
            result list instead of raising. Other exceptions always
            propagate.
        phase: quarantine phase label for failed items.
        keys: per-item identities for quarantine records (defaults to
            the item index).

    Returns the list of results in item order (``None`` holes for
    quarantined items).
    """
    items = list(items)
    keys = list(keys) if keys is not None else list(range(len(items)))
    if len(keys) != len(items):
        raise ReproError("run_tasks: keys must match items 1:1")
    plan = _faults.get_plan()
    tele = telemetry.get_registry()
    n_workers = min(resolve_jobs(jobs), len(items))
    if n_workers <= 1:
        return _run_serial(fn, items, keys, plan, quarantine, phase, tele)
    results, snaps = _run_pool(fn, items, keys, plan, quarantine, phase,
                               tele, n_workers)
    if tele.enabled:
        tele.inc("parallel.batches")
        tele.inc("parallel.tasks", len(items))
        for snap in snaps:
            if snap:
                tele.merge_snapshot(snap)
    return results
