"""Parallel run orchestration: fan independent units across processes.

The ACT pipeline is full of embarrassingly parallel loops whose items
share nothing: correct-run collection (each run gets its own seed),
post-failure pruning runs, per-thread offline training, and the
topology-search grid. :func:`run_tasks` executes such a loop across a
process pool while keeping the *observable result identical* to the
serial loop:

- every item's inputs (seeds included) are fixed up front, so workers
  compute exactly what the serial iteration would have computed;
- failures surface as the *earliest* item's exception, matching a
  serial loop's failure;
- pool workers record telemetry into fresh child registries and ship
  snapshots back; the parent merges them in item order, reproducing the
  serial counter/histogram totals (see
  :meth:`~repro.telemetry.registry.Registry.merge_snapshot`).

The pool itself is process-wide and *warm*: a single
:class:`PoolHandle` owns one ``ProcessPoolExecutor`` that is created on
first use and reused across every batch in the process -- collection,
training, topology search, corpus fan-out -- so only the first parallel
call in a process pays worker startup. Batches dispatch items in small
*chunks* (up to :data:`MAX_CHUNK` per submission) to amortise pickling
and future overhead over several work units; each item inside a chunk
still runs under its own task span and child registry, so chunking is
invisible to telemetry and to the serial-identity guarantee. Callers
whose results are dominated by bulk data can pass a
``codec=(encode, decode)`` pair -- ``encode`` runs in the worker,
``decode`` in the parent, and the serial path skips both -- e.g.
collected traces cross the process boundary as packed numpy columns
(:func:`repro.trace.columnar.pack_run`) instead of pickled per-event
dataclasses.

Tracing v2 makes the stitching *structural*: the coordinator's open
span context (trace id + span id) and its clock spec cross the process
boundary with each task, the worker tracks its spans under a
deterministic per-task scope (``b<batch>.w<key>.``), and the parent
adopts the worker's span trees as children of the dispatching span --
a ``--jobs N`` run yields one coherent trace tree whose ids depend
only on the work, never on which OS process executed it (or whether
that process was freshly spawned or warm). When the parent registry has
a flight recorder attached, workers record their own bounded event
streams and ship them home too. A task whose worker died for good
(retries exhausted, quarantined) leaves a closed span flagged
``orphaned`` at its dispatch site instead of a dangling tree.

This is also the pipeline's worker fault boundary:

- the active :class:`~repro.faults.FaultPlan` propagates into pool
  workers, and its ``worker_kill`` site abruptly terminates a task
  (raising :class:`~repro.common.errors.WorkerKilled`, deterministically
  per ``(task key, attempt)`` -- the per-item quarantine key, e.g. the
  run seed, so the same task dies no matter how the batch is split or
  resumed) -- the same site fires on the serial path, so serial and
  parallel execution stay result-identical;
- killed tasks are retried up to ``plan.max_retries`` times with
  exponential backoff (``plan.retry_backoff`` seconds base);
- a *genuine* worker crash (the pool breaks, e.g. a worker was
  OOM-killed) takes down every item in flight on that pool; the shared
  pool is rebuilt (it comes back warm for subsequent batches) and the
  unfinished items are retried under the same bounded-retry budget;
- with a :class:`~repro.faults.Quarantine`, items that exhaust their
  retries or fail with a :class:`~repro.common.errors.ReproError` are
  recorded and yield ``None`` instead of aborting the whole batch.

Work functions and items must be picklable: module-level functions with
plain-data payloads. Callers pass ``jobs=None``/``1`` for the plain
serial loop (the default everywhere) or ``jobs=N``; ``jobs<=0`` means
one worker per CPU.
"""

import atexit
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro import faults as _faults
from repro import telemetry
from repro.common.errors import ReproError, WorkerKilled
from repro.telemetry.clock import clock_from_spec, clock_spec
from repro.telemetry.events import FlightRecorder

#: Upper bound on items per pool submission. Chunking amortises pickle
#: and future overhead across work units a few milliseconds long; the
#: cap keeps retry granularity (a broken pool re-runs whole chunks) and
#: load balance reasonable.
MAX_CHUNK = 8


def resolve_jobs(jobs):
    """Normalise a ``--jobs`` value: None/1 -> serial, <=0 -> cpu count.

    This is the one shared "auto" resolution point: every caller
    (CLI flags, ``REPRO_JOBS``, presets, the serve daemon) funnels its
    raw value through here, and the resolved worker count is recorded
    as the ``parallel.jobs_resolved`` gauge so run profiles say what
    "0 = all CPUs" actually meant on this host.
    """
    if jobs is None:
        resolved = 1
    else:
        jobs = int(jobs)
        resolved = (os.cpu_count() or 1) if jobs <= 0 else jobs
    tele = telemetry.get_registry()
    if tele.enabled:
        tele.set_gauge("parallel.jobs_resolved", resolved)
    return resolved


def jobs_from_env(default=None):
    """The ``REPRO_JOBS`` environment override, unresolved.

    Returns ``default`` when the variable is unset or empty. ``0``
    means "auto" (all CPUs) exactly like ``--jobs 0`` -- the value is
    passed through so :func:`resolve_jobs` stays the single place that
    turns "auto" into a worker count.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None or not raw.strip():
        return default
    return int(raw)


def _noop(_x):
    """Warm-up probe: forces a worker process to exist and respond."""
    return None


class PoolHandle:
    """Owner of the process-wide warm worker pool.

    One instance (:func:`get_pool`) lives for the whole process; every
    parallel batch borrows its executor instead of paying
    ``ProcessPoolExecutor`` startup per call. The pool grows on demand
    (a request for more workers than it currently has rebuilds it at
    the larger size) and never shrinks; :meth:`restart` replaces a
    broken pool; :meth:`shutdown` (idempotent, also registered at
    interpreter exit) releases the workers.
    """

    def __init__(self):
        self._executor = None
        self._max_workers = 0

    @property
    def max_workers(self):
        """Workers in the current pool (0 when no pool is live)."""
        return self._max_workers

    def executor(self, n_workers):
        """The shared executor, (re)built to hold >= ``n_workers``."""
        if self._executor is None or self._max_workers < n_workers:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
            self._executor = ProcessPoolExecutor(max_workers=n_workers)
            self._max_workers = n_workers
        return self._executor

    def warm(self, n_workers):
        """Ensure ``n_workers`` live worker processes (blocking).

        Round-trips one no-op per worker so that subsequent batches
        measure steady-state dispatch, not process spawn.
        """
        ex = self.executor(n_workers)
        list(ex.map(_noop, range(n_workers), chunksize=1))
        return ex

    def restart(self):
        """Replace a (typically broken) pool with a fresh one, same size."""
        n = self._max_workers
        self.shutdown()
        if n:
            self.executor(n)

    def shutdown(self):
        """Release the pool's workers. Safe to call repeatedly."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._max_workers = 0

    def close(self):
        """Deterministic, pre-atexit teardown for long-lived owners.

        Interpreter-exit teardown (the registered atexit hook) runs
        *after* daemon signal handlers have already started unwinding,
        which is too late for a server that must drain or checkpoint
        running jobs first and *then* release its workers. Callers that
        own the process lifecycle (the ``repro serve`` daemon) call
        ``close()`` explicitly at the end of their graceful-shutdown
        sequence; the atexit hook then finds nothing left to do.
        Idempotent, and the pool may still be rebuilt afterwards by the
        next :meth:`executor` call (a restarted serve loop stays warm).
        """
        self.shutdown()


_POOL = PoolHandle()
atexit.register(_POOL.close)


def get_pool():
    """The process-wide :class:`PoolHandle` shared by all batches."""
    return _POOL


def _backoff(plan, attempt):
    """Sleep before retry ``attempt`` (1-based): exponential backoff."""
    if plan.retry_backoff > 0:
        time.sleep(plan.retry_backoff * 2 ** (attempt - 1))


def _tele_spec(tele, phase):
    """The picklable telemetry context one batch ships to its workers.

    ``(clock spec, trace id, parent span id, batch scope, phase,
    events capacity)`` -- everything a worker needs to rebuild a child
    registry whose spans and events stitch deterministically under the
    coordinator's dispatching span.
    """
    if not tele.enabled:
        return None
    open_span = tele.tracer.open_span()
    parent_id = (open_span.span_id if open_span is not None
                 else tele.tracer.remote_parent)
    events_capacity = (tele.recorder.capacity
                       if tele.recorder is not None else 0)
    return (clock_spec(tele.clock), tele.tracer.trace_id, parent_id,
            tele.tracer.next_batch_scope(), phase, events_capacity)


def _invoke_one(fn, item, tspec, plan, key, attempt):
    """Run one item in a pool worker, capturing child telemetry.

    Re-activates the parent's fault plan inside the worker (module
    globals do not cross the process boundary -- and a warm worker may
    carry a previous batch's globals) and hosts the injected
    worker-kill site.
    """
    with _faults.use_plan(plan):
        if plan.enabled and plan.fires("worker_kill", key, attempt):
            raise WorkerKilled(
                f"injected worker death (task {key}, attempt {attempt})",
                task_index=key, attempt=attempt)
        if tspec is None:
            return fn(item), None
        cspec, trace_id, parent_id, batch_scope, phase, events_cap = tspec
        reg = telemetry.Registry(preregister_catalog=False,
                                 clock=clock_from_spec(cspec))
        reg.tracer.trace_id = trace_id
        reg.tracer.remote_parent = parent_id
        reg.tracer.scope = f"{batch_scope}w{key}."
        recorder = None
        if events_cap:
            recorder = reg.attach_recorder(FlightRecorder(capacity=events_cap))
        with telemetry.use_registry(reg):
            with reg.span("parallel.task", phase=phase, key=key):
                out = fn(item)
        snap = reg.snapshot()
        snap["ops"] = reg.op_counts()
        if recorder is not None:
            snap["events"] = recorder.events()
        return out, snap


def _invoke_chunk(payload):
    """Pool-worker trampoline: run a chunk of items, tagging outcomes.

    Each item still executes independently (own task span, own child
    registry, own kill site); the chunk exists only to amortise
    dispatch overhead. Per-item outcomes come back tagged so the parent
    can apply retry/quarantine policy per item, exactly as if each had
    been submitted alone.
    """
    fn, entries, tspec, plan, encode = payload
    out = []
    for item, key, attempt in entries:
        try:
            result, snap = _invoke_one(fn, item, tspec, plan, key, attempt)
            if encode is not None:
                result = encode(result)
            out.append(("ok", result, snap))
        except WorkerKilled as e:
            out.append(("killed", e, None))
        except Exception as e:  # noqa: BLE001 - re-raised in the parent
            out.append(("error", e, None))
    return out


def _orphaned(tele, phase, key, attempts):
    """Flag a task lost for good: a closed ``orphaned`` span + an event."""
    if not tele.enabled:
        return
    tele.tracer.orphan("parallel.task", phase=phase, key=key,
                       attempts=attempts)
    tele.event("task_orphaned", phase=phase, key=key, attempts=attempts)


def _run_serial(fn, items, keys, plan, quarantine, phase, tele):
    """The serial loop, with the same kill/retry/quarantine semantics."""
    results = []
    for index, item in enumerate(items):
        attempt = 0
        while True:
            try:
                if plan.enabled and plan.fires("worker_kill", keys[index],
                                               attempt):
                    raise WorkerKilled(
                        f"injected worker death (task {keys[index]}, "
                        f"attempt {attempt})",
                        task_index=keys[index], attempt=attempt)
                with tele.span("parallel.task", phase=phase,
                               key=keys[index]):
                    results.append(fn(item))
                break
            except WorkerKilled as e:
                tele.inc("faults.worker_kills")
                if attempt >= plan.max_retries:
                    if quarantine is not None:
                        quarantine.admit(phase, keys[index], e,
                                         attempts=attempt + 1)
                        _orphaned(tele, phase, keys[index], attempt + 1)
                        results.append(None)
                        break
                    raise
                attempt += 1
                tele.inc("parallel.retries")
                _backoff(plan, attempt)
            except ReproError as e:
                if quarantine is not None:
                    quarantine.admit(phase, keys[index], e,
                                     attempts=attempt + 1)
                    _orphaned(tele, phase, keys[index], attempt + 1)
                    results.append(None)
                    break
                raise
    return results


def _chunk_size(n_items, n_workers):
    """Items per submission: fill the workers, capped at MAX_CHUNK."""
    return max(1, min(-(-n_items // n_workers), MAX_CHUNK))


def _run_pool(fn, items, keys, plan, quarantine, phase, tele, n_workers,
              codec=None):
    """Dispatch items across the warm pool with bounded retries."""
    tspec = _tele_spec(tele, phase)
    encode, decode = codec if codec is not None else (None, None)
    n = len(items)
    results = [None] * n
    snaps = [None] * n
    errors = {}
    pending = {i: 0 for i in range(n)}  # index -> attempt
    while pending:
        max_attempt = max(pending.values())
        if max_attempt:
            _backoff(plan, max_attempt)
        retry = {}
        pool_broke = False
        ex = _POOL.executor(n_workers)
        order = sorted(pending)
        size = _chunk_size(len(order), n_workers)
        chunks = [order[i:i + size] for i in range(0, len(order), size)]
        futures = []
        for chunk in chunks:
            entries = [(items[i], keys[i], pending[i]) for i in chunk]
            try:
                fut = ex.submit(_invoke_chunk,
                                (fn, entries, tspec, plan, encode))
            except BrokenProcessPool:
                # The shared pool died between batches; treat the chunk
                # like an in-flight crash below.
                fut = None
            futures.append((chunk, fut))
        for chunk, future in futures:
            try:
                if future is None:
                    raise BrokenProcessPool("pool broken at submit")
                outcomes = future.result()
            except BrokenProcessPool:
                # A real worker death: every item in flight on this
                # pool fails together. Rebuild the pool and re-run them
                # under the same bounded-retry budget.
                pool_broke = True
                for index in chunk:
                    attempt = pending[index]
                    tele.inc("faults.worker_kills")
                    if attempt >= plan.max_retries:
                        errors[index] = WorkerKilled(
                            f"worker process died (task {index}, "
                            f"attempt {attempt}); retries exhausted",
                            task_index=index, attempt=attempt)
                    else:
                        retry[index] = attempt + 1
                        tele.inc("parallel.retries")
                continue
            for index, (tag, value, snap) in zip(chunk, outcomes):
                attempt = pending[index]
                if tag == "ok":
                    results[index] = decode(value) if decode else value
                    snaps[index] = snap
                elif tag == "killed":
                    tele.inc("faults.worker_kills")
                    if attempt >= plan.max_retries:
                        errors[index] = value
                    else:
                        retry[index] = attempt + 1
                        tele.inc("parallel.retries")
                else:
                    errors[index] = value
        if pool_broke:
            tele.inc("parallel.pool_restarts")
            _POOL.restart()
        pending = retry
    if errors:
        if quarantine is not None:
            hard = {}
            for index, e in sorted(errors.items()):
                if isinstance(e, ReproError):
                    attempts = (plan.max_retries + 1
                                if isinstance(e, WorkerKilled) else 1)
                    quarantine.admit(phase, keys[index], e,
                                     attempts=attempts)
                    _orphaned(tele, phase, keys[index], attempts)
                    results[index] = None
                else:
                    hard[index] = e
            errors = hard
        if errors:
            raise errors[min(errors)]
    return results, snaps


def run_tasks(fn, items, jobs=None, quarantine=None, phase="parallel",
              keys=None, codec=None):
    """Apply ``fn`` to every item, optionally across worker processes.

    Serial (``jobs`` None/1) and parallel execution produce identical
    results, identical exceptions, and identical telemetry counter and
    histogram totals. ``fn`` must be a picklable callable of one item.

    Args:
        fn: picklable callable of one item.
        items: work items (picklable).
        jobs: worker processes (None/1 = serial, <=0 = all CPUs).
            Parallel batches share the process-wide warm pool
            (:func:`get_pool`); only the first one pays startup.
        quarantine: optional :class:`~repro.faults.Quarantine`. Items
            that fail with a :class:`~repro.common.errors.ReproError`
            (including injected faults and exhausted worker-kill
            retries) are recorded there and yield ``None`` in the
            result list instead of raising. Other exceptions always
            propagate.
        phase: quarantine phase label for failed items.
        keys: per-item identities for quarantine records (defaults to
            the item index).
        codec: optional ``(encode, decode)`` pair of module-level
            functions. ``encode`` maps a result to its wire form in the
            worker, ``decode`` inverts it in the parent; together they
            must round-trip exactly. The serial path skips both, so a
            codec can only change transfer cost, never results.

    Returns the list of results in item order (``None`` holes for
    quarantined items).
    """
    items = list(items)
    keys = list(keys) if keys is not None else list(range(len(items)))
    if len(keys) != len(items):
        raise ReproError("run_tasks: keys must match items 1:1")
    plan = _faults.get_plan()
    tele = telemetry.get_registry()
    n_workers = min(resolve_jobs(jobs), len(items))
    if n_workers <= 1:
        return _run_serial(fn, items, keys, plan, quarantine, phase, tele)
    results, snaps = _run_pool(fn, items, keys, plan, quarantine, phase,
                               tele, n_workers, codec=codec)
    if tele.enabled:
        tele.inc("parallel.batches")
        tele.inc("parallel.tasks", len(items))
        for snap in snaps:
            if not snap:
                continue
            tele.merge_snapshot(snap)
            if snap.get("spans"):
                tele.tracer.attach(snap["spans"])
            if snap.get("ops"):
                tele.merge_ops(snap["ops"])
            if tele.recorder is not None and snap.get("events"):
                tele.recorder.extend(snap["events"])
    return results
