"""Parallel run orchestration: fan independent units across processes.

The ACT pipeline is full of embarrassingly parallel loops whose items
share nothing: correct-run collection (each run gets its own seed),
post-failure pruning runs, per-thread offline training, and the
topology-search grid. :func:`run_tasks` executes such a loop across a
``ProcessPoolExecutor`` while keeping the *observable result identical*
to the serial loop:

- every item's inputs (seeds included) are fixed up front, so workers
  compute exactly what the serial iteration would have computed;
- ``Executor.map`` returns results in item order and raises the
  *earliest* item's exception first, matching a serial loop's failure;
- pool workers record telemetry into fresh child registries and ship
  snapshots back; the parent merges them in item order, reproducing the
  serial counter/histogram totals (see
  :meth:`~repro.telemetry.registry.Registry.merge_snapshot`).

Work functions and items must be picklable: module-level functions with
plain-data payloads. Callers pass ``jobs=None``/``1`` for the plain
serial loop (the default everywhere) or ``jobs=N``; ``jobs<=0`` means
one worker per CPU.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro import telemetry


def resolve_jobs(jobs):
    """Normalise a ``--jobs`` value: None/1 -> serial, <=0 -> cpu count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _invoke(payload):
    """Pool-worker trampoline: run one item, capturing child telemetry."""
    fn, item, capture = payload
    if not capture:
        return fn(item), None
    with telemetry.use_registry(telemetry.Registry()) as reg:
        out = fn(item)
    return out, reg.snapshot()


def run_tasks(fn, items, jobs=None):
    """Apply ``fn`` to every item, optionally across worker processes.

    Serial (``jobs`` None/1) and parallel execution produce identical
    results, identical exceptions, and identical telemetry counter and
    histogram totals. ``fn`` must be a picklable callable of one item.

    Returns the list of results in item order.
    """
    items = list(items)
    n_workers = min(resolve_jobs(jobs), len(items))
    if n_workers <= 1:
        return [fn(item) for item in items]
    tele = telemetry.get_registry()
    capture = tele.enabled
    payloads = [(fn, item, capture) for item in items]
    with ProcessPoolExecutor(max_workers=n_workers) as ex:
        packed = list(ex.map(_invoke, payloads))
    if tele.enabled:
        tele.inc("parallel.batches")
        tele.inc("parallel.tasks", len(items))
        for _out, snap in packed:
            if snap:
                tele.merge_snapshot(snap)
    return [out for out, _snap in packed]
