"""PBI-style sampling-based failure diagnosis.

PBI (Arulraj et al., ASPLOS 2013) samples hardware events during
production runs -- cache-coherence states observed at memory
instructions and branch outcomes -- and ranks predicates (instruction,
event) by a statistical score over successful and failing runs.

As in the paper's comparison we implement an *extreme* PBI: every
instruction is sampled in every run (no 1-in-100 sampling), 15 correct
runs and a single failure run. Scoring follows CBI/PBI:

    Increase(P) = Fail(P true) / (Fail(P true) + Succ(P true))
                - Fail(P obs)  / (Fail(P obs)  + Succ(P obs))

ranked descending, ties broken by more failing observations.
"""

from collections import defaultdict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.machine import annotate_run
from repro.sim.params import MachineParams
from repro.trace.events import EventKind
from repro.workloads.framework import run_program


@dataclass(frozen=True)
class Predicate:
    """(instruction, event) pair."""

    pc: int
    event: str  # MESI letter for memory ops; "T"/"N" for branches

    def __str__(self):
        return f"pc={self.pc:#x}:{self.event}"


@dataclass
class PBIResult:
    """Ranked predicate list for one diagnosis attempt."""

    ranking: List[Tuple[Predicate, float]]
    rank: Optional[int]
    total_predicates: int
    found: bool


def _observe(run, params):
    """Predicates observed (true) in one run, plus observed pcs."""
    ann = annotate_run(run, params)
    true_preds = set()
    observed_pcs = set()
    for event, res in zip(run.events, ann):
        if event.kind.is_memory():
            observed_pcs.add(event.pc)
            true_preds.add(Predicate(event.pc, res.state_before))
        elif event.kind == EventKind.BRANCH:
            observed_pcs.add(event.pc)
            true_preds.add(Predicate(event.pc, "T" if event.taken else "N"))
    return true_preds, observed_pcs


class PBIDiagnoser:
    """Runs the PBI protocol against a bug program."""

    def __init__(self, params=None, n_correct=15):
        self.params = params or MachineParams()
        self.n_correct = n_correct

    def diagnose(self, program, failure_seed=12345, correct_seed0=500,
                 failure_params=None, correct_params=None,
                 root_cause=None) -> PBIResult:
        failure_params = dict(failure_params or {"buggy": True})
        correct_params = dict(correct_params or {"buggy": False})

        failure_run = run_program(program, seed=failure_seed,
                                  **failure_params)
        truth = root_cause or failure_run.meta.get("root_cause") or set()
        root_pcs = {pc for pair in truth for pc in pair}

        fail_true, fail_obs = _observe(failure_run, self.params)

        succ_true = defaultdict(int)   # predicate -> #correct runs true
        succ_obs = defaultdict(int)    # pc -> #correct runs observed
        for i in range(self.n_correct):
            run = run_program(program, seed=correct_seed0 + i,
                              **correct_params)
            true_preds, obs_pcs = _observe(run, self.params)
            for pred in true_preds:
                succ_true[pred] += 1
            for pc in obs_pcs:
                succ_obs[pc] += 1

        all_preds = set(fail_true) | set(succ_true)
        ranking = []
        for pred in all_preds:
            f_true = 1 if pred in fail_true else 0
            s_true = succ_true.get(pred, 0)
            f_obs = 1 if pred.pc in fail_obs else 0
            s_obs = succ_obs.get(pred.pc, 0)
            if f_true + s_true == 0 or f_obs + s_obs == 0:
                continue
            increase = (f_true / (f_true + s_true)
                        - f_obs / (f_obs + s_obs))
            ranking.append((pred, increase, f_true))
        # Positive-score predicates are the report; rank by score, then
        # by failing observations.
        ranking.sort(key=lambda t: (-t[1], -t[2], t[0].pc))
        reported = [(p, s) for p, s, _f in ranking if s > 0]

        rank = None
        for i, (pred, _score) in enumerate(reported, start=1):
            if pred.pc in root_pcs:
                rank = i
                break
        return PBIResult(ranking=reported, rank=rank,
                         total_predicates=len(reported),
                         found=rank is not None)
