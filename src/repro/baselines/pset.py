"""PSet-style static communication invariants.

PSet (Yu & Narayanasamy, ISCA 2009) records, for every load, the exact
set of stores that may legally feed it (with inter/intra-thread
labels), extracted from training executions. At run time any dependence
outside the set is a violation.

This is the class of scheme ACT's adaptivity argument targets: the
invariants are exact, so *any* new code or new interleaving raises
violations until the whole program is re-trained. The adaptivity
experiment (Figure 7(b)) uses this as the rigid-baseline contrast.
"""

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.trace.raw import extract_raw_deps


@dataclass
class PSetInvariants:
    """Per-load valid-writer sets."""

    psets: Dict[int, Set] = field(default_factory=lambda: defaultdict(set))

    @classmethod
    def train(cls, runs, filter_stack=True):
        inv = cls()
        for run in runs:
            inv.add_run(run, filter_stack=filter_stack)
        return inv

    def add_run(self, run, filter_stack=True):
        for stream in extract_raw_deps(run, filter_stack=filter_stack).values():
            for rec in stream:
                self.psets[rec.dep.load_pc].add(
                    (rec.dep.store_pc, rec.dep.inter_thread))

    def is_valid(self, dep):
        """True when the dependence matches a trained invariant."""
        return (dep.store_pc, dep.inter_thread) in self.psets.get(
            dep.load_pc, set())

    def violations(self, run, filter_stack=True):
        """All dependence records of ``run`` violating the invariants."""
        out = []
        for stream in extract_raw_deps(run, filter_stack=filter_stack).values():
            out.extend(rec for rec in stream if not self.is_valid(rec.dep))
        return out

    def violation_rate(self, run, filter_stack=True):
        """Fraction of dynamic dependences flagged in ``run``."""
        total = 0
        bad = 0
        for stream in extract_raw_deps(run, filter_stack=filter_stack).values():
            for rec in stream:
                total += 1
                bad += not self.is_valid(rec.dep)
        return bad / total if total else 0.0

    def n_invariants(self):
        return sum(len(s) for s in self.psets.values())
