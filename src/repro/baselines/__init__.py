"""Comparison schemes from the paper's evaluation.

- :mod:`repro.baselines.pbi` -- PBI-style sampling diagnosis: per
  instruction, sample hardware events (MESI state at memory accesses,
  branch outcomes) across correct and failing runs and rank predicates
  by a CBI/PBI statistical score. We implement the paper's "extreme"
  variant that samples *every* instruction.
- :mod:`repro.baselines.aviso` -- Aviso-style constraint learning from
  failure runs: candidate event-pair constraints harvested near the
  failure point, refined as more failures are observed. Needs at least
  one (usually several) failure reproductions and only works for
  multi-threaded programs.
- :mod:`repro.baselines.pset` -- PSet-style static communication
  invariants (exact valid-writer sets per load), the class of scheme
  ACT's adaptivity argument is made against.
"""

from repro.baselines.aviso import AvisoDiagnoser, AvisoResult
from repro.baselines.pbi import PBIDiagnoser, PBIResult
from repro.baselines.pset import PSetInvariants

__all__ = [
    "AvisoDiagnoser",
    "AvisoResult",
    "PBIDiagnoser",
    "PBIResult",
    "PSetInvariants",
]
