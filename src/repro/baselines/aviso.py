"""Aviso-style failure-avoidance constraint learning.

Aviso (Lucia & Ceze, ASPLOS 2013) observes *failing* executions and
hypothesises scheduling constraints -- ordered pairs of inter-thread
events that, when the second is delayed, avoid the failure. Candidates
are event pairs observed in a window before the failure point; their
plausibility grows as they recur across failure runs and shrink when
they also occur in successful runs.

For the diagnosis comparison (Table V) we use the constraint ranking as
the root-cause report, exactly as the paper does: "it can be used to
diagnose a failure by inspecting the constraints Aviso finds very
likely to be related to the failure". The two structural limits the
paper exercises carry over:

- at least one failure run is required, and the ranking only becomes
  discriminative with several (the paper feeds up to 10);
- only inter-thread event pairs exist, so sequential bugs are out of
  scope.
"""

from collections import defaultdict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.workloads.framework import run_program


@dataclass
class AvisoResult:
    """Outcome of the Aviso protocol for one bug."""

    rank: Optional[int]
    n_failures_used: int
    found: bool
    applicable: bool
    ranking: List[Tuple[Tuple[int, int], float]] = field(default_factory=list)


def _window_pairs(run, window):
    """Ordered inter-thread memory-event pc pairs near the failure."""
    events = [e for e in run.events if e.kind.is_memory()][-window:]
    pairs = set()
    for i, a in enumerate(events):
        for b in events[i + 1:]:
            if a.tid != b.tid:
                pairs.add((a.pc, b.pc))
    return pairs


class AvisoDiagnoser:
    """Runs the Aviso protocol: accumulate failure runs, rank pairs."""

    def __init__(self, window=12, n_correct=15, good_rank=10,
                 min_failure_support=2):
        self.window = window
        self.n_correct = n_correct
        # A constraint "finds" the bug once it appears at or above this
        # rank; until then Aviso asks for another failure run.
        self.good_rank = good_rank
        # A candidate only becomes a reportable constraint once it has
        # recurred in this many failure runs -- Aviso's event-pair model
        # cannot distinguish signal from coincidence with a single
        # failure, which is why the paper feeds it multiple failures.
        self.min_failure_support = min_failure_support

    def diagnose(self, program, max_failures=10, failure_seed0=900,
                 correct_seed0=300, failure_params=None,
                 correct_params=None, root_cause=None) -> AvisoResult:
        failure_params = dict(failure_params or {"buggy": True})
        correct_params = dict(correct_params or {"buggy": False})

        # Correct-run statistics: how often each pair occurs anyway.
        correct_counts = defaultdict(int)
        multithreaded = None
        for i in range(self.n_correct):
            run = run_program(program, seed=correct_seed0 + i,
                              **correct_params)
            if multithreaded is None:
                multithreaded = run.n_threads > 1
            for pair in _sampled_pairs(run, self.window):
                correct_counts[pair] += 1

        if not multithreaded:
            return AvisoResult(rank=None, n_failures_used=0, found=False,
                               applicable=False)

        truth = None
        fail_counts = defaultdict(int)
        for k in range(1, max_failures + 1):
            run = run_program(program, seed=failure_seed0 + k,
                              **failure_params)
            if truth is None:
                truth = root_cause or run.meta.get("root_cause") or set()
            if not run.failed:
                continue
            for pair in _window_pairs(run, self.window):
                fail_counts[pair] += 1

            ranking = self._rank(fail_counts, correct_counts, k,
                                 self.min_failure_support)
            rank = self._root_rank(ranking, truth)
            if rank is not None and rank <= self.good_rank:
                return AvisoResult(rank=rank, n_failures_used=k, found=True,
                                   applicable=True, ranking=ranking)

        ranking = self._rank(fail_counts, correct_counts, max_failures,
                             self.min_failure_support)
        rank = self._root_rank(ranking, truth or set())
        return AvisoResult(rank=rank, n_failures_used=max_failures,
                           found=rank is not None, applicable=True,
                           ranking=ranking)

    @staticmethod
    def _rank(fail_counts, correct_counts, n_failures, min_support=2):
        ranking = []
        for pair, f in fail_counts.items():
            if f < min_support:
                continue
            c = correct_counts.get(pair, 0)
            # Recur-in-failure, rare-in-success score.
            score = (f / n_failures) / (1.0 + c)
            ranking.append((pair, score))
        ranking.sort(key=lambda t: (-t[1], t[0]))
        return ranking

    @staticmethod
    def _root_rank(ranking, truth):
        root_pcs = {pc for pair in truth for pc in pair}
        for i, (pair, _score) in enumerate(ranking, start=1):
            if pair[0] in root_pcs and pair[1] in root_pcs:
                return i
        return None


def _sampled_pairs(run, window):
    """Pairs from sliding windows of a correct run (background rates)."""
    events = [e for e in run.events if e.kind.is_memory()]
    pairs = set()
    step = max(1, window // 2)
    for start in range(0, max(1, len(events) - window + 1), step):
        chunk = events[start:start + window]
        for i, a in enumerate(chunk):
            for b in chunk[i + 1:]:
                if a.tid != b.tid:
                    pairs.add((a.pc, b.pc))
    return pairs
