"""Batched replay fast path for production-run deployment.

:func:`repro.core.deploy.deploy_on_run` replays a trace one dependence
at a time through :meth:`ACTModule.process_dep` -- faithful to the
hardware, but Python-loop bound. This module replays the same trace in
chunks: while an AM sits in TESTING mode its weights cannot change, so a
whole chunk of that thread's dependence stream can be encoded with
:meth:`DepEncoder.encode_windows` and scored with
:meth:`OneHiddenLayerNet.predict_batch_exact` in a handful of numpy
calls, then committed dependence-by-dependence against the cheap
bookkeeping (debug buffer, invalid counter, check windows).

The result is **bit-identical** to the scalar replay -- same debug
entries, same counters, same mode switches, same window rates -- because

- ``predict_batch_exact`` recomputes any row whose pre-activation lands
  near a sigmoid-table rounding boundary with the exact scalar kernel,
  so batched outputs equal per-dependence outputs everywhere;
- the commit loop mirrors ``process_dep``'s bookkeeping order exactly,
  and stops at the first mode switch out of TESTING;
- anything that is not steady-state TESTING (warm-up, online TRAINING
  stretches) falls back to the scalar ``process_dep`` until the module
  returns to TESTING.

Per-thread streams are replayed independently (an AM only ever sees its
own thread's dependences), and prediction records are re-sorted by their
global dependence ordinal when callers ask for them.
"""

from repro import telemetry
from repro.core.act_module import Mode, PredictionRecord
from repro.core.buffers import DebugEntry
from repro.core.deploy import DeploymentResult
from repro.trace.raw import RawDepExtractor

DEFAULT_CHUNK_SIZE = 1024


def replay_run(trained, run, keep_records=False,
               chunk_size=DEFAULT_CHUNK_SIZE):
    """Replay ``run`` through per-thread AMs using chunked batch scoring.

    Drop-in equivalent of :func:`repro.core.deploy.deploy_on_run`: the
    returned :class:`DeploymentResult` carries AMs in bit-identical
    end-of-run state (weights, buffers, stats, mode).
    """
    cfg = trained.config
    modules = {tid: trained.make_module(tid) for tid in range(run.n_threads)}
    extractor = RawDepExtractor(filter_stack=cfg.filter_stack_loads)
    result = DeploymentResult(modules=modules)

    # Phase 1: one pass over the event stream, demultiplexing RAW
    # dependences into per-thread streams (the per-core AM feed).
    streams = {}
    ordinals = {} if keep_records else None
    for index, event in enumerate(run.events):
        rec = extractor.feed(event, index=index)
        if rec is None:
            continue
        if rec.tid not in modules:  # thread spawned beyond the trained set
            modules[rec.tid] = trained.make_module(rec.tid)
        streams.setdefault(rec.tid, []).append(rec.dep)
        if keep_records:
            ordinals.setdefault(rec.tid, []).append(result.n_deps)
        result.n_deps += 1

    # Phase 2: chunked replay, one thread at a time.
    collected = [] if keep_records else None
    for tid in sorted(streams):
        if keep_records:
            ords = ordinals[tid]

            def collect(j, rec, _ords=ords):
                collected.append((_ords[j], rec))
        else:
            collect = None
        replay_stream(modules[tid], streams[tid], chunk_size=chunk_size,
                      collect=collect)
    if keep_records:
        collected.sort(key=lambda item: item[0])
        result.records = [rec for _, rec in collected]

    tele = telemetry.get_registry()
    if tele.enabled:
        tele.inc("deploy.runs")
        tele.inc("deploy.fast_runs")
        tele.inc("deploy.deps", result.n_deps)
    return result


def replay_stream(module, deps, chunk_size=DEFAULT_CHUNK_SIZE, collect=None):
    """Replay one thread's dependence stream through its AM.

    TESTING stretches are scored in batched chunks; everything else
    (TRAINING stretches, where each prediction may update the weights)
    runs through the scalar :meth:`ACTModule.process_dep`. ``collect``,
    when given, receives ``(stream_index, PredictionRecord)`` for every
    dependence that formed a prediction.
    """
    if chunk_size < 1:
        chunk_size = DEFAULT_CHUNK_SIZE
    n = len(deps)
    tele = telemetry.get_registry()
    i = 0
    while i < n:
        if module.mode is Mode.TESTING:
            i += _replay_chunk_testing(
                module, deps, i, min(i + chunk_size, n), tele, collect)
        else:
            n_scalar = 0
            while i < n and module.mode is not Mode.TESTING:
                pred = module.process_dep(deps[i])
                if collect is not None and pred is not None:
                    collect(i, pred)
                i += 1
                n_scalar += 1
            if tele.enabled and n_scalar:
                tele.inc("fastpath.scalar_deps", n_scalar)


def _replay_chunk_testing(module, deps, start, end, tele, collect):
    """Score ``deps[start:end]`` in one batch while the AM is TESTING.

    Returns how many dependences were committed -- the full chunk, or
    fewer when a check window flipped the AM out of TESTING mid-chunk
    (the remainder is replayed by the caller under the new mode).
    """
    cfg = module.config
    seq_len = cfg.seq_len
    stats = module.stats
    chunk = deps[start:end]

    # Prefix the chunk with the newest buffered dependences so the first
    # windows straddling the chunk boundary (or the warm-up edge) come
    # out exactly as the scalar path would form them.
    pre = module.input_buffer.tail(seq_len - 1)
    n_pre = len(pre)
    combined = pre + list(chunk)
    first = max(0, seq_len - 1 - n_pre)  # first chunk pos that predicts

    n_exact = 0
    if len(combined) >= seq_len:
        xs = module.encoder.encode_windows(combined, seq_len)
        outputs, n_exact = module.net.predict_batch_exact(xs)
    else:
        outputs = None  # whole chunk is warm-up: no prediction forms

    committed = 0
    n_pred = 0
    n_inv = 0
    mode_exit = False
    for p in range(len(chunk)):
        committed = p + 1
        stats.deps_processed += 1
        if p < first:
            continue  # warm-up: scalar path returns before windowing
        row = n_pre + p - (seq_len - 1)
        output = float(outputs[row])
        invalid = output < 0.5
        stats.predictions += 1
        n_pred += 1
        seq = None
        if invalid or collect is not None:
            seq = tuple(combined[row:row + seq_len])
        if invalid:
            module.debug_buffer.log(DebugEntry(
                seq=seq, output=output, index=stats.predictions,
                tid=module.tid))
            module.invalid_counter += 1
            stats.invalid_predictions += 1
            n_inv += 1
        module._window_count += 1
        if module._window_count >= cfg.check_window:
            module._check_misprediction_rate()
            mode_exit = module.mode is not Mode.TESTING
        if collect is not None:
            # Record mode *after* the window check, as process_dep does
            # (a mode-flipping dependence reports the new mode).
            collect(start + p, PredictionRecord(
                seq=seq, output=output, predicted_invalid=invalid,
                mode=module.mode, index=stats.predictions))
        if mode_exit:
            break

    module.input_buffer.extend(chunk[:committed])

    if tele.enabled:
        tele.inc("act.deps_processed", committed)
        tele.inc("fastpath.chunks")
        tele.observe("fastpath.chunk_size", committed)
        if n_pred:
            tele.inc("act.predictions", n_pred)
            tele.inc("fastpath.batched_predictions", n_pred)
        if n_inv:
            tele.inc("act.invalid_predictions", n_inv)
        if n_exact:
            tele.inc("fastpath.exact_recomputes", n_exact)
        if mode_exit:
            tele.inc("fastpath.chunk_mode_exits")
    return committed
