"""End-to-end failure diagnosis (the full ACT workflow of Figure 1).

1. Offline-train from correct runs (or reuse a provided TrainedACT).
2. Execute the failure run, replaying its dependences through per-core
   ACT Modules in online testing/training mode.
3. After the failure, collect the Debug Buffers, build a Correct Set
   from ~20 fresh correct runs, prune and rank.
4. Report where the ground-truth root-cause dependence landed.

Resilience hooks (all inert by default, zero-fault runs are
bit-identical to a plain call):

- ``faults``: a :class:`~repro.faults.FaultPlan` activated for the whole
  diagnosis; its injected damage is absorbed by the quarantine instead
  of aborting the pipeline.
- ``quarantine``: a :class:`~repro.faults.Quarantine` that records every
  skipped run / healed module; attached to the report when non-empty.
- ``checkpoint``: a path (or open :class:`~repro.faults.Checkpoint`)
  holding checksummed phase snapshots -- trained weights, per-run
  pruning sequences, and the final report -- so a killed diagnosis can
  be resumed and produce the identical report without redoing finished
  phases.
"""

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro import faults as _faults
from repro import telemetry
from repro.common.errors import ConfigError, ReproError
from repro.core import policy as _policy
from repro.core.config import ACTConfig
from repro.core.deploy import deploy_on_run
from repro.core.offline import (OfflineTrainer, TrainedACT,
                                collect_runs_for_seeds,
                                sequences_from_payload, sequences_to_payload)
from repro.core.postprocess import CorrectSet, postprocess, run_sequences
from repro.faults import Checkpoint
from repro.parallel import resolve_jobs
from repro.workloads.framework import run_program

#: First seed of the contiguous training-run range. Shared with callers
#: that key caches on trained state (e.g. the serve daemon's warm-state
#: cache) so the cache key can never drift from the actual default.
DEFAULT_TRAIN_SEED0 = 0


@dataclass
class DiagnosisReport:
    """Everything Table V reports for one bug, plus diagnostics."""

    program: str
    failed: bool
    found: bool
    rank: Optional[int]
    debug_buffer_position: Optional[int]
    filter_pct: float
    n_debug_entries: int
    debug_overflowed: bool
    findings: list = field(default_factory=list)
    root_cause: Optional[set] = None
    failure_description: str = ""
    n_deps: int = 0
    n_invalid: int = 0
    mode_switches: int = 0
    notes: list = field(default_factory=list)
    quarantine: Optional[dict] = None
    #: name of the engine that produced this report; ``None`` for the
    #: historical direct NN path (keeps pre-registry reports equal).
    engine: Optional[str] = None
    #: False when the engine's candidate space cannot express this bug
    #: (e.g. Aviso on a single-threaded program).
    applicable: bool = True
    #: engine-native ranked candidates ``{"key", "score", "hit"}``;
    #: empty for NN reports, whose ranking lives in ``findings``.
    candidates: list = field(default_factory=list)

    def top(self, k=5):
        return self.findings[:k]


def _fingerprint(program, config, n_train_runs, train_seed0, failure_seed,
                 n_pruning_runs, pruning_seed0, failure_params,
                 correct_params, pruning_params, root_cause, policy=None):
    """Checkpoint identity for one diagnosis: everything that shapes the
    result. ``jobs``/``fast`` are excluded -- they never change outputs,
    so a serial run may resume a parallel one and vice versa. A disabled
    policy is elided so pre-policy checkpoints keep resuming."""
    fp = {
        "program": getattr(program, "name", "?"),
        "config": asdict(config),
        "n_train_runs": n_train_runs, "train_seed0": train_seed0,
        "failure_seed": failure_seed,
        "n_pruning_runs": n_pruning_runs, "pruning_seed0": pruning_seed0,
        "failure_params": failure_params, "correct_params": correct_params,
        "pruning_params": pruning_params,
        "root_cause": (sorted([int(s), int(l)] for s, l in root_cause)
                       if root_cause else None),
    }
    if policy is not None and policy.enabled:
        fp["policy"] = policy.fingerprint()
    return fp


def _report_to_payload(report):
    """JSON-safe snapshot of a report (checkpoint "report" phase)."""
    return {
        "program": report.program,
        "failed": report.failed,
        "found": report.found,
        "rank": report.rank,
        "debug_buffer_position": report.debug_buffer_position,
        "filter_pct": float(report.filter_pct),
        "n_debug_entries": report.n_debug_entries,
        "debug_overflowed": report.debug_overflowed,
        "findings": [
            {"seq": sequences_to_payload([f.seq])[0],
             "matched": f.matched, "output": float(f.output),
             "tid": f.tid, "index": f.index}
            for f in report.findings],
        "root_cause": (sorted([int(s), int(l)] for s, l in report.root_cause)
                       if report.root_cause else None),
        "failure_description": report.failure_description,
        "n_deps": report.n_deps,
        "n_invalid": report.n_invalid,
        "mode_switches": report.mode_switches,
        "notes": list(report.notes),
    }


def _report_from_payload(payload):
    """Inverse of :func:`_report_to_payload` (exact: float repr survives
    the JSON round trip bit-for-bit)."""
    from repro.core.postprocess import RankedFinding
    findings = [
        RankedFinding(seq=sequences_from_payload([f["seq"]])[0],
                      matched=f["matched"], output=f["output"],
                      tid=f["tid"], index=f["index"])
        for f in payload["findings"]]
    root_cause = (set((s, l) for s, l in payload["root_cause"])
                  if payload["root_cause"] else None)
    return DiagnosisReport(
        program=payload["program"], failed=payload["failed"],
        found=payload["found"], rank=payload["rank"],
        debug_buffer_position=payload["debug_buffer_position"],
        filter_pct=payload["filter_pct"],
        n_debug_entries=payload["n_debug_entries"],
        debug_overflowed=payload["debug_overflowed"],
        findings=findings, root_cause=root_cause,
        failure_description=payload["failure_description"],
        n_deps=payload["n_deps"], n_invalid=payload["n_invalid"],
        mode_switches=payload["mode_switches"],
        notes=list(payload["notes"]))


def _aborted_report(program, error, quarantine):
    """Terminal report for a diagnosis whose training phase was lost."""
    report = DiagnosisReport(
        program=getattr(program, "name", "?"), failed=False, found=False,
        rank=None, debug_buffer_position=None, filter_pct=0.0,
        n_debug_entries=0, debug_overflowed=False)
    report.notes.append(f"offline training aborted: {error}")
    if quarantine is not None and len(quarantine):
        report.quarantine = quarantine.report_dict()
    return report


def diagnose_failure(program, config=None, trained=None,
                     n_train_runs=10, train_seed0=DEFAULT_TRAIN_SEED0,
                     failure_seed=12345,
                     n_pruning_runs=20, pruning_seed0=100,
                     failure_params=None, correct_params=None,
                     pruning_params=None, root_cause=None,
                     fast=True, jobs=None,
                     faults=None, quarantine=None, checkpoint=None,
                     trained_sink=None, engine=None, engine_state=None,
                     engine_state_sink=None, policy=None):
    """Diagnose ``program``'s failure with the full ACT pipeline.

    Args:
        program: a workload :class:`~repro.workloads.framework.Program`.
            Bug programs take a ``buggy`` parameter; correct runs are
            produced with ``buggy=False`` and the failure run with
            ``buggy=True`` unless overridden via the param dicts.
        config: :class:`ACTConfig` (default config when omitted).
        trained: reuse an existing :class:`TrainedACT` (skips step 1).
        failure_params: params for the failure execution
            (default ``{"buggy": True}``).
        correct_params: params for training executions
            (default ``{"buggy": False}``).
        pruning_params: params for the post-failure pruning runs.
            Defaults to ``correct_params``; pass different params when
            the correct runs must cover code the training lacked (the
            paper's new-code protocol: pruning traces "contain RAW
            dependences from the code sections where the dependence
            sequences of the Debug Buffer belong").
        root_cause: override the program's ground-truth dependence keys.
        fast: replay the failure run through the batched fast path
            (bit-identical to the scalar replay; ``fast=False`` forces
            the reference per-dependence path). An active fault plan
            forces the scalar path regardless.
        jobs: run independent units (correct-run collection, pruning
            runs, offline training) across ``jobs`` worker processes.
            ``None``/1 keeps everything serial; results are identical
            either way.
        faults: :class:`~repro.faults.FaultPlan` to activate for the
            whole diagnosis (defaults to the ambient plan; the zero
            plan is a no-op and preserves bit-identical output).
        quarantine: :class:`~repro.faults.Quarantine` collecting
            skip-and-report records for faulted runs; when provided,
            injected faults degrade coverage instead of raising.
        checkpoint: path (or open :class:`~repro.faults.Checkpoint`)
            for crash-resumable phase snapshots; a finished phase found
            there is reused instead of recomputed.
        trained_sink: optional callable invoked with the
            :class:`TrainedACT` once training state is in hand (freshly
            trained or reloaded). The serve daemon's warm-state cache
            hangs off this hook; it never changes the report.
        engine: registered engine name (see :mod:`repro.engines`). The
            call routes through the registry; ``"nn"`` delegates
            straight back here, byte-identically. ``None`` (default)
            keeps the historical direct path.
        engine_state: a payload from ``Predictor.serialize`` to warm-
            start the chosen engine (skips its training phase).
        engine_state_sink: callable receiving the engine's serialized
            state once training is in hand (the engine-generic analogue
            of ``trained_sink``).
        policy: :class:`~repro.core.policy.PolicySpec` governing
            adaptive tracking during the failure-run deployment
            (defaults to the ambient policy; a disabled policy is a
            no-op and preserves bit-identical output). NN path only:
            an enabled policy with a non-``"nn"`` engine raises
            :class:`ConfigError`. Training and pruning runs are never
            sampled -- only the production deployment is.

    Returns:
        :class:`DiagnosisReport`.
    """
    active_policy = policy if policy is not None else _policy.get_policy()
    if engine is not None and engine != "nn" and active_policy.enabled:
        raise ConfigError(
            f"adaptive policy is NN-path-only; engine {engine!r} does "
            "not support --policy")
    if engine is not None:
        from repro.engines.registry import create

        # The "nn" engine delegates straight back to this function; the
        # ambient context carries the policy across that hop.
        with _policy.use_policy(active_policy):
            return create(engine, config=config).diagnose_report(
                program, trained=trained, n_train_runs=n_train_runs,
                train_seed0=train_seed0, failure_seed=failure_seed,
                n_pruning_runs=n_pruning_runs, pruning_seed0=pruning_seed0,
                failure_params=failure_params, correct_params=correct_params,
                pruning_params=pruning_params, root_cause=root_cause,
                fast=fast, jobs=jobs, faults=faults, quarantine=quarantine,
                checkpoint=checkpoint, trained_sink=trained_sink,
                state=engine_state, state_sink=engine_state_sink)
    config = config or ACTConfig()
    failure_params = dict(failure_params or {"buggy": True})
    correct_params = dict(correct_params or {"buggy": False})
    pruning_params = dict(pruning_params if pruning_params is not None
                          else correct_params)
    plan = faults if faults is not None else _faults.get_plan()
    if checkpoint is not None and not isinstance(checkpoint, Checkpoint):
        fingerprint = _fingerprint(
            program, config, n_train_runs, train_seed0, failure_seed,
            n_pruning_runs, pruning_seed0, failure_params, correct_params,
            pruning_params, root_cause, policy=active_policy)
        checkpoint = Checkpoint.open(checkpoint, "diagnosis", fingerprint)
    tele = telemetry.get_registry()
    with _faults.use_plan(plan), _policy.use_policy(active_policy):
        with tele.span("diagnose", program=getattr(program, "name", "?")):
            return _diagnose_phases(
                program, config, trained, tele, n_train_runs, train_seed0,
                failure_seed, n_pruning_runs, pruning_seed0, failure_params,
                correct_params, pruning_params, root_cause, fast, jobs,
                quarantine, checkpoint, trained_sink)


def _diagnose_phases(program, config, trained, tele, n_train_runs,
                     train_seed0, failure_seed, n_pruning_runs,
                     pruning_seed0, failure_params, correct_params,
                     pruning_params, root_cause, fast=True, jobs=None,
                     quarantine=None, checkpoint=None, trained_sink=None):
    if checkpoint is not None:
        cached = checkpoint.get("report")
        if cached is not None:
            report = _report_from_payload(cached)
            if quarantine is not None and len(quarantine):
                report.quarantine = quarantine.report_dict()
            return report

    if trained is None:
        cached = checkpoint.get("trained") if checkpoint is not None else None
        if cached is not None:
            trained = TrainedACT.from_payload(cached, config)
        else:
            try:
                with tele.span("diagnose.offline_train",
                               n_runs=n_train_runs):
                    trainer = OfflineTrainer(config=config)
                    trained = trainer.train(program, n_runs=n_train_runs,
                                            seed0=train_seed0, jobs=jobs,
                                            quarantine=quarantine,
                                            **correct_params)
            except ReproError as e:
                if quarantine is None:
                    raise
                return _aborted_report(program, e, quarantine)
            if checkpoint is not None:
                checkpoint.put("trained", trained.to_payload())
    if trained_sink is not None:
        trained_sink(trained)

    # --- The production failure run ----------------------------------
    with tele.span("diagnose.failure_run", seed=failure_seed):
        failure_run = run_program(program, seed=failure_seed,
                                  **failure_params)
    truth = root_cause or failure_run.meta.get("root_cause")
    report = DiagnosisReport(
        program=failure_run.meta.get("program", getattr(program, "name", "?")),
        failed=failure_run.failed, found=False, rank=None,
        debug_buffer_position=None, filter_pct=0.0, n_debug_entries=0,
        debug_overflowed=False, root_cause=truth,
        failure_description=str(failure_run.failure) if failure_run.failure else "")
    if not failure_run.failed:
        report.notes.append("failure run did not fail; nothing to diagnose")
        if checkpoint is not None:
            checkpoint.put("report", _report_to_payload(report))
        return report
    if not truth:
        report.notes.append("program provides no ground-truth root cause")

    with tele.span("diagnose.deploy"):
        deployment = deploy_on_run(trained, failure_run, fast=fast,
                                   quarantine=quarantine)
    report.n_deps = deployment.n_deps
    report.n_invalid = deployment.n_invalid
    report.mode_switches = deployment.n_mode_switches
    active_policy = _policy.get_policy()
    if active_policy.enabled:
        report.notes.append(
            f"adaptive policy active ({active_policy.describe()}): "
            f"shed {deployment.n_shed} of {deployment.n_deps} deps, "
            f"tightened {deployment.n_tightened}")
    if tele.enabled:
        tele.inc("diagnose.deps_observed", deployment.n_deps)
        tele.inc("diagnose.invalids_flagged", deployment.n_invalid)
        tele.inc("diagnose.mode_switches", deployment.n_mode_switches)

    # Table V "Debug Buf. Pos.": depth of the root cause from the newest
    # entry of its core's buffer at failure time.
    if truth:
        def is_root(entry):
            return any((d.store_pc, d.load_pc) in truth for d in entry.seq)
        positions = [m.debug_buffer.position_from_newest(is_root)
                     for m in deployment.modules.values()]
        positions = [p for p in positions if p is not None]
        report.debug_buffer_position = min(positions) if positions else None
        report.debug_overflowed = any(
            m.debug_buffer.overflowed for m in deployment.modules.values())
        if report.debug_buffer_position is None and report.debug_overflowed:
            report.notes.append(
                "root cause not in debug buffer; buffer overflowed -- "
                "retry with a larger debug_buffer (the MySQL#1 case)")

    # --- Offline post-processing --------------------------------------
    with tele.span("diagnose.pruning_runs", n_runs=n_pruning_runs):
        correct_set = CorrectSet(config.seq_len,
                                 filter_stack=config.filter_stack_loads)
        seeds = list(range(pruning_seed0, pruning_seed0 + n_pruning_runs))
        if checkpoint is None:
            pruning_runs = collect_runs_for_seeds(program, seeds, jobs=jobs,
                                                  quarantine=quarantine,
                                                  **pruning_params)
            for run in pruning_runs:
                if run is not None:
                    correct_set.add_run(run)
        else:
            _pruning_with_checkpoint(program, config, seeds, jobs,
                                     quarantine, checkpoint, pruning_params,
                                     correct_set)

    with tele.span("diagnose.ranking"):
        entries = deployment.debug_entries()
        report.n_debug_entries = len(entries)
        result = postprocess(entries, correct_set)
    report.findings = result.findings
    report.filter_pct = result.filter_pct
    if truth:
        report.rank = result.rank_of_dep(truth)
        report.found = report.rank is not None
    if tele.enabled:
        tele.inc("diagnose.runs")
        if report.found:
            tele.inc("diagnose.found")
    if quarantine is not None and len(quarantine):
        report.quarantine = quarantine.report_dict()
    if checkpoint is not None:
        checkpoint.put("report", _report_to_payload(report))
    return report


def _pruning_with_checkpoint(program, config, seeds, jobs, quarantine,
                             checkpoint, pruning_params, correct_set):
    """Collect pruning runs with per-seed checkpoint snapshots.

    Each finished run's dependence sequences are persisted under the
    ``pruning:<seed>`` phase; a resumed diagnosis replays the cached
    sequences and collects only the missing seeds. Serial collection
    saves after every seed (a crash loses at most one run); parallel
    collection saves the whole batch once.
    """
    seq_by_seed = {}
    pending = []
    for seed in seeds:
        cached = checkpoint.get(f"pruning:{seed}")
        if cached is not None:
            seq_by_seed[seed] = sequences_from_payload(cached["sequences"])
        else:
            pending.append(seed)
    if pending and resolve_jobs(jobs) <= 1:
        for seed in pending:
            run = collect_runs_for_seeds(program, [seed],
                                         quarantine=quarantine,
                                         **pruning_params)[0]
            if run is None:
                continue
            seqs = run_sequences(run, config.seq_len,
                                 filter_stack=config.filter_stack_loads)
            seq_by_seed[seed] = seqs
            checkpoint.put(f"pruning:{seed}",
                           {"sequences": sequences_to_payload(seqs)})
    elif pending:
        runs = collect_runs_for_seeds(program, pending, jobs=jobs,
                                      quarantine=quarantine,
                                      **pruning_params)
        for seed, run in zip(pending, runs):
            if run is None:
                continue
            seqs = run_sequences(run, config.seq_len,
                                 filter_stack=config.filter_stack_loads)
            seq_by_seed[seed] = seqs
            checkpoint.put(f"pruning:{seed}",
                           {"sequences": sequences_to_payload(seqs)},
                           save=False)
        checkpoint.save()
    for seed in seeds:
        if seed in seq_by_seed:
            correct_set.add_sequences(seq_by_seed[seed])


def diagnose_with_buffer_escalation(program, config=None, max_buffer=960,
                                    **kwargs):
    """Diagnose, doubling the debug buffer until the root cause is caught.

    Models the paper's MySQL#1 observation: with the default 60-entry
    buffer the buggy sequence is overwritten before the failure, and "ACT
    cannot find the buggy sequence without a larger buffer".

    Returns (report, buffer_size_used).
    """
    config = config or ACTConfig()
    size = config.debug_buffer
    while True:
        report = diagnose_failure(program, config=config.with_(
            debug_buffer=size), **kwargs)
        if report.found or size >= max_buffer:
            return report, size
        size *= 2
        report.notes.append(f"escalating debug buffer to {size}")
