"""End-to-end failure diagnosis (the full ACT workflow of Figure 1).

1. Offline-train from correct runs (or reuse a provided TrainedACT).
2. Execute the failure run, replaying its dependences through per-core
   ACT Modules in online testing/training mode.
3. After the failure, collect the Debug Buffers, build a Correct Set
   from ~20 fresh correct runs, prune and rank.
4. Report where the ground-truth root-cause dependence landed.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro import telemetry
from repro.core.config import ACTConfig
from repro.core.deploy import deploy_on_run
from repro.core.offline import OfflineTrainer, collect_correct_runs
from repro.core.postprocess import CorrectSet, postprocess
from repro.workloads.framework import run_program


@dataclass
class DiagnosisReport:
    """Everything Table V reports for one bug, plus diagnostics."""

    program: str
    failed: bool
    found: bool
    rank: Optional[int]
    debug_buffer_position: Optional[int]
    filter_pct: float
    n_debug_entries: int
    debug_overflowed: bool
    findings: list = field(default_factory=list)
    root_cause: Optional[set] = None
    failure_description: str = ""
    n_deps: int = 0
    n_invalid: int = 0
    mode_switches: int = 0
    notes: list = field(default_factory=list)

    def top(self, k=5):
        return self.findings[:k]


def diagnose_failure(program, config=None, trained=None,
                     n_train_runs=10, train_seed0=0,
                     failure_seed=12345,
                     n_pruning_runs=20, pruning_seed0=100,
                     failure_params=None, correct_params=None,
                     pruning_params=None, root_cause=None,
                     fast=True, jobs=None):
    """Diagnose ``program``'s failure with the full ACT pipeline.

    Args:
        program: a workload :class:`~repro.workloads.framework.Program`.
            Bug programs take a ``buggy`` parameter; correct runs are
            produced with ``buggy=False`` and the failure run with
            ``buggy=True`` unless overridden via the param dicts.
        config: :class:`ACTConfig` (default config when omitted).
        trained: reuse an existing :class:`TrainedACT` (skips step 1).
        failure_params: params for the failure execution
            (default ``{"buggy": True}``).
        correct_params: params for training executions
            (default ``{"buggy": False}``).
        pruning_params: params for the post-failure pruning runs.
            Defaults to ``correct_params``; pass different params when
            the correct runs must cover code the training lacked (the
            paper's new-code protocol: pruning traces "contain RAW
            dependences from the code sections where the dependence
            sequences of the Debug Buffer belong").
        root_cause: override the program's ground-truth dependence keys.
        fast: replay the failure run through the batched fast path
            (bit-identical to the scalar replay; ``fast=False`` forces
            the reference per-dependence path).
        jobs: run independent units (correct-run collection, pruning
            runs, offline training) across ``jobs`` worker processes.
            ``None``/1 keeps everything serial; results are identical
            either way.

    Returns:
        :class:`DiagnosisReport`.
    """
    config = config or ACTConfig()
    failure_params = dict(failure_params or {"buggy": True})
    correct_params = dict(correct_params or {"buggy": False})
    pruning_params = dict(pruning_params if pruning_params is not None
                          else correct_params)
    tele = telemetry.get_registry()
    with tele.span("diagnose", program=getattr(program, "name", "?")):
        return _diagnose_phases(
            program, config, trained, tele, n_train_runs, train_seed0,
            failure_seed, n_pruning_runs, pruning_seed0, failure_params,
            correct_params, pruning_params, root_cause, fast, jobs)


def _diagnose_phases(program, config, trained, tele, n_train_runs,
                     train_seed0, failure_seed, n_pruning_runs,
                     pruning_seed0, failure_params, correct_params,
                     pruning_params, root_cause, fast=True, jobs=None):
    if trained is None:
        with tele.span("diagnose.offline_train", n_runs=n_train_runs):
            trainer = OfflineTrainer(config=config)
            trained = trainer.train(program, n_runs=n_train_runs,
                                    seed0=train_seed0, jobs=jobs,
                                    **correct_params)

    # --- The production failure run ----------------------------------
    with tele.span("diagnose.failure_run", seed=failure_seed):
        failure_run = run_program(program, seed=failure_seed,
                                  **failure_params)
    truth = root_cause or failure_run.meta.get("root_cause")
    report = DiagnosisReport(
        program=failure_run.meta.get("program", getattr(program, "name", "?")),
        failed=failure_run.failed, found=False, rank=None,
        debug_buffer_position=None, filter_pct=0.0, n_debug_entries=0,
        debug_overflowed=False, root_cause=truth,
        failure_description=str(failure_run.failure) if failure_run.failure else "")
    if not failure_run.failed:
        report.notes.append("failure run did not fail; nothing to diagnose")
        return report
    if not truth:
        report.notes.append("program provides no ground-truth root cause")

    with tele.span("diagnose.deploy"):
        deployment = deploy_on_run(trained, failure_run, fast=fast)
    report.n_deps = deployment.n_deps
    report.n_invalid = deployment.n_invalid
    report.mode_switches = deployment.n_mode_switches
    if tele.enabled:
        tele.inc("diagnose.deps_observed", deployment.n_deps)
        tele.inc("diagnose.invalids_flagged", deployment.n_invalid)
        tele.inc("diagnose.mode_switches", deployment.n_mode_switches)

    # Table V "Debug Buf. Pos.": depth of the root cause from the newest
    # entry of its core's buffer at failure time.
    if truth:
        def is_root(entry):
            return any((d.store_pc, d.load_pc) in truth for d in entry.seq)
        positions = [m.debug_buffer.position_from_newest(is_root)
                     for m in deployment.modules.values()]
        positions = [p for p in positions if p is not None]
        report.debug_buffer_position = min(positions) if positions else None
        report.debug_overflowed = any(
            m.debug_buffer.overflowed for m in deployment.modules.values())
        if report.debug_buffer_position is None and report.debug_overflowed:
            report.notes.append(
                "root cause not in debug buffer; buffer overflowed -- "
                "retry with a larger debug_buffer (the MySQL#1 case)")

    # --- Offline post-processing --------------------------------------
    with tele.span("diagnose.pruning_runs", n_runs=n_pruning_runs):
        correct_set = CorrectSet(config.seq_len,
                                 filter_stack=config.filter_stack_loads)
        pruning_runs = collect_correct_runs(program, n_pruning_runs,
                                            seed0=pruning_seed0, jobs=jobs,
                                            **pruning_params)
        for run in pruning_runs:
            correct_set.add_run(run)

    with tele.span("diagnose.ranking"):
        entries = deployment.debug_entries()
        report.n_debug_entries = len(entries)
        result = postprocess(entries, correct_set)
    report.findings = result.findings
    report.filter_pct = result.filter_pct
    if truth:
        report.rank = result.rank_of_dep(truth)
        report.found = report.rank is not None
    if tele.enabled:
        tele.inc("diagnose.runs")
        if report.found:
            tele.inc("diagnose.found")
    return report


def diagnose_with_buffer_escalation(program, config=None, max_buffer=960,
                                    **kwargs):
    """Diagnose, doubling the debug buffer until the root cause is caught.

    Models the paper's MySQL#1 observation: with the default 60-entry
    buffer the buggy sequence is overwritten before the failure, and "ACT
    cannot find the buggy sequence without a larger buffer".

    Returns (report, buffer_size_used).
    """
    config = config or ACTConfig()
    size = config.debug_buffer
    while True:
        report = diagnose_failure(program, config=config.with_(
            debug_buffer=size), **kwargs)
        if report.found or size >= max_buffer:
            return report, size
        size *= 2
        report.notes.append(f"escalating debug buffer to {size}")
