"""Adaptive tracking policy: sampling, load-shedding, suspicion tightening.

The paper's headline result is *adaptive* communication tracking -- the
AM does not trace every dependence unconditionally; it sheds load to
keep overhead near 8% and tightens coverage where diagnosis needs it.
This module is that layer for the reproduction. A :class:`PolicySpec`
composes three knobs:

1. **Rate sampling** -- trace a fraction ``rate`` of dependences. Each
   decision is a pure function of ``(seed, site, key)`` hashed through
   blake2b exactly like :mod:`repro.faults.plan`, so the same policy
   admits the same dependences no matter how work is ordered, batched
   across ``--jobs`` workers, or resumed.
2. **Load-shedding backoff** -- when the NN pipeline's input FIFO runs
   hot (mean occupancy above ``backoff_threshold`` over a
   ``backoff_window``-observation control window), the effective rate
   is multiplied by ``backoff_rate`` until the pressure clears. The
   signal is the sim's deterministic FIFO-occupancy/stall stream
   (:mod:`repro.sim.machine`), mirrored into the
   ``sim.fifo_occupancy`` / ``sim.fifo_stalls`` telemetry.
3. **Suspicion-directed tightening** -- dependences touching a PC the
   diagnosis engine already flagged as suspicious
   (:func:`suspicious_pcs_from_report`, fed by
   ``DiagnosisReport.candidates``/``findings``) are *always* traced,
   at full rate, even while shedding. The feedback loop that keeps a
   sampled deployment useful for the bug it is chasing.

The regression contract (``tests/test_policy.py``): :data:`NULL_POLICY`
-- ``rate=1.0``, backoff disabled -- is byte-identical to the
policy-free pipeline everywhere (reports, telemetry, trace files), and
costs one attribute check per dependence.
"""

from contextlib import contextmanager
from dataclasses import dataclass, fields

from repro import telemetry
from repro.common.errors import ConfigError
from repro.faults.plan import _hash01

#: Decision-site names (the ``site`` component of every hash draw).
#: ``dep`` gates live dependences entering an AM; ``trace_record``
#: marks sampled records in exported trace files.
SITES = ("dep", "trace_record")


@dataclass(frozen=True)
class PolicySpec:
    """Seeded, deterministic sampling/throttle policy for the AM.

    ``rate`` is the fraction of dependences traced (1.0 = every one,
    today's behaviour). ``backoff`` enables load shedding:
    ``backoff_window`` FIFO-occupancy observations are averaged into
    one control decision, and while the mean exceeds
    ``backoff_threshold`` (a fraction of the FIFO depth) the effective
    rate is ``rate * backoff_rate``. ``suspicious_pcs`` lists PCs whose
    dependences are always traced, regardless of rate or shedding.

    A spec with ``rate=1.0``, backoff off is *disabled*
    (``enabled`` is False): every consumer skips the policy path
    entirely, which is what the differential suite pins byte-identical
    to the pre-policy pipeline.
    """

    seed: int = 0
    rate: float = 1.0
    backoff: bool = False
    backoff_threshold: float = 0.75
    backoff_rate: float = 0.5
    backoff_window: int = 64
    suspicious_pcs: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "suspicious_pcs",
                           tuple(sorted(int(pc)
                                        for pc in set(self.suspicious_pcs))))
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"policy rate={self.rate} not in [0, 1]")
        if not 0.0 <= self.backoff_threshold <= 1.0:
            raise ConfigError(f"backoff_threshold={self.backoff_threshold} "
                              "not in [0, 1]")
        if not 0.0 <= self.backoff_rate <= 1.0:
            raise ConfigError(f"backoff_rate={self.backoff_rate} "
                              "not in [0, 1]")
        if self.backoff_window < 1:
            raise ConfigError("backoff_window must be >= 1")
        # Precomputed so the hot path (one check per dependence) pays a
        # single attribute read when the policy can never act. A
        # suspicious set alone does not enable: with rate 1.0 and no
        # backoff there is nothing to tighten *from*.
        enabled = self.rate < 1.0 or self.backoff
        object.__setattr__(self, "enabled", enabled)
        object.__setattr__(self, "_suspicious",
                           frozenset(self.suspicious_pcs))

    # ------------------------------------------------------------------

    def uniform(self, site, *key):
        """The deterministic ``[0, 1)`` draw for one decision point."""
        return _hash01(self.seed, site, key)

    def covers(self, store_pc, load_pc):
        """Does the suspicion-tightening set cover this dependence?"""
        sus = self._suspicious
        return bool(sus) and (store_pc in sus or load_pc in sus)

    def samples_record(self, tid, ordinal, pc=None):
        """Pure per-record sampling decision for the trace writer.

        Backoff is a runtime signal and does not apply at write time;
        the flags bit records the rate + suspicion decision only.
        """
        if pc is not None and pc in self._suspicious:
            return True
        return (self.rate >= 1.0
                or self.uniform("trace_record", tid, ordinal) < self.rate)

    def state(self):
        """Fresh per-stream controller state (one per AM)."""
        return PolicyState(self)

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec):
        """Parse a CLI spec like ``"rate=0.5,seed=3,backoff=1"``.

        Keys are :class:`PolicySpec` field names; ``suspicious_pcs``
        takes ``;``-separated PCs (``suspicious_pcs=4096;8200``).
        """
        kwargs = {}
        known = {f.name: f for f in fields(cls)}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ConfigError(f"bad policy spec entry {part!r} "
                                  "(expected key=value)")
            key, value = (s.strip() for s in part.split("=", 1))
            if key not in known:
                raise ConfigError(
                    f"unknown policy spec key {key!r} "
                    f"(known: {', '.join(sorted(known))})")
            if key == "suspicious_pcs":
                kwargs[key] = tuple(int(v, 0) for v in value.split(";") if v)
            elif key in ("seed", "backoff_window"):
                kwargs[key] = int(value)
            elif key == "backoff":
                kwargs[key] = value.lower() in ("1", "true", "yes", "on")
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    def fingerprint(self):
        """JSON-safe identity (checkpoint/golden key material)."""
        return {
            "seed": self.seed, "rate": self.rate,
            "backoff": self.backoff,
            "backoff_threshold": self.backoff_threshold,
            "backoff_rate": self.backoff_rate,
            "backoff_window": self.backoff_window,
            "suspicious_pcs": list(self.suspicious_pcs),
        }

    def describe(self):
        """Compact one-line description of the non-default knobs."""
        parts = [f"seed={self.seed}", f"rate={self.rate:g}"]
        if self.backoff:
            parts.append(f"backoff={self.backoff_rate:g}"
                         f"@{self.backoff_threshold:g}"
                         f"/{self.backoff_window}")
        if self.suspicious_pcs:
            parts.append("suspicious_pcs="
                         + ";".join(hex(pc) for pc in self.suspicious_pcs))
        return ",".join(parts)


#: The policy that never sheds; safe (and free) to leave active.
NULL_POLICY = PolicySpec()


class PolicyState:
    """Mutable per-stream controller for one AM's policy decisions.

    Holds the per-dependence ordinal (the hash key, so decisions stay a
    pure function of ``(seed, site, tid, ordinal)``), the shed/admit
    counters, and the backoff control loop fed by
    :meth:`note_occupancy` / :meth:`note_stall`.
    """

    __slots__ = ("spec", "seen", "admitted", "shed", "tightened",
                 "shedding", "shed_windows", "stalls",
                 "_signal_sum", "_signal_n")

    def __init__(self, spec):
        self.spec = spec
        self.seen = 0
        self.admitted = 0
        self.shed = 0
        self.tightened = 0
        self.shedding = False
        self.shed_windows = 0
        self.stalls = 0
        self._signal_sum = 0.0
        self._signal_n = 0

    def admit(self, dep, tid):
        """Admit or shed one dependence; deterministic per stream."""
        spec = self.spec
        self.seen += 1
        tele = telemetry.get_registry()
        if spec.covers(dep.store_pc, dep.load_pc):
            # Suspicion tightening: always traced, even while shedding.
            self.tightened += 1
            self.admitted += 1
            if tele.enabled:
                tele.inc("policy.deps_tightened")
                tele.inc("policy.deps_sampled")
            return True
        rate = spec.rate
        if self.shedding:
            rate *= spec.backoff_rate
        if rate >= 1.0 or spec.uniform("dep", tid, self.seen) < rate:
            self.admitted += 1
            if tele.enabled:
                tele.inc("policy.deps_sampled")
            return True
        self.shed += 1
        if tele.enabled:
            tele.inc("policy.deps_shed")
        return False

    def note_occupancy(self, fraction):
        """Feed one FIFO-occupancy observation (fraction of depth).

        Every ``backoff_window`` observations the window mean is
        compared against ``backoff_threshold`` and the shedding flag is
        recomputed -- a deterministic function of the observation
        stream, never of wall-clock time.
        """
        spec = self.spec
        if not spec.backoff:
            return
        self._signal_sum += fraction
        self._signal_n += 1
        if self._signal_n >= spec.backoff_window:
            self.shedding = (self._signal_sum / self._signal_n
                             > spec.backoff_threshold)
            if self.shedding:
                self.shed_windows += 1
                tele = telemetry.get_registry()
                if tele.enabled:
                    tele.inc("policy.shed_windows")
            self._signal_sum = 0.0
            self._signal_n = 0

    def note_stall(self):
        """A FIFO-full stall: the strongest possible pressure signal."""
        self.stalls += 1
        self.note_occupancy(1.0)


# ---------------------------------------------------------------------
# Ambient policy (mirrors repro.faults.get_plan/use_plan)
# ---------------------------------------------------------------------

_active = NULL_POLICY


def get_policy():
    """The process-wide active policy (NULL_POLICY when none is set)."""
    return _active


def set_policy(policy):
    """Install ``policy`` (None resets to NULL_POLICY); returns previous."""
    global _active
    previous = _active
    _active = NULL_POLICY if policy is None else policy
    return previous


@contextmanager
def use_policy(policy):
    """Context manager: activate ``policy`` for the dynamic extent."""
    previous = set_policy(policy)
    try:
        yield policy
    finally:
        set_policy(previous)


# ---------------------------------------------------------------------
# Suspicion feedback from a prior diagnosis
# ---------------------------------------------------------------------

def suspicious_pcs_from_report(report, top=5):
    """PCs a prior :class:`DiagnosisReport` implicates, for tightening.

    Engine-native reports contribute the PCs in their top candidate
    keys (``(store_pc, load_pc)`` pairs or bare PCs); NN reports
    contribute the PCs of the mismatched suffix of their top findings.
    Feed the result into ``PolicySpec(suspicious_pcs=...)`` to restore
    full-rate tracking around the code the last diagnosis flagged.
    """
    pcs = set()
    for cand in report.candidates[:top]:
        key = cand.get("key") if isinstance(cand, dict) else cand
        if isinstance(key, (list, tuple)):
            pcs.update(int(pc) for pc in key
                       if isinstance(pc, (int, float)))
        elif isinstance(key, (int, float)):
            pcs.add(int(key))
    for finding in report.findings[:top]:
        for dep in finding.seq[finding.matched:]:
            pcs.add(int(dep.store_pc))
            pcs.add(int(dep.load_pc))
    return tuple(sorted(pcs))
