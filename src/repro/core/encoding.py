"""Encoding RAW dependence sequences as neural-network inputs.

The paper leaves the input encoding implicit ("instruction addresses
and their labels"). We use two NN inputs per dependence:

- the **store code**: a value in ``(0, 1)`` identifying the store pc,
  *negated* when the dependence is inter-thread (folding the label into
  the sign keeps the input width at ``2N <= M``);
- the **load code**: a value in ``(0, 1)`` identifying the load pc.

PC codes come from the program's static code map, spread uniformly over
``(0, 1)`` so distinct instructions are well separated -- the property
that makes valid-communication regions learnable bumps in input space.
PCs outside the map (e.g. dynamically loaded code) hash to a
deterministic code via the golden-ratio trick, mirroring the paper's
library-id + offset scheme.
"""

import numpy as np

from repro.common.errors import ConfigError

_GOLDEN = 0.6180339887498949


class DepEncoder:
    """Maps :class:`~repro.trace.raw.RawDep` sequences to input vectors."""

    def __init__(self, pcs=None, code_map=None):
        """Build an encoder from a static pc list or a CodeMap.

        Args:
            pcs: iterable of static instruction addresses.
            code_map: alternatively, a workload CodeMap (its pcs are used).
        """
        if code_map is not None:
            # Only memory instructions participate in dependences, so
            # only they need codes -- fewer codes means wider spacing in
            # (0, 1) and sharper class boundaries for the network.
            pcs = sorted(pc for pc, site in code_map._sites.items()
                         if site.kind.is_memory())
        if pcs is None:
            raise ConfigError("DepEncoder needs pcs or a code_map")
        pcs = sorted(set(pcs))
        n = len(pcs)
        if n == 0:
            raise ConfigError("DepEncoder needs at least one pc")
        self._codes = {pc: (i + 1) / (n + 1) for i, pc in enumerate(pcs)}
        self.n_pcs = n

    def code_of(self, pc):
        """Code in ``(0, 1)`` for a pc; unseen pcs hash deterministically."""
        code = self._codes.get(pc)
        if code is None:
            code = (pc * _GOLDEN) % 1.0
            code = min(max(code, 0.01), 0.99)
        return code

    def encode_dep(self, dep):
        """Two inputs (signed store code, load code) for one dependence."""
        s = self.code_of(dep.store_pc)
        if dep.inter_thread:
            s = -s
        return s, self.code_of(dep.load_pc)

    def encode_seq(self, seq):
        """Flat input vector for a sequence of dependences (oldest first)."""
        out = np.empty(2 * len(seq))
        for i, dep in enumerate(seq):
            out[2 * i], out[2 * i + 1] = self.encode_dep(dep)
        return out

    def encode_many(self, seqs):
        """2-D array of encodings for an iterable of equal-length sequences."""
        seqs = list(seqs)
        if not seqs:
            return np.empty((0, 0))
        return np.vstack([self.encode_seq(s) for s in seqs])

    def n_inputs(self, seq_len):
        return 2 * seq_len
