"""Encoding RAW dependence sequences as neural-network inputs.

The paper leaves the input encoding implicit ("instruction addresses
and their labels"). We use two NN inputs per dependence:

- the **store code**: a value in ``(0, 1)`` identifying the store pc,
  *negated* when the dependence is inter-thread (folding the label into
  the sign keeps the input width at ``2N <= M``);
- the **load code**: a value in ``(0, 1)`` identifying the load pc.

PC codes come from the program's static code map, spread uniformly over
``(0, 1)`` so distinct instructions are well separated -- the property
that makes valid-communication regions learnable bumps in input space.
PCs outside the map (e.g. dynamically loaded code) hash to a
deterministic code via the golden-ratio trick, mirroring the paper's
library-id + offset scheme.

Two encoding paths exist and produce bit-identical values:

- the scalar path (:meth:`DepEncoder.encode_dep` /
  :meth:`DepEncoder.encode_seq`), one dependence at a time -- what the
  per-dependence AM step uses;
- the vectorised path (:meth:`DepEncoder.codes_of` /
  :meth:`DepEncoder.encode_stream` / :meth:`DepEncoder.encode_windows`),
  which maps whole dependence streams through precomputed numpy code
  arrays and materialises every sliding window with stride tricks --
  what the batched replay fast path and offline training use.
"""

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.common.errors import ConfigError

_GOLDEN = 0.6180339887498949


class DepEncoder:
    """Maps :class:`~repro.trace.raw.RawDep` sequences to input vectors."""

    def __init__(self, pcs=None, code_map=None):
        """Build an encoder from a static pc list or a CodeMap.

        Args:
            pcs: iterable of static instruction addresses.
            code_map: alternatively, a workload CodeMap (its memory pcs
                are used -- only memory instructions participate in
                dependences, and fewer codes means wider spacing in
                ``(0, 1)`` and sharper class boundaries for the network).
        """
        if code_map is not None:
            pcs = code_map.memory_pcs()
        if pcs is None:
            raise ConfigError("DepEncoder needs pcs or a code_map")
        pcs = sorted(set(pcs))
        n = len(pcs)
        if n == 0:
            raise ConfigError("DepEncoder needs at least one pc")
        # Vectorised lookup tables; the scalar dict is derived from the
        # same arrays so both paths serve bit-identical codes.
        self._pc_arr = np.asarray(pcs, dtype=np.int64)
        self._code_arr = np.arange(1, n + 1, dtype=np.float64) / (n + 1)
        self._codes = {pc: float(c) for pc, c in zip(pcs, self._code_arr)}
        self.n_pcs = n

    @property
    def pcs(self):
        """The sorted static pc universe (rebuilds an identical encoder)."""
        return [int(pc) for pc in self._pc_arr]

    def code_of(self, pc):
        """Code in ``(0, 1)`` for a pc; unseen pcs hash deterministically."""
        code = self._codes.get(pc)
        if code is None:
            code = (pc * _GOLDEN) % 1.0
            code = min(max(code, 0.01), 0.99)
        return code

    def codes_of(self, pcs):
        """Vectorised :meth:`code_of` for an int array of pcs."""
        pcs = np.asarray(pcs, dtype=np.int64)
        idx = np.searchsorted(self._pc_arr, pcs)
        idx = np.clip(idx, 0, len(self._pc_arr) - 1)
        known = self._pc_arr[idx] == pcs
        out = np.empty(len(pcs))
        out[known] = self._code_arr[idx[known]]
        if not known.all():
            unseen = ~known
            hashed = (pcs[unseen].astype(np.float64) * _GOLDEN) % 1.0
            out[unseen] = np.clip(hashed, 0.01, 0.99)
        return out

    def encode_dep(self, dep):
        """Two inputs (signed store code, load code) for one dependence."""
        s = self.code_of(dep.store_pc)
        if dep.inter_thread:
            s = -s
        return s, self.code_of(dep.load_pc)

    def encode_seq(self, seq):
        """Flat input vector for a sequence of dependences (oldest first)."""
        out = np.empty(2 * len(seq))
        for i, dep in enumerate(seq):
            out[2 * i], out[2 * i + 1] = self.encode_dep(dep)
        return out

    def encode_stream(self, deps):
        """Flat ``(2 * len(deps),)`` encoding of a dependence stream.

        One vectorised pass: the interleaved (signed store code, load
        code) layout matches concatenating :meth:`encode_dep` results.
        """
        n = len(deps)
        out = np.empty(2 * n)
        if not n:
            return out
        stores = np.fromiter((d.store_pc for d in deps),
                             dtype=np.int64, count=n)
        loads = np.fromiter((d.load_pc for d in deps),
                            dtype=np.int64, count=n)
        inter = np.fromiter((d.inter_thread for d in deps),
                            dtype=bool, count=n)
        s = self.codes_of(stores)
        np.negative(s, where=inter, out=s)
        out[0::2] = s
        out[1::2] = self.codes_of(loads)
        return out

    def encode_windows(self, deps, seq_len):
        """Input matrix of every sliding window over a dependence stream.

        Row ``r`` is ``encode_seq(deps[r:r + seq_len])``; the stream is
        encoded once and the windows are stride-tricked views into the
        flat array (no per-dependence Python loop, no copies).
        """
        if len(deps) < seq_len:
            return np.empty((0, 2 * seq_len))
        flat = self.encode_stream(deps)
        return sliding_window_view(flat, 2 * seq_len)[::2]

    def encode_many(self, seqs, seq_len=None):
        """2-D array of encodings for an iterable of equal-length sequences.

        ``seq_len`` fixes the output width ``(0, 2 * seq_len)`` when
        ``seqs`` is empty, so downstream ``vstack``/``predict_batch``
        consumers always see the right number of columns.
        """
        seqs = list(seqs)
        if not seqs:
            return np.empty((0, 2 * seq_len if seq_len else 0))
        k = len(seqs[0])
        if any(len(s) != k for s in seqs):
            raise ConfigError("encode_many needs equal-length sequences")
        flat = self.encode_stream([d for s in seqs for d in s])
        return flat.reshape(len(seqs), 2 * k)

    def n_inputs(self, seq_len):
        return 2 * seq_len
