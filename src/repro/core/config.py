"""Configuration for the whole ACT stack (paper Table III).

Bold-faced (default) parameters from Table III: 8 cores, 64 B lines,
10-input neurons, 11 neurons total (10 hidden + 1 output), 5-entry input
generator buffer, 60-entry debug buffer, 5 % misprediction threshold.
Where the paper lists a sweep without marking the default
(multiply-add units 1/2/5/10, FIFO 4/8/16) we pick the middle point
(2 units, 8 entries) and expose both as sweep knobs in the benchmarks.
"""

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError


@dataclass
class ACTConfig:
    """Every tunable of the ACT design in one place."""

    # --- RAW dependence sequences -----------------------------------
    seq_len: int = 5               # N: dependences per NN input
    input_gen_buffer: int = 5      # Input Generator Buffer entries
    filter_stack_loads: bool = True

    # --- Neural network ----------------------------------------------
    max_inputs: int = 10           # M: per-neuron input bound
    n_hidden: int = 10             # hidden width (searched in Table IV)
    learning_rate: float = 0.2
    sigmoid_resolution: int = 2048

    # --- Online control loop ------------------------------------------
    debug_buffer: int = 60
    mispred_threshold: float = 0.05
    check_window: int = 200        # deps between misprediction-rate checks
    window_rate_tail: int = 1024   # per-window rates kept in AMStats

    # --- Hardware timing (overhead experiments) -----------------------
    muladd_units: int = 2
    fifo_depth: int = 8
    n_cores: int = 8
    line_size: int = 64

    # --- Last-writer simplifications (Section V) ----------------------
    lw_word_granularity: bool = False   # paper default: line granularity
    lw_writeback_on_evict: bool = False # paper default: drop on eviction
    lw_piggyback_dirty_only: bool = True

    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        if not 1 <= self.seq_len:
            raise ConfigError("seq_len must be >= 1")
        if 2 * self.seq_len > self.max_inputs:
            raise ConfigError(
                f"seq_len={self.seq_len} needs {2 * self.seq_len} NN inputs, "
                f"but max_inputs={self.max_inputs}")
        if self.input_gen_buffer < self.seq_len:
            raise ConfigError("input generator buffer smaller than seq_len")
        if not 0.0 < self.mispred_threshold < 1.0:
            raise ConfigError("mispred_threshold must be in (0, 1)")
        if self.check_window < 1:
            raise ConfigError("check_window must be positive")
        if self.debug_buffer < 1:
            raise ConfigError("debug buffer must hold at least one entry")
        if self.window_rate_tail < 1:
            raise ConfigError("window_rate_tail must be positive")
        if self.line_size % 4 or self.line_size < 4:
            raise ConfigError("line size must be a positive multiple of 4")

    @property
    def n_inputs(self):
        """NN input width: two inputs (store code, load code) per dep."""
        return 2 * self.seq_len

    def with_(self, **changes):
        """A modified copy, e.g. ``cfg.with_(seq_len=3)``."""
        return replace(self, **changes)
