"""Thread-library integration (Section IV.C-D).

The paper extends the threading library so ACT state follows threads:

- thread ids are assigned by parent + spawn order, so the same logical
  thread gets the same weights across executions;
- ``pthread_create`` checks ``chkwt`` and initialises the AM's weight
  registers with a loop of ``stwt`` (falling back to default weights,
  which mispredict enough to push the AM into online training);
- ``pthread_exit`` reads the registers back with ``ldwt`` into a log
  that later *patches the binary*, so training done in one execution
  carries into the next;
- on a context switch or migration the weight registers are saved and
  restored like any architectural state.

:class:`ACTThreadLibrary` models exactly that life cycle over
:class:`~repro.core.offline.TrainedACT` (the "binary") and
:class:`~repro.core.act_module.ACTModule` (the per-core hardware).
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.errors import ReproError


@dataclass(frozen=True)
class ThreadId:
    """Stable thread identity: (parent id, spawn index).

    The root thread is ``ThreadId(None, 0)``. Identity depends only on
    spawn *order*, not on scheduling, which is what makes per-thread
    weights reusable across executions (Section IV.C).
    """

    parent: Optional[Tuple] = None
    spawn_index: int = 0

    def key(self):
        return (self.parent, self.spawn_index)


class ACTThreadLibrary:
    """Models the augmented pthread create/exit/switch paths."""

    def __init__(self, trained):
        self.trained = trained
        self._spawn_counters: Dict[Tuple, int] = {}
        self._live: Dict[Tuple, object] = {}
        # The "special log file" of weights read out at thread exit.
        self.exit_log: Dict[Tuple, np.ndarray] = {}
        self.stats = {"created": 0, "chkwt_hits": 0, "chkwt_misses": 0,
                      "exited": 0, "switches": 0}

    # ------------------------------------------------------------------
    # Thread life cycle
    # ------------------------------------------------------------------

    def spawn(self, parent=None):
        """Allocate the next stable id for a child of ``parent``."""
        pkey = parent.key() if parent is not None else None
        idx = self._spawn_counters.get(pkey, 0)
        self._spawn_counters[pkey] = idx + 1
        return ThreadId(parent=pkey, spawn_index=idx)

    def on_thread_create(self, thread_id, core_tid=0):
        """``pthread_create``: build the thread's AM.

        Returns the AM with weights initialised from the binary when
        ``chkwt`` says the thread has them, else the default weights.
        """
        key = thread_id.key()
        if key in self._live:
            raise ReproError(f"thread {thread_id} already running")
        if key in self.trained.weights:
            self.stats["chkwt_hits"] += 1
            module = self.trained.make_module(0)
            module.restore_weights(self.trained.weights[key])
        else:
            self.stats["chkwt_misses"] += 1
            module = self.trained.make_module(core_tid)
        module.tid = core_tid
        self._live[key] = module
        self.stats["created"] += 1
        return module

    def on_thread_exit(self, thread_id):
        """``pthread_exit``: read the weight registers into the log."""
        key = thread_id.key()
        module = self._live.pop(key, None)
        if module is None:
            raise ReproError(f"thread {thread_id} is not running")
        self.exit_log[key] = module.save_weights()
        self.stats["exited"] += 1
        return self.exit_log[key]

    def patch_binary(self):
        """Fold the exit log into the binary's per-thread weights.

        Returns the number of thread entries patched. After this, the
        next execution's ``chkwt`` finds the weights trained online in
        this one.
        """
        patched = 0
        for key, weights in self.exit_log.items():
            self.trained.weights[key] = weights.copy()
            patched += 1
        self.exit_log.clear()
        return patched

    # ------------------------------------------------------------------
    # Context switch / migration (Section IV.D)
    # ------------------------------------------------------------------

    def context_switch(self, thread_id, from_module, to_module):
        """Migrate a thread's AM state between cores.

        The pipeline's in-flight inputs are flushed and the weight
        registers move with the thread, exactly as the OS save/restore
        of architectural state would.
        """
        saved = from_module.context_switch_out()
        to_module.context_switch_in(saved)
        self._live[thread_id.key()] = to_module
        self.stats["switches"] += 1
        return to_module

    def live_threads(self):
        return list(self._live)
